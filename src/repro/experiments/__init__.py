"""The experiment harness: reference intentions, runner, paper comparison.

Regenerates every table and figure of the paper's Section 6 — see
``benchmarks/harness.py`` for the command-line entry point and
EXPERIMENTS.md for a recorded run.
"""

from .paper_reference import (
    FEASIBLE_PLANS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    SCALES,
)
from .report import (
    render_fig3,
    render_fig4,
    render_table1,
    render_table2,
    render_table3,
)
from .runner import DEFAULT_LADDER, ExperimentRunner, ladder_from_env
from .statements import BUDGET_LEVELS, INTENTIONS, prepare_engine, statement_text

__all__ = [
    "BUDGET_LEVELS",
    "DEFAULT_LADDER",
    "ExperimentRunner",
    "FEASIBLE_PLANS",
    "INTENTIONS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "SCALES",
    "ladder_from_env",
    "prepare_engine",
    "render_fig3",
    "render_fig4",
    "render_table1",
    "render_table2",
    "render_table3",
    "statement_text",
]
