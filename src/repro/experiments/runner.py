"""The experiment runner: builds the SSB ladder and executes the four
reference intentions under every feasible plan, with timing and breakdowns.

The ladder mirrors the paper's SSB1/SSB10/SSB100 at laptop scale: the
default is 1:100 of the paper's (60k/600k/6M lineorder rows), preserving
the 1:10:100 ratios that the linear-scaling claim depends on.  Override it
with the ``REPRO_LADDER`` environment variable, e.g.::

    REPRO_LADDER="20000,200000,2000000" pytest benchmarks/ --benchmark-only
    REPRO_LADDER="6000000,60000000,600000000" python benchmarks/harness.py all
"""

from __future__ import annotations

import os
import statistics
import time
from typing import Dict, List, Optional, Tuple

from ..algebra.executor import PlanExecutor
from ..algebra.plan import Plan
from ..algebra.planner import build_plan, feasible_plans
from ..api import AssessSession
from ..codegen.generator import formulation_effort
from ..core.result import AssessResult
from ..core.statement import AssessStatement
from .paper_reference import SCALES
from .statements import INTENTIONS, prepare_engine, statement_text

DEFAULT_LADDER: Tuple[int, ...] = (60_000, 600_000, 6_000_000)


def ladder_from_env() -> Dict[str, int]:
    """The scale ladder, as ``{"SSB1": rows, "SSB10": ..., "SSB100": ...}``.

    ``REPRO_LADDER`` accepts a comma-separated list of up to three row
    counts; fewer entries shorten the ladder (useful for quick runs).
    """
    raw = os.environ.get("REPRO_LADDER", "")
    if raw.strip():
        rows = [int(part) for part in raw.split(",") if part.strip()]
    else:
        rows = list(DEFAULT_LADDER)
    return {name: count for name, count in zip(SCALES, rows)}


class ExperimentRunner:
    """Caches one engine+session per scale and runs the reference
    intentions under any plan, the way Section 6 does (repeated runs,
    averaged, with per-step breakdowns)."""

    def __init__(
        self,
        ladder: Optional[Dict[str, int]] = None,
        seed: int = 7,
        parallelism: Optional[int] = None,
    ):
        self.ladder = dict(ladder) if ladder is not None else ladder_from_env()
        self.seed = seed
        self.parallelism = parallelism
        self._sessions: Dict[str, AssessSession] = {}

    # ------------------------------------------------------------------
    # Infrastructure
    # ------------------------------------------------------------------
    @property
    def scales(self) -> Tuple[str, ...]:
        return tuple(self.ladder.keys())

    def session(self, scale: str) -> AssessSession:
        """The (cached) session for one ladder rung.

        The engine's result cache is disabled: the paper's measurements
        are cold-execution times, and the repeated runs of
        :meth:`run_timed` would otherwise all be served warm.  The cache
        ablation benchmark re-enables it explicitly.
        """
        if scale not in self._sessions:
            engine = prepare_engine(self.ladder[scale], seed=self.seed)
            engine.result_cache.enabled = False
            self._sessions[scale] = AssessSession(
                engine, parallelism=self.parallelism
            )
        return self._sessions[scale]

    def statement(self, intention: str, scale: str) -> AssessStatement:
        return self.session(scale).parse(statement_text(intention))

    def plan(self, intention: str, scale: str, plan_name: str) -> Plan:
        session = self.session(scale)
        return build_plan(self.statement(intention, scale), session.engine, plan_name)

    def plans_for(self, intention: str) -> Tuple[str, ...]:
        scale = self.scales[0]
        return tuple(feasible_plans(self.statement(intention, scale)))

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def run_once(self, intention: str, scale: str, plan_name: str) -> AssessResult:
        """One execution, returning the result (with step timings)."""
        session = self.session(scale)
        statement = self.statement(intention, scale)
        plan = build_plan(statement, session.engine, plan_name)
        executor = PlanExecutor(session.engine, session.registry)
        return executor.execute(plan, statement)

    def run_traced(self, intention: str, scale: str, plan_name: str):
        """One execution with the tracer installed.

        Returns ``(result, tracer)`` — feed the tracer to
        :func:`repro.obs.summarize_spans` / ``render_span_tree`` or the
        export helpers.  The harness's ``--trace`` flag builds on this.
        """
        from ..obs import tracing

        with tracing() as tracer:
            result = self.run_once(intention, scale, plan_name)
        return result, tracer

    def run_timed(
        self,
        intention: str,
        scale: str,
        plan_name: str,
        repetitions: int = 5,
        warmup: int = 0,
    ) -> Dict[str, object]:
        """Average wall time over ``repetitions`` runs (paper: 5 runs).

        ``warmup`` untimed runs happen first (dictionary encodings and
        interned join indexes populate on first touch, so the first timed
        run is otherwise noisier).  Returns ``{"seconds", "times",
        "min_s", "median_s", "cells", "breakdown"}`` — ``seconds`` stays
        the mean (the paper's statistic); ``min_s``/``median_s`` are the
        robust alternatives the harness reports alongside it.
        """
        for _ in range(warmup):
            self.run_once(intention, scale, plan_name)
        times: List[float] = []
        breakdowns: List[Dict[str, float]] = []
        cells = 0
        for _ in range(repetitions):
            start = time.perf_counter()
            result = self.run_once(intention, scale, plan_name)
            times.append(time.perf_counter() - start)
            breakdowns.append(result.timings)
            cells = len(result)
        steps = sorted({step for b in breakdowns for step in b})
        breakdown = {
            step: sum(b.get(step, 0.0) for b in breakdowns) / len(breakdowns)
            for step in steps
        }
        return {
            "seconds": sum(times) / len(times),
            "times": times,
            "min_s": min(times),
            "median_s": statistics.median(times),
            "cells": cells,
            "breakdown": breakdown,
        }

    def target_cardinality(self, intention: str, scale: str) -> int:
        """|C| — the target cube cardinality (Table 2)."""
        session = self.session(scale)
        statement = self.statement(intention, scale)
        from ..core.query import CubeQuery

        query = CubeQuery(
            statement.source,
            statement.group_by,
            statement.predicates,
            (statement.measure,),
        )
        return len(session.engine.get(query))

    def formulation_row(self, intention: str) -> Dict[str, int]:
        """One Table 1 column: sql/python/total/assess character counts."""
        scale = self.scales[0]
        session = self.session(scale)
        statement = self.statement(intention, scale)
        return formulation_effort(
            statement, session.engine, statement_text(intention)
        )

    # ------------------------------------------------------------------
    # Full experiments
    # ------------------------------------------------------------------
    def table1(self) -> Dict[str, Dict[str, int]]:
        """Formulation effort per intention (Table 1)."""
        return {intention: self.formulation_row(intention) for intention in INTENTIONS}

    def table2(self) -> Dict[str, Dict[str, int]]:
        """Target cardinalities per intention × scale (Table 2)."""
        return {
            intention: {
                scale: self.target_cardinality(intention, scale)
                for scale in self.scales
            }
            for intention in INTENTIONS
        }

    def fig3(
        self, repetitions: int = 5, warmup: int = 0
    ) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Execution times per intention × plan × scale (Figure 3)."""
        results: Dict[str, Dict[str, Dict[str, float]]] = {}
        for intention in INTENTIONS:
            results[intention] = {}
            for plan_name in self.plans_for(intention):
                results[intention][plan_name] = {
                    scale: self.run_timed(
                        intention, scale, plan_name, repetitions, warmup
                    )["seconds"]
                    for scale in self.scales
                }
        return results

    def table3(
        self, fig3_data: Optional[Dict[str, Dict[str, Dict[str, float]]]] = None
    ) -> Dict[str, Dict[str, Tuple[float, float]]]:
        """Best-plan time with NP time, per intention × scale (Table 3)."""
        data = fig3_data if fig3_data is not None else self.fig3()
        table: Dict[str, Dict[str, Tuple[float, float]]] = {}
        for intention, per_plan in data.items():
            table[intention] = {}
            for scale in self.scales:
                best = min(per_plan[plan][scale] for plan in per_plan)
                table[intention][scale] = (best, per_plan["NP"][scale])
        return table

    def fig4(
        self, repetitions: int = 3, warmup: int = 0
    ) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Step breakdown of the Past intention per plan × scale (Figure 4)."""
        results: Dict[str, Dict[str, Dict[str, float]]] = {}
        for plan_name in self.plans_for("Past"):
            results[plan_name] = {
                scale: self.run_timed("Past", scale, plan_name, repetitions, warmup)[
                    "breakdown"
                ]
                for scale in self.scales
            }
        return results

    def workload(
        self,
        scale: str,
        plan: str = "best",
        repetitions: int = 3,
        warmup: int = 0,
    ) -> Dict[str, object]:
        """Batched vs. sequential execution of the reference workload.

        Runs the four reference intentions as one session workload twice:
        once statement-by-statement (:meth:`AssessSession.assess`) and
        once through :meth:`AssessSession.execute_many`, which merges the
        plans and fuses compatible scans.  The runner's sessions keep the
        result cache disabled, so both arms are cold and the difference
        is pure batch sharing.  Reports the min/median wall time of each
        arm over ``repetitions`` runs plus the batch's sharing report.
        """
        session = self.session(scale)
        statements = [statement_text(intention) for intention in INTENTIONS]
        for _ in range(warmup):
            for text in statements:
                session.assess(text, plan=plan)
        sequential: List[float] = []
        batched: List[float] = []
        report: Dict[str, object] = {}
        for _ in range(repetitions):
            start = time.perf_counter()
            for text in statements:
                session.assess(text, plan=plan)
            sequential.append(time.perf_counter() - start)
            start = time.perf_counter()
            outcome = session.execute_many(statements, plan=plan)
            batched.append(time.perf_counter() - start)
            report = outcome.report.to_dict()
        return {
            "statements": len(statements),
            "plan": plan,
            "sequential_min_s": min(sequential),
            "sequential_median_s": statistics.median(sequential),
            "batch_min_s": min(batched),
            "batch_median_s": statistics.median(batched),
            "speedup": min(sequential) / min(batched) if min(batched) > 0 else 0.0,
            "report": report,
        }
