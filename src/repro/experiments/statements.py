"""The four reference intentions of the experimental evaluation (Section 6).

The paper tests "four assess statements of different types, henceforth
referred to as Constant, External, Sibling, and Past".  It does not print
their text, so we define equivalents over the SSB cube chosen so that (as
in Table 2) the target-cube cardinality scales linearly with the fact
table:

* **Constant** groups by (date, customer) — both scale with the cube — and
  checks per-day-per-customer revenue against a KPI;
* **External** groups by (month, part) and compares against the BUDGET
  external cube (parts scale with the cube);
* **Sibling** slices supplier region ASIA and compares each part's revenue
  against the AMERICA slice;
* **Past** slices one month and compares each customer's revenue against a
  linear-regression forecast of the previous four months.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..datagen.ssb import build_budget_table, ssb_engine
from ..olap.engine import MultidimensionalEngine

INTENTIONS: Tuple[str, ...] = ("Constant", "External", "Sibling", "Past")

BUDGET_LEVELS: Tuple[str, str] = ("month", "part")

STATEMENTS: Dict[str, str] = {
    "Constant": """
        with SSB by date, customer
        assess revenue against 50000
        using ratio(revenue, 50000)
        labels {[0, 0.5): low, [0.5, 1.5]: expected, (1.5, inf): high}
    """,
    "External": """
        with SSB by month, part
        assess revenue against BUDGET.expected_revenue
        using normalizedDifference(revenue, benchmark.expected_revenue)
        labels {[-inf, -0.1): underBudget, [-0.1, 0.1]: onTrack,
                (0.1, inf): overBudget}
    """,
    "Sibling": """
        with SSB for s_region = 'ASIA' by part, s_region
        assess revenue against s_region = 'AMERICA'
        using percOfTotal(difference(revenue, benchmark.revenue))
        labels {[-inf, -0.0001): bad, [-0.0001, 0.0001]: ok, (0.0001, inf): good}
    """,
    "Past": """
        with SSB for month = '1998-06' by month, customer
        assess revenue against past 4
        using ratio(revenue, benchmark.revenue)
        labels {[0, 0.9): worse, [0.9, 1.1]: fine, (1.1, inf): better}
    """,
}


def statement_text(intention: str) -> str:
    """The reference statement for an intention, stripped for display."""
    return "\n".join(
        line.strip() for line in STATEMENTS[intention].strip().splitlines()
    )


def prepare_engine(lineorder_rows: int, seed: int = 7) -> MultidimensionalEngine:
    """An SSB engine carrying the BUDGET cube at the External group-by."""
    engine = ssb_engine(lineorder_rows=lineorder_rows, seed=seed, with_budget=False)
    build_budget_table(engine, levels=BUDGET_LEVELS)
    return engine
