"""The numbers printed in the paper's evaluation section, for side-by-side
reporting.

These are transcription of Tables 1–3 (and the qualitative claims of
Figures 3–4).  The harness prints them next to our measurements; absolute
times cannot match (different hardware, a scaled-down SSB ladder, and a
Python engine instead of Oracle), but the *shapes* — plan ordering, linear
scaling, step dominance, formulation-effort ratios — are the reproduction
targets.
"""

from __future__ import annotations

from typing import Dict, Tuple

INTENTIONS: Tuple[str, ...] = ("Constant", "External", "Sibling", "Past")
SCALES: Tuple[str, ...] = ("SSB1", "SSB10", "SSB100")

PAPER_FACT_ROWS: Dict[str, float] = {
    "SSB1": 6e6,
    "SSB10": 6e7,
    "SSB100": 6e8,
}

# Table 1 — formulation effort (ASCII characters).
PAPER_TABLE1: Dict[str, Dict[str, int]] = {
    "Constant": {"sql": 481, "python": 7006, "total": 7487, "assess": 143},
    "External": {"sql": 989, "python": 6193, "total": 7182, "assess": 260},
    "Sibling": {"sql": 1169, "python": 6309, "total": 7478, "assess": 270},
    "Past": {"sql": 1954, "python": 7049, "total": 9003, "assess": 254},
}

# Table 2 — target cube cardinalities per intention and scale.
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "Constant": {"SSB1": 1.2e5, "SSB10": 1.2e6, "SSB100": 1.2e7},
    "External": {"SSB1": 2.4e4, "SSB10": 2.5e5, "SSB100": 2.5e6},
    "Sibling": {"SSB1": 2.4e4, "SSB10": 2.5e5, "SSB100": 2.5e6},
    "Past": {"SSB1": 1.5e3, "SSB10": 1.6e4, "SSB100": 1.6e5},
}

# Table 3 — minimum execution times in seconds (NP's time in parentheses).
PAPER_TABLE3: Dict[str, Dict[str, Tuple[float, float]]] = {
    "Constant": {"SSB1": (0.60, 0.60), "SSB10": (6.77, 6.77), "SSB100": (45.14, 45.14)},
    "External": {"SSB1": (0.27, 0.31), "SSB10": (2.38, 2.60), "SSB100": (32.86, 35.60)},
    "Sibling": {"SSB1": (0.32, 0.42), "SSB10": (3.69, 4.97), "SSB100": (49.61, 99.93)},
    "Past": {"SSB1": (1.20, 3.21), "SSB10": (11.72, 30.93), "SSB100": (118.25, 321.11)},
}

# Feasible plans per intention (Section 5.2 / Figure 3 legend).
FEASIBLE_PLANS: Dict[str, Tuple[str, ...]] = {
    "Constant": ("NP",),
    "External": ("NP", "JOP"),
    "Sibling": ("NP", "JOP", "POP"),
    "Past": ("NP", "JOP", "POP"),
}

# Qualitative claims of Figures 3 and 4, checked by the harness.
FIGURE3_CLAIMS = (
    "JOP, when applicable, outperforms NP",
    "POP, when applicable, outperforms JOP and NP",
    "every intention scales linearly across the 1:10:100 ladder",
)
FIGURE4_CLAIMS = (
    "comparison and labeling cost milliseconds — negligible vs get/join",
    "transformation (regression) is the most time-consuming step of Past",
    "NP pays a separate benchmark get plus an in-memory join; "
    "JOP folds the join into one SQL query; POP folds get+pivot into one",
)
