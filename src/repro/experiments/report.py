"""Report formatting: paper values next to measured values, claim checks.

Every ``render_*`` function takes the structured output of
:class:`~repro.experiments.runner.ExperimentRunner` and returns the text the
harness prints — a fixed-width table per paper table/figure, each cell
showing ``measured (paper)`` where a paper value exists, followed by the
verdicts on the paper's qualitative claims.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .paper_reference import (
    FEASIBLE_PLANS,
    FIGURE3_CLAIMS,
    FIGURE4_CLAIMS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from .statements import INTENTIONS


def _render_grid(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(headers[i]).ljust(widths[i]) for i in range(len(headers))),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(str(row[i]).ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _sci(value: float) -> str:
    if value >= 10_000:
        return f"{value:.1e}"
    return f"{value:g}"


def render_table1(measured: Dict[str, Dict[str, int]]) -> str:
    """Table 1: formulation effort, measured vs paper."""
    headers = ["", *INTENTIONS]
    rows: List[List[str]] = []
    for key in ("sql", "python", "total", "assess"):
        row = [f"{key.capitalize()}:"]
        for intention in INTENTIONS:
            row.append(
                f"{measured[intention][key]} ({PAPER_TABLE1[intention][key]})"
            )
        rows.append(row)
    ratio_row = ["Total/assess:"]
    for intention in INTENTIONS:
        ours = measured[intention]["total"] / measured[intention]["assess"]
        paper = PAPER_TABLE1[intention]["total"] / PAPER_TABLE1[intention]["assess"]
        ratio_row.append(f"{ours:.0f}x ({paper:.0f}x)")
    rows.append(ratio_row)
    claim = all(
        measured[i]["total"] > 5 * measured[i]["assess"] for i in INTENTIONS
    )
    verdict = "HOLDS" if claim else "FAILS"
    return (
        "Table 1 — formulation effort in characters, measured (paper)\n"
        + _render_grid(headers, rows)
        + f"\nclaim 'assess is an order of magnitude shorter than SQL+Python': {verdict}"
    )


def render_table2(measured: Dict[str, Dict[str, int]], ladder: Dict[str, int]) -> str:
    """Table 2: target cardinalities, measured (paper), plus scaling check."""
    scales = list(ladder)
    headers = ["", *scales]
    rows = []
    for intention in INTENTIONS:
        row = [intention]
        for scale in scales:
            paper = PAPER_TABLE2[intention].get(scale)
            cell = _sci(measured[intention][scale])
            if paper is not None:
                cell += f" ({_sci(paper)})"
            row.append(cell)
        rows.append(row)
    lines = [
        "Table 2 — target cube cardinality |C|, measured (paper, at 100x our rows)",
        f"ladder: {', '.join(f'{k}={v:,} rows' for k, v in ladder.items())}",
        _render_grid(headers, rows),
    ]
    if len(scales) >= 2:
        checks = []
        for intention in INTENTIONS:
            first = measured[intention][scales[0]]
            last = measured[intention][scales[-1]]
            grows = last > first
            checks.append(f"{intention}: {'grows' if grows else 'FLAT'}")
        lines.append("cardinality grows with the cube: " + ", ".join(checks))
    return "\n".join(lines)


def render_table3(
    measured: Dict[str, Dict[str, Tuple[float, float]]], ladder: Dict[str, int]
) -> str:
    """Table 3: best-plan time with NP in parentheses, measured vs paper."""
    scales = list(ladder)
    headers = ["", *scales, *(f"paper {s}" for s in PAPER_TABLE3["Constant"])]
    rows = []
    for intention in INTENTIONS:
        row = [intention]
        for scale in scales:
            best, np_time = measured[intention][scale]
            row.append(f"{best:.2f} ({np_time:.2f})")
        for scale, (best, np_time) in PAPER_TABLE3[intention].items():
            row.append(f"{best:.2f} ({np_time:.2f})")
        rows.append(row)
    return (
        "Table 3 — minimum execution times in seconds (NP's in parentheses)\n"
        + "left: measured on this machine/ladder; right: paper (Oracle, full SSB)\n"
        + _render_grid(headers, rows)
    )


def render_fig3(
    measured: Dict[str, Dict[str, Dict[str, float]]], ladder: Dict[str, int]
) -> str:
    """Figure 3: per-plan execution times plus the plan-ordering claims."""
    scales = list(ladder)
    headers = ["intention", "plan", *scales]
    rows = []
    for intention in INTENTIONS:
        for plan in measured[intention]:
            row = [intention, plan]
            for scale in scales:
                row.append(f"{measured[intention][plan][scale]:.3f}s")
            rows.append(row)
    lines = [
        "Figure 3 — execution times per intention, plan, and scale",
        _render_grid(headers, rows),
        "",
        "claims:",
    ]
    lines.append(_check_plan_ordering(measured, scales))
    lines.append(_check_linear_scaling(measured, ladder))
    for claim in FIGURE3_CLAIMS:
        lines.append(f"  (paper) {claim}")
    return "\n".join(lines)


def _check_plan_ordering(measured, scales) -> str:
    verdicts = []
    largest = scales[-1]
    for intention in INTENTIONS:
        plans = list(measured[intention])
        expected = [p for p in ("NP", "JOP", "POP") if p in plans]
        times = [measured[intention][p][largest] for p in expected]
        ordered = all(times[i] >= times[i + 1] * 0.95 for i in range(len(times) - 1))
        verdicts.append(f"{intention}: {'✓' if ordered else '✗'}")
    return (
        "  measured plan ordering NP ≥ JOP ≥ POP at the largest scale: "
        + ", ".join(verdicts)
    )


def _check_linear_scaling(measured, ladder) -> str:
    scales = list(ladder)
    if len(scales) < 2:
        return "  linear scaling: (single-rung ladder, not checked)"
    verdicts = []
    for intention in INTENTIONS:
        best_plan = list(measured[intention])[-1]
        # Per-rung growth factors: linear scaling means each 10x in rows
        # costs ~10x in time.  Judged rung by rung so cache effects at the
        # smallest sizes don't distort the verdict.
        worst = 0.0
        for previous, current in zip(scales, scales[1:]):
            row_ratio = ladder[current] / ladder[previous]
            t_prev = measured[intention][best_plan][previous]
            t_curr = measured[intention][best_plan][current]
            time_ratio = t_curr / t_prev if t_prev > 0 else float("inf")
            worst = max(worst, time_ratio / row_ratio)
        linear = worst < 3.0
        verdicts.append(
            f"{intention}: worst rung {worst:.2f}x-of-linear {'✓' if linear else '✗'}"
        )
    return "  measured per-rung growth vs linear: " + ", ".join(verdicts)


def render_fig4(
    measured: Dict[str, Dict[str, Dict[str, float]]], ladder: Dict[str, int]
) -> str:
    """Figure 4: step breakdown of the Past intention per plan × scale."""
    from ..algebra.plan import ALL_STEPS

    scales = list(ladder)
    headers = ["plan", "scale", *ALL_STEPS]
    rows = []
    for plan in measured:
        for scale in scales:
            breakdown = measured[plan][scale]
            row = [plan, scale]
            for step in ALL_STEPS:
                value = breakdown.get(step)
                row.append(f"{1000 * value:.1f}ms" if value is not None else "-")
            rows.append(row)
    lines = [
        "Figure 4 — breakdown of the Past intention (per plan and scale)",
        _render_grid(headers, rows),
        "",
        "claims:",
    ]
    largest = scales[-1]
    for plan, per_scale in measured.items():
        breakdown = per_scale[largest]
        compare_label = breakdown.get("compare", 0.0) + breakdown.get("label", 0.0)
        total = sum(breakdown.values())
        negligible = compare_label < 0.1 * total if total else True
        lines.append(
            f"  {plan}: compare+label = {1000 * compare_label:.1f}ms of "
            f"{1000 * total:.1f}ms total "
            f"({'negligible ✓' if negligible else 'NOT negligible ✗'})"
        )
    for claim in FIGURE4_CLAIMS:
        lines.append(f"  (paper) {claim}")
    return "\n".join(lines)
