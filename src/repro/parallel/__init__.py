"""Morsel-driven parallel execution with a deterministic merge layer.

Public surface:

* :class:`ParallelConfig` — degree / morsel size / backend / eligibility.
* :func:`morsel_ranges`, :func:`run_morsel` — task partitioning + worker.
* :func:`merge_morsels`, :func:`decode_keys` — the order-stable merge.

The engine integration lives in :mod:`repro.engine.executor`
(``EngineExecutor.parallel``); sessions enable it via
``AssessSession(parallelism=N)`` or the ``REPRO_PARALLELISM`` environment
variable.  Results are bit-identical to serial execution — measures that
cannot guarantee that (fractional sums, by the
:func:`repro.engine.kernels.sums_exactly` gate) transparently fall back
to the serial path.  See docs/performance.md, "Parallel execution".
"""

from .config import DEFAULT_MORSEL_ROWS, ParallelConfig, env_parallelism
from .merge import decode_keys, merge_morsels
from .morsel import (
    AggSpec,
    DimPredicate,
    FactPredicate,
    JoinSpec,
    KeySpec,
    MorselResult,
    MorselTask,
    morsel_ranges,
    run_morsel,
)

__all__ = [
    "AggSpec",
    "DEFAULT_MORSEL_ROWS",
    "DimPredicate",
    "FactPredicate",
    "JoinSpec",
    "KeySpec",
    "MorselResult",
    "MorselTask",
    "ParallelConfig",
    "decode_keys",
    "env_parallelism",
    "merge_morsels",
    "morsel_ranges",
    "run_morsel",
]
