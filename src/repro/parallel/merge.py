"""Deterministic, partition-order-stable merge of morsel partials.

The merge is where the bit-identity guarantee is discharged.  Morsel
results arrive **in morsel index order** (the pool's ``map`` preserves
task order regardless of completion order); their key arrays are
concatenated in that order and factorised once with ``np.unique``, whose
sorted output reproduces exactly the group order the serial executor's
``combine_codes`` fold produces over the whole table.  Partials are then
reduced with the same distributive kernels the serial path uses:

* ``sum`` / ``count`` — ``np.bincount`` with weights.  Exact because the
  engine only routes a measure here after it passed the float-exactness
  gate (:func:`repro.engine.kernels.sums_exactly`): integral float64
  values whose total magnitude stays below 2**53 add exactly in *any*
  association order, so per-morsel subtotals plus this reduction equal
  the serial row-order sum to the last bit.  Counts are exact integers.
* ``min`` / ``max`` — ``np.minimum.at`` / ``np.maximum.at`` seeded with
  ±inf; associative and commutative, hence order-insensitive.

``avg`` never reaches this module as a partial: the driver lowers it to
a sum and a count partial and divides the merged totals — the identical
totals/counts division of the serial kernel.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .morsel import MorselResult


def merge_morsels(
    results: Sequence[MorselResult], ops: Sequence[str]
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Reduce per-morsel partials to global per-group aggregates.

    ``results`` must be in morsel index order; ``ops`` names the physical
    op of each partial slot (parallel to ``MorselTask.aggs``).  Returns
    the sorted distinct combined group keys and one merged array per op,
    aligned with the keys.
    """
    if not results:
        return np.empty(0, dtype=np.int64), [np.empty(0) for _ in ops]
    all_keys = np.concatenate([result.keys for result in results])
    merged_keys, inverse = np.unique(all_keys, return_inverse=True)
    inverse = inverse.astype(np.int64, copy=False)
    group_count = len(merged_keys)

    merged: List[np.ndarray] = []
    for slot, op in enumerate(ops):
        parts = np.concatenate([result.partials[slot] for result in results])
        if op in ("sum", "count"):
            merged.append(
                np.bincount(inverse, weights=parts, minlength=group_count)
            )
        elif op == "min":
            out = np.full(group_count, np.inf)
            np.minimum.at(out, inverse, parts)
            merged.append(out)
        elif op == "max":
            out = np.full(group_count, -np.inf)
            np.maximum.at(out, inverse, parts)
            merged.append(out)
        else:  # pragma: no cover - driver never emits other ops
            raise ValueError(f"unsupported merge op {op!r}")
    return merged_keys, merged


def decode_keys(
    merged_keys: np.ndarray, cardinalities: Sequence[int]
) -> List[np.ndarray]:
    """Unfold combined group keys back into per-column dictionary codes.

    Inverts the fold ``combined = (((c0) * card1 + c1) * card2 + c2)...``
    by peeling columns off the low end.  The decoded codes index each
    column's dictionary uniques, reconstructing the group coordinates the
    serial path reads off representative rows — same values, because the
    dictionaries are global and a code is constant within a group.
    """
    codes: List[np.ndarray] = []
    remaining = merged_keys.astype(np.int64, copy=True)
    for cardinality in reversed(list(cardinalities)):
        codes.append(remaining % cardinality)
        remaining //= cardinality
    codes.reverse()
    return codes
