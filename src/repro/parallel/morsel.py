"""Morsel tasks and the per-morsel worker.

A *morsel* is a contiguous range of fact rows.  The driver (the engine
executor) slices every per-row input — foreign-key columns, fact-resident
predicate columns, dictionary codes, measures — into one
:class:`MorselTask` per range and dispatches them to the worker pool.
:func:`run_morsel` then performs the whole scan pipeline locally:
semi-join position resolution, predicate masking, group-key folding, and
partial aggregation, returning a :class:`MorselResult` of *global*
combined group keys with per-key partials.

Everything in a task is either a NumPy slice (zero-copy under the thread
backend, pickled by value under the process backend) or a small shared
object (a key index, a pre-computed dimension mask).  This module
deliberately imports nothing from :mod:`repro.engine` — tasks treat
predicates and key indexes as opaque, which keeps the dependency graph
acyclic and the worker importable from a process pool.

Determinism contract (see :mod:`repro.parallel.merge`): the combined
group keys a worker emits are *globally* comparable because every code
column is encoded against the full table's dictionary before slicing —
morsels never build private dictionaries.  Folding uses the same
``combined * cardinality + codes`` recurrence as the serial executor, so
a group's key is the same integer no matter which morsel(s) it appears
in, and the merged sorted-key order reproduces the serial group order
exactly.
"""

from __future__ import annotations

import time
from typing import List, NamedTuple, Optional, Sequence, Tuple

import numpy as np


def morsel_ranges(n_rows: int, morsel_rows: int) -> List[Tuple[int, int]]:
    """Split ``n_rows`` into contiguous ``[lo, hi)`` ranges."""
    if n_rows <= 0:
        return []
    morsel_rows = max(int(morsel_rows), 1)
    return [
        (lo, min(lo + morsel_rows, n_rows)) for lo in range(0, n_rows, morsel_rows)
    ]


class JoinSpec(NamedTuple):
    """One semi-join leg of a morsel: resolve FK values to dim positions."""

    alias: str  # dimension alias, referenced by dim predicates / key specs
    index: object  # the dimension's KeyIndex (opaque; exposes positions_of)
    fk_values: np.ndarray  # this morsel's slice of the fact FK column


class FactPredicate(NamedTuple):
    """A predicate over a fact-resident column (pre-sliced)."""

    predicate: object  # opaque; exposes mask(values) -> bool array
    values: np.ndarray


class DimPredicate(NamedTuple):
    """A predicate over a dimension attribute, pre-evaluated per dim row.

    The (tiny) dimension-side mask is computed once by the driver and
    shared by every morsel; the worker just propagates it through the
    morsel's FK positions — the same semi-join the serial path performs.
    """

    alias: str
    dim_mask: np.ndarray


class KeySpec(NamedTuple):
    """One column of the group-by key, already dictionary-encoded.

    ``kind == "fact"``: ``codes`` is this morsel's slice of the fact
    column's global dictionary codes.  ``kind == "dim"``: ``codes`` is
    the *whole* dimension column's codes, gathered through the morsel's
    FK positions by the worker.
    """

    kind: str  # "fact" | "dim"
    alias: Optional[str]  # dimension alias when kind == "dim"
    codes: np.ndarray
    cardinality: int


class AggSpec(NamedTuple):
    """One physical partial aggregate: op in {sum, count, min, max}.

    ``values`` is the morsel's measure slice (``None`` for count).  The
    driver lowers logical aggregates onto these: ``avg`` becomes a sum
    partial plus a count partial, divided after the merge — exactly the
    totals/counts division the serial kernel performs.
    """

    op: str
    values: Optional[np.ndarray]


class MorselTask(NamedTuple):
    index: int
    lo: int
    hi: int
    joins: Tuple[JoinSpec, ...]
    fact_predicates: Tuple[FactPredicate, ...]
    dim_predicates: Tuple[DimPredicate, ...]
    keys: Tuple[KeySpec, ...]
    aggs: Tuple[AggSpec, ...]


class MorselResult(NamedTuple):
    index: int
    keys: np.ndarray  # sorted distinct combined group keys of this morsel
    partials: List[np.ndarray]  # one array per AggSpec, aligned with keys
    rows_in: int
    rows_matched: int
    seconds: float


def run_morsel(task: MorselTask) -> MorselResult:
    """Execute one morsel: semi-join, mask, fold, partial-aggregate.

    Runs entirely on worker-local arrays; emits no traces and touches no
    shared mutable state, so it is safe under both pool backends.
    """
    start = time.perf_counter()
    positions = {}
    for alias, index, fk_values in task.joins:
        positions[alias] = index.positions_of(fk_values)

    mask: Optional[np.ndarray] = None
    for predicate, values in task.fact_predicates:
        part = predicate.mask(values)
        mask = part if mask is None else (mask & part)
    for alias, dim_mask in task.dim_predicates:
        part = dim_mask[positions[alias]]
        mask = part if mask is None else (mask & part)

    rows_in = task.hi - task.lo
    n = rows_in if mask is None else int(mask.sum())

    # Fold the group key with the serial executor's exact recurrence over
    # the same global dictionary codes — keys are globally comparable.
    combined = np.zeros(n, dtype=np.int64)
    for kind, alias, codes, cardinality in task.keys:
        if kind == "fact":
            column_codes = codes if mask is None else codes[mask]
        else:
            pos = positions[alias]
            if mask is not None:
                pos = pos[mask]
            column_codes = codes[pos]
        combined = combined * cardinality + column_codes

    keys, local_ids = np.unique(combined, return_inverse=True)
    count = len(keys)

    partials: List[np.ndarray] = []
    for op, values in task.aggs:
        if op == "count":
            partials.append(
                np.bincount(local_ids, minlength=count).astype(np.float64)
            )
            continue
        assert values is not None
        measure = values if mask is None else values[mask]
        measure = np.asarray(measure, dtype=np.float64)
        if op == "sum":
            partials.append(
                np.bincount(local_ids, weights=measure, minlength=count)
            )
        elif op == "min":
            out = np.full(count, np.inf)
            np.minimum.at(out, local_ids, measure)
            partials.append(out)
        elif op == "max":
            out = np.full(count, -np.inf)
            np.maximum.at(out, local_ids, measure)
            partials.append(out)
        else:  # pragma: no cover - driver never emits other ops
            raise ValueError(f"unsupported partial aggregate {op!r}")

    return MorselResult(
        index=task.index,
        keys=keys,
        partials=partials,
        rows_in=rows_in,
        rows_matched=n,
        seconds=time.perf_counter() - start,
    )


def slice_task_arrays(task: MorselTask) -> int:  # pragma: no cover - debug aid
    """Approximate bytes a task ships to a worker (process backend sizing)."""
    total = 0
    for _, _, fk in task.joins:
        total += fk.nbytes
    for _, values in task.fact_predicates:
        total += values.nbytes
    for spec in task.keys:
        if spec.kind == "fact":
            total += spec.codes.nbytes
    for _, values in task.aggs:
        if values is not None:
            total += values.nbytes
    return total
