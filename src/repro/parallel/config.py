"""Parallel execution configuration and worker pools.

A :class:`ParallelConfig` bundles everything the engine needs to run a
fact pass morsel-driven: the parallelism *degree* (worker count), the
*morsel size* (rows per work unit), the *backend* (``"thread"`` by
default; ``"process"`` behind a flag for very large cubes where NumPy
kernels alone cannot saturate the machine), and the *eligibility floor*
``min_rows`` below which the engine does not bother parallelizing (the
dispatch and merge overhead would dominate a small scan).

The config owns a lazily-created worker pool shared by every query of
the session, so enabling parallelism costs one pool construction per
session, not one per statement.  :meth:`map_ordered` is the only
dispatch primitive the engine uses: it evaluates a function over the
morsel tasks and returns the results **in task order**, which is what
makes the downstream merge deterministic (see
:mod:`repro.parallel.merge` and docs/performance.md, "Parallel
execution").
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, TypeVar

DEFAULT_MORSEL_ROWS = 65_536
"""Rows per morsel: big enough that NumPy kernel time dominates the
per-morsel dispatch overhead, small enough that a 600k-row scan yields
~10 morsels for the scheduler to balance."""

BACKENDS = ("thread", "process")

T = TypeVar("T")
R = TypeVar("R")


def env_parallelism() -> Optional[int]:
    """The ``REPRO_PARALLELISM`` environment default (``None`` if unset).

    Non-numeric values are ignored rather than raised on, so a stray
    environment variable can never break session construction.
    """
    raw = os.environ.get("REPRO_PARALLELISM", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def env_morsel_rows() -> Optional[int]:
    """The ``REPRO_MORSEL_ROWS`` environment override (``None`` if unset)."""
    raw = os.environ.get("REPRO_MORSEL_ROWS", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


class ParallelConfig:
    """How (and whether) the engine parallelizes fact passes."""

    __slots__ = ("degree", "morsel_rows", "backend", "min_rows", "_pool")

    def __init__(
        self,
        degree: Optional[int] = None,
        morsel_rows: Optional[int] = None,
        backend: str = "thread",
        min_rows: Optional[int] = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown parallel backend {backend!r} (choose from {BACKENDS})"
            )
        if degree is None:
            degree = os.cpu_count() or 1
        self.degree = max(int(degree), 1)
        if morsel_rows is None:
            morsel_rows = env_morsel_rows() or DEFAULT_MORSEL_ROWS
        self.morsel_rows = max(int(morsel_rows), 1)
        self.backend = backend
        # Below the floor a scan stays serial.  The default demands at
        # least one full morsel so tiny cubes (tests, demos) keep the
        # exact serial code path with zero behavioural change.
        self.min_rows = self.morsel_rows if min_rows is None else max(int(min_rows), 0)
        self._pool = None

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this config can ever parallelize (degree above one)."""
        return self.degree > 1

    def eligible(self, n_rows: int) -> bool:
        """Whether a scan of ``n_rows`` fact rows should go parallel."""
        return (
            self.enabled
            and n_rows >= self.min_rows
            and n_rows > self.morsel_rows  # at least two morsels
        )

    # ------------------------------------------------------------------
    def pool(self):
        """The (lazily created) worker pool of this config."""
        if self._pool is None:
            if self.backend == "process":
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.degree)
            else:
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.degree,
                    thread_name_prefix="repro-morsel",
                )
        return self._pool

    def map_ordered(
        self, function: Callable[[T], R], tasks: Sequence[T]
    ) -> List[R]:
        """Evaluate ``function`` over ``tasks``, results in task order.

        Task order — not completion order — is the determinism contract
        the merge layer relies on: whatever the scheduler does, morsel
        ``i``'s partials always land in slot ``i``.
        """
        if len(tasks) == 1:  # degenerate dispatch: skip the pool entirely
            return [function(tasks[0])]
        return list(self.pool().map(function, tasks))

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ParallelConfig(degree={self.degree}, morsel_rows={self.morsel_rows}, "
            f"backend={self.backend!r}, min_rows={self.min_rows})"
        )
