"""Logical algebra: plan nodes, NP/JOP/POP planning, rewriting, execution.

Implements Sections 4.2 (logical operators), 4.3 (statement semantics) and 5
(basic properties P1–P3 and the three execution plans) of the paper.
"""

from .executor import PlanExecutor
from .plan import (
    ALL_STEPS,
    AddConstantNode,
    GetNode,
    JoinNode,
    LabelNode,
    PivotNode,
    Plan,
    PlanNode,
    PredictNode,
    ProjectNode,
    RollupJoinNode,
    STEP_COMPARE,
    STEP_GET_BENCHMARK,
    STEP_GET_COMBINED,
    STEP_GET_TARGET,
    STEP_JOIN,
    STEP_LABEL,
    STEP_TRANSFORM,
    UsingNode,
)
from .planner import (
    JOP,
    NP,
    POP,
    build_all_plans,
    build_naive_plan,
    build_plan,
    feasible_plans,
)
from .rewrite import p1_commutes, push_join_to_sql, replace_join_with_pivot

__all__ = [
    "ALL_STEPS",
    "AddConstantNode",
    "GetNode",
    "JOP",
    "JoinNode",
    "LabelNode",
    "NP",
    "POP",
    "PivotNode",
    "Plan",
    "PlanExecutor",
    "PlanNode",
    "PredictNode",
    "ProjectNode",
    "RollupJoinNode",
    "STEP_COMPARE",
    "STEP_GET_BENCHMARK",
    "STEP_GET_COMBINED",
    "STEP_GET_TARGET",
    "STEP_JOIN",
    "STEP_LABEL",
    "STEP_TRANSFORM",
    "UsingNode",
    "build_all_plans",
    "build_naive_plan",
    "build_plan",
    "feasible_plans",
    "p1_commutes",
    "push_join_to_sql",
    "replace_join_with_pivot",
]
