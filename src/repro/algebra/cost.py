"""Cost-based plan selection (the paper's §8 future work).

"Investigate the relevant properties of our logical operators and develop a
cost-based optimization strategy."

The model estimates each plan node's cost from catalog statistics —
fact-table cardinality, per-level distinct counts, predicate selectivities
— using textbook estimators:

* **selectivity** of ``l = u`` is ``1/|Dom(l)|``; of ``l IN {u1..uk}`` is
  ``k/|Dom(l)|``; range predicates get a fixed default;
* the **number of groups** of an aggregation over ``n`` rows with ``s``
  possible slots follows the Poisson "balls in bins" estimator
  ``s · (1 − e^(−n/s))``;
* per-row weights separate *engine* (vectorised) work from *in-memory*
  (cube-object) work, reflecting the measured gap between pushed and
  in-memory operators.

Costs are relative, unit-free weights — only the *ordering* of plans
matters.  :func:`choose_plan` estimates every feasible plan of a statement
and returns the cheapest, giving ``AssessSession.assess(..., plan="auto")``
its brains.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.query import CubeQuery, Predicate, PredicateOp
from ..core.statement import AssessStatement
from ..engine.columns import plan_zone_pruning
from ..engine.spill import grouping_state_bytes
from ..olap.engine import MultidimensionalEngine
from .plan import (
    AddConstantNode,
    AttachPropertyNode,
    GetNode,
    JoinNode,
    LabelNode,
    PivotNode,
    Plan,
    PlanNode,
    PredictNode,
    ProjectNode,
    RollupJoinNode,
    UsingNode,
)
from .planner import build_all_plans

# Relative per-row weights (engine rows are vectorised; cube rows are not).
SCAN_WEIGHT = 1.0          # engine: scan + mask one fact row
GROUP_WEIGHT = 4.0         # engine: factorize + aggregate one grouped row
ENGINE_JOIN_WEIGHT = 3.0   # engine: hash-join one result row
ENGINE_PIVOT_WEIGHT = 4.0  # engine: pivot-scatter one result row
MEMORY_ROW_WEIGHT = 40.0   # cube objects: per-cell Python-level work
TRANSFORM_WEIGHT = 2.0     # vectorised per-cell transform work
RANGE_SELECTIVITY = 0.3    # default selectivity of between predicates
WARM_CELL_WEIGHT = 0.2     # cache: serve a memoized result (copy-out only)
DERIVE_CELL_WEIGHT = 6.0   # cache: re-aggregate a cached finer result
MORSEL_OVERHEAD = 50.0     # parallel: dispatch + collect one morsel task
MERGE_ROW_WEIGHT = 2.0     # parallel: merge one per-morsel partial row
SPILL_ROW_WEIGHT = 3.0     # spill: partition + write + re-read + re-merge
                           # one buffered partial row (I/O-bound, so
                           # heavier than the in-RAM merge weight)
SPILL_MORSEL_ROWS = 65_536  # the spill tier's scan granularity when the
                            # engine is otherwise serial


class CostEstimate:
    """An estimated plan cost with its per-node breakdown.

    Besides the per-node-type totals, the estimate records each visited
    node's charged cost and estimated output cardinality keyed by
    ``id(node)`` — the per-node annotations ``explain()`` and
    ``explain_analyze()`` render next to the actual row counts.
    """

    def __init__(self, plan: Plan):
        self.plan = plan
        self.total = 0.0
        self.breakdown: Dict[str, float] = {}
        self.node_costs: Dict[int, float] = {}
        self.node_rows: Dict[int, float] = {}
        # How the model expects each get to execute ("serial", "parallel",
        # "warm", "derive", "shared") — explain() renders this next to the
        # cost, and tests assert the serial-vs-parallel decision.
        self.node_modes: Dict[int, str] = {}

    def record_mode(self, node: PlanNode, mode: str) -> None:
        self.node_modes[id(node)] = mode

    def charge(self, node: PlanNode, cost: float) -> None:
        self.total += cost
        key = type(node).__name__
        self.breakdown[key] = self.breakdown.get(key, 0.0) + cost
        self.node_costs[id(node)] = self.node_costs.get(id(node), 0.0) + cost

    def record_rows(self, node: PlanNode, rows: float) -> None:
        self.node_rows[id(node)] = rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostEstimate({self.plan.name}, total={self.total:.0f})"


class Statistics:
    """Catalog statistics provider, with per-source caching."""

    def __init__(self, engine: MultidimensionalEngine):
        self.engine = engine
        self._fact_rows: Dict[str, int] = {}
        self._cardinalities: Dict[Tuple[str, str], int] = {}
        self._zone_survival: Dict[CubeQuery, float] = {}

    def parallel_config(self):
        """The engine's parallel config (``None`` when serial)."""
        return getattr(self.engine, "parallel", None)

    def parallel_degree(self, source: str) -> int:
        """The parallelism a fact pass over this source would run at.

        1 when parallelism is off or the fact table falls below the
        eligibility floor — the executor would stay serial, so the model
        must price it serial too.
        """
        config = self.parallel_config()
        if config is None or not config.eligible(self.fact_rows(source)):
            return 1
        return config.degree

    def morsels(self, source: str) -> int:
        """How many morsel tasks a parallel pass over this source spawns."""
        config = self.parallel_config()
        if config is None:
            return 1
        return max(1, -(-self.fact_rows(source) // config.morsel_rows))

    def fact_rows(self, source: str) -> int:
        if source not in self._fact_rows:
            star = self.engine.cube(source).star
            self._fact_rows[source] = len(self.engine.catalog.table(star.fact_table))
        return self._fact_rows[source]

    def level_cardinality(self, source: str, level: str) -> int:
        key = (source, level)
        if key not in self._cardinalities:
            star = self.engine.cube(source).star
            table_token, column = star.column_for_level(level)
            table_name = (
                star.fact_table if table_token == "__fact__" else table_token
            )
            table = self.engine.catalog.table(table_name)
            _, cardinality = table.dictionary(column)
            self._cardinalities[key] = max(cardinality, 1)
        return self._cardinalities[key]

    def selectivity(self, source: str, predicate: Predicate) -> float:
        cardinality = self.level_cardinality(source, predicate.level)
        if predicate.op is PredicateOp.EQ:
            return 1.0 / cardinality
        if predicate.op is PredicateOp.IN:
            return min(1.0, len(predicate.values) / cardinality)
        return RANGE_SELECTIVITY

    def zone_survival(self, query: CubeQuery) -> float:
        """Fraction of fact rows a zone-pruned scan of this query touches.

        Plans the *same* pruning the executor would perform (same
        :func:`plan_zone_pruning` over the pushed query's predicates and
        joins), so the planner and the engine always agree on what gets
        skipped.  1.0 when the fact table carries no zone maps, pruning
        is disabled, or nothing prunes.
        """
        if query not in self._zone_survival:
            fraction = 1.0
            executor = getattr(self.engine, "executor", None)
            if executor is None or getattr(executor, "zone_pruning", False):
                try:
                    pushed = self.engine.build_aggregate_query(query)
                    fact = self.engine.catalog.table(pushed.fact)
                    pruner = plan_zone_pruning(
                        self.engine.catalog, fact, pushed.fact,
                        pushed.where, pushed.joins,
                    )
                    if pruner is not None:
                        fraction = pruner.survival_fraction()
                except Exception:
                    fraction = 1.0
            self._zone_survival[query] = fraction
        return self._zone_survival[query]

    def scanned_rows(self, query: CubeQuery) -> float:
        total = float(self.fact_rows(query.source))
        rows = total
        for predicate in query.predicates:
            rows *= self.selectivity(query.source, predicate)
        # Zone-map pruning bounds the scan physically: only surviving
        # zones are decoded, whatever the per-row selectivities say.
        rows = min(rows, total * self.zone_survival(query))
        return max(rows, 1.0)

    def result_cells(self, query: CubeQuery) -> float:
        """Poisson estimator of the derived cube's cardinality |C|."""
        scanned = self.scanned_rows(query)
        slots = 1.0
        for level in query.group_by.levels:
            slots *= self.level_cardinality(query.source, level)
            # predicates on group-by levels shrink the slot space too
            predicate = query.predicate_on(level)
            if predicate is not None:
                slots *= self.selectivity(query.source, predicate)
        slots = max(slots, 1.0)
        if scanned / slots > 50:  # effectively dense
            return slots
        return slots * (1.0 - math.exp(-scanned / slots))

    def memory_budget(self) -> Optional[int]:
        """The engine's aggregation memory budget (bytes), if any."""
        executor = getattr(self.engine, "executor", None)
        return getattr(executor, "memory_budget", None)

    def spill_admitted(self, query: CubeQuery) -> bool:
        """Whether the executor would route this get through the spill tier.

        Mirrors ``EngineExecutor._spill_admits`` (pessimistic grouping-state
        estimate vs the budget) plus the float-exactness gate: measures
        whose sums are not exactly re-aggregable make the executor fall
        back to the serial in-RAM path, so the model must price them
        serial too.
        """
        budget = self.memory_budget()
        if budget is None:
            return False
        try:
            aggregate = self.engine.build_aggregate_query(query)
            fact = self.engine.catalog.table(aggregate.fact)
            slots = len(aggregate.aggregates)
            if grouping_state_bytes(len(fact), 0, slots) <= budget:
                return False
            for spec in aggregate.aggregates:
                if spec.op in ("sum", "avg") and not fact.sums_exactly(
                    spec.column
                ):
                    return False
        except Exception:
            return False
        return True

    def cache_probe(self, query: CubeQuery) -> Optional[str]:
        """Whether the engine's result cache would answer a get warm.

        Returns ``"exact"``, ``"derive"``, or ``None`` (cold).  Uses the
        cache's non-mutating probe on the same pushed query the engine
        would build, so the planner can prefer plans whose gets are warm.
        """
        cache = getattr(self.engine, "result_cache", None)
        if cache is None or not cache.enabled:
            return None
        return cache.would_hit(self.engine.build_aggregate_query(query))


class BatchSharedState:
    """Pushed work already paid for by earlier statements of a batch.

    Tracks the canonical fingerprints of chosen plans' pushed gets (a
    repeated get costs only the memo copy-out) and their *scan keys* —
    fact + joins + canonical predicate set.  A get whose scan key is
    already chosen shares a fused fact pass with it, so only its
    grouping-sized work is charged.  :func:`choose_plan_batch` feeds one
    instance through a greedy per-statement selection.
    """

    __slots__ = ("nodes", "scans")

    def __init__(self):
        self.nodes: Set[Tuple] = set()
        self.scans: Set[Tuple] = set()

    def observe(self, plan: Plan, engine: MultidimensionalEngine) -> None:
        """Record a chosen plan's pushed gets as shared for later plans."""
        from ..cache.fingerprint import fingerprint_query

        for node in plan.nodes():
            if isinstance(node, GetNode):
                aggregate = engine.build_aggregate_query(node.query)
                self.nodes.add(fingerprint_query(aggregate))
                self.scans.add(_scan_key(aggregate))


def _scan_key(aggregate) -> Tuple:
    """The shared-scan identity of a pushed get: star + predicate set."""
    from ..cache.fingerprint import _predicate_key

    return (
        aggregate.fact,
        tuple(sorted(
            (j.table, j.fact_fk, j.dim_key) for j in aggregate.joins
        )),
        frozenset(_predicate_key(cp) for cp in aggregate.where),
    )


def estimate_plan_cost(
    plan: Plan, engine: MultidimensionalEngine,
    statistics: Optional[Statistics] = None,
    shared: Optional[BatchSharedState] = None,
) -> CostEstimate:
    """Estimate a plan's execution cost bottom-up.

    Returns the estimate with a per-node-type breakdown; node visits return
    their estimated output cardinality so parents can price their own work.
    With ``shared`` (batch mode), gets whose fingerprint or scan key an
    earlier statement already chose are priced as shared.
    """
    stats = statistics or Statistics(engine)
    estimate = CostEstimate(plan)

    def get_cost(node: GetNode) -> float:
        cells = _get_cost(node)
        estimate.record_rows(node, cells)
        return cells

    def _get_cost(node: GetNode) -> float:
        from ..cache.fingerprint import fingerprint_query

        cells = stats.result_cells(node.query)
        if shared is not None:
            aggregate = engine.build_aggregate_query(node.query)
            if fingerprint_query(aggregate) in shared.nodes:
                # An earlier statement executes this exact get; the batch
                # memo serves it at copy-out cost.
                estimate.charge(node, WARM_CELL_WEIGHT * cells)
                estimate.record_mode(node, "warm")
                return cells
        probe = stats.cache_probe(node.query)
        if probe == "exact":
            # A memoized result: no scan, no grouping — just copy-out.
            estimate.charge(node, WARM_CELL_WEIGHT * cells)
            estimate.record_mode(node, "warm")
            return cells
        if probe == "derive":
            # Re-aggregated from a cached finer result: grouping-sized
            # work over cached rows, still no fact scan.
            estimate.charge(node, DERIVE_CELL_WEIGHT * cells)
            estimate.record_mode(node, "derive")
            return cells
        if shared is not None and _scan_key(aggregate) in shared.scans:
            # Same star and predicates as an already-chosen get: the fused
            # scan is paid once, only the grouping work is marginal.
            estimate.charge(node, GROUP_WEIGHT * cells)
            estimate.record_mode(node, "shared")
            return cells
        scanned = stats.scanned_rows(node.query)
        serial_cost = SCAN_WEIGHT * scanned + GROUP_WEIGHT * cells
        if stats.spill_admitted(node.query):
            # Budgeted execution is not a *choice* — admission forces the
            # get through the bounded-memory tier, so the model prices it
            # (morselised scan, partitioned buffering, run I/O, bucket
            # merges) rather than comparing it against alternatives.
            morsels = max(
                stats.morsels(node.query.source),
                -(-int(scanned) // SPILL_MORSEL_ROWS),
            )
            merge_rows = min(cells * morsels, scanned)
            spill_cost = (
                serial_cost
                + MORSEL_OVERHEAD * morsels
                + SPILL_ROW_WEIGHT * merge_rows
            )
            estimate.charge(node, spill_cost)
            estimate.record_mode(node, "spill")
            return cells
        degree = stats.parallel_degree(node.query.source)
        if degree > 1:
            # Morsel-parallel alternative: the scan+group work divides
            # across workers, plus per-morsel dispatch overhead and a
            # merge pass over the per-morsel partial groups (bounded by
            # both cells·morsels and the scanned rows themselves).
            morsels = stats.morsels(node.query.source)
            merge_rows = min(cells * morsels, scanned)
            parallel_cost = (
                serial_cost / degree
                + MORSEL_OVERHEAD * morsels
                + MERGE_ROW_WEIGHT * merge_rows
            )
            if parallel_cost < serial_cost:
                estimate.charge(node, parallel_cost)
                estimate.record_mode(node, "parallel")
                return cells
        estimate.charge(node, serial_cost)
        estimate.record_mode(node, "serial")
        return cells

    def visit(node: PlanNode) -> float:
        out = _visit(node)
        estimate.record_rows(node, out)
        return out

    def _visit(node: PlanNode) -> float:
        if isinstance(node, GetNode):
            return get_cost(node)
        if isinstance(node, JoinNode):
            if node.pushed:
                left = get_cost(node.left)   # children folded into the query
                right = get_cost(node.right)
                out = min(left, right)
                estimate.charge(node, ENGINE_JOIN_WEIGHT * (left + right))
                return out
            left = visit(node.left)
            right = visit(node.right)
            out = min(left, right)
            estimate.charge(node, MEMORY_ROW_WEIGHT * (left + right))
            return out
        if isinstance(node, PivotNode):
            if node.pushed:
                cells = get_cost(node.child)
                members = max(len(node.member_renames) + 1, 1)
                out = cells / members
                estimate.charge(node, ENGINE_PIVOT_WEIGHT * cells)
                return out
            cells = visit(node.child)
            members = max(len(node.member_renames) + 1, 1)
            out = cells / members
            estimate.charge(node, MEMORY_ROW_WEIGHT * cells)
            return out
        if isinstance(node, RollupJoinNode):
            left = visit(node.left)
            right = visit(node.right)
            estimate.charge(node, MEMORY_ROW_WEIGHT * (left + right))
            return left
        if isinstance(node, PredictNode):
            cells = visit(node.child)
            width = max(len(node.input_columns), 1)
            estimate.charge(node, TRANSFORM_WEIGHT * cells * width)
            return cells
        if isinstance(node, (UsingNode, LabelNode)):
            cells = visit(node.child)
            estimate.charge(node, TRANSFORM_WEIGHT * cells)
            return cells
        if isinstance(node, (ProjectNode, AddConstantNode, AttachPropertyNode)):
            cells = visit(node.child)
            estimate.charge(node, 0.1 * cells)
            return cells
        raise TypeError(f"cost model does not know {type(node).__name__}")

    visit(plan.root)
    return estimate


def choose_plan(
    statement: AssessStatement, engine: MultidimensionalEngine
) -> Tuple[Plan, Dict[str, float]]:
    """Pick the cheapest feasible plan by estimated cost.

    Returns the chosen plan and the estimated totals of every candidate
    (for explain/debug output).
    """
    stats = Statistics(engine)
    plans = build_all_plans(statement, engine)
    estimates = {
        name: estimate_plan_cost(plan, engine, stats)
        for name, plan in plans.items()
    }
    best = min(estimates, key=lambda name: estimates[name].total)
    return plans[best], {name: e.total for name, e in estimates.items()}


def choose_plan_batch(
    statements: Sequence[AssessStatement],
    engine: MultidimensionalEngine,
    analysis=None,
) -> Tuple[List[Plan], List[Dict[str, float]]]:
    """Greedy batch-aware plan selection: maximize cross-statement sharing.

    Statements are planned in input order; each picks the plan with the
    smallest *marginal* cost given what earlier statements already pay
    for (shared fingerprints and scan keys).  Returns the chosen plans
    plus each statement's candidate totals (for explain/debug output).

    ``analysis`` optionally carries a
    :class:`repro.analysis.flow.WorkloadReport`: scan keys the workload
    analyzer proved fusable are seeded as already-shared, so the greedy
    selection prices statically-predicted fused scans as marginal from
    the first statement on instead of discovering them one by one.
    """
    stats = Statistics(engine)
    shared = BatchSharedState()
    if analysis is not None:
        shared.scans.update(analysis.fusable_scan_keys)
    chosen: List[Plan] = []
    totals: List[Dict[str, float]] = []
    for statement in statements:
        candidates = build_all_plans(statement, engine)
        estimates = {
            name: estimate_plan_cost(plan, engine, stats, shared=shared)
            for name, plan in candidates.items()
        }
        best = min(estimates, key=lambda name: estimates[name].total)
        shared.observe(candidates[best], engine)
        chosen.append(candidates[best])
        totals.append({name: e.total for name, e in estimates.items()})
    return chosen, totals
