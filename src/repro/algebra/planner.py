"""Planning: from an assess statement to executable logical plans.

:func:`build_naive_plan` translates a statement into the Naive Plan (NP) of
Section 5.2.1, faithfully reproducing the operator sequences of Section 4.3
for every benchmark type.  The optimized plans derive from NP by rewriting:

* **JOP** = :func:`repro.algebra.rewrite.push_join_to_sql` (property P2 +
  join pushdown) applied to NP;
* **POP** = :func:`repro.algebra.rewrite.replace_join_with_pivot` (property
  P3) applied to JOP.

:func:`feasible_plans` implements the feasibility matrix of Section 5.2:
constant benchmarks admit only NP (there is no join), external benchmarks
NP/JOP, sibling and past benchmarks NP/JOP/POP.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.errors import PlanError, ValidationError
from ..core.groupby import GroupBySet
from ..core.query import CubeQuery, Predicate
from ..core.statement import (
    AncestorBenchmark,
    AssessStatement,
    ConstantBenchmark,
    ExternalBenchmark,
    PastBenchmark,
    SiblingBenchmark,
    ZeroBenchmark,
)
from ..olap.engine import MultidimensionalEngine
from . import rewrite
from .plan import (
    AddConstantNode,
    GetNode,
    JoinNode,
    LabelNode,
    PivotNode,
    Plan,
    PlanNode,
    PredictNode,
    ProjectNode,
    RollupJoinNode,
    UsingNode,
)

COMPARISON_COLUMN = "comparison"
LABEL_COLUMN = "label"
NP, JOP, POP = "NP", "JOP", "POP"


def feasible_plans(statement: AssessStatement) -> Tuple[str, ...]:
    """The plans applicable to a statement's benchmark type (Section 5.2)."""
    benchmark = statement.benchmark
    if isinstance(benchmark, (ZeroBenchmark, ConstantBenchmark, AncestorBenchmark)):
        return (NP,)
    if isinstance(benchmark, ExternalBenchmark):
        return (NP, JOP)
    if isinstance(benchmark, (SiblingBenchmark, PastBenchmark)):
        return (NP, JOP, POP)
    raise PlanError(f"unknown benchmark type {type(benchmark).__name__}")


def build_plan(
    statement: AssessStatement,
    engine: MultidimensionalEngine,
    plan_name: str = NP,
    validate: bool = True,
) -> Plan:
    """Build a named plan for a statement.

    ``plan_name`` is ``"NP"``, ``"JOP"``, ``"POP"`` or ``"best"`` (the most
    optimized feasible plan — the one Table 3 reports).  With ``validate``
    (the default) the built plan is re-verified by the static analyzer's
    plan passes, so a broken rewrite fails here with every defect listed
    instead of crashing mid-execution.
    """
    feasible = feasible_plans(statement)
    if plan_name == "best":
        plan_name = feasible[-1]
    if plan_name not in feasible:
        raise PlanError(
            f"plan {plan_name} is not feasible for a "
            f"{statement.benchmark.kind} benchmark (feasible: {', '.join(feasible)})"
        )
    plan = build_naive_plan(statement, engine)
    if plan_name != NP:
        plan = rewrite.push_join_to_sql(plan)
        plan.name = JOP
    if plan_name == POP:
        plan = rewrite.replace_join_with_pivot(plan)
        plan.name = POP
    if validate:
        validate_plan(plan, statement)
    return plan


def validate_plan(plan: Plan, statement: AssessStatement) -> None:
    """Run the analyzer's plan passes; raise :class:`PlanError` listing
    *every* error-severity finding at once."""
    from ..analysis import verify_plan

    bag = verify_plan(plan, statement)
    if bag.has_errors:
        details = "\n".join(
            f"  {diagnostic.code}: {diagnostic.message}"
            for diagnostic in bag.errors()
        )
        raise PlanError(
            f"plan {plan.name} failed verification:\n{details}"
        )


def build_all_plans(
    statement: AssessStatement, engine: MultidimensionalEngine
) -> Dict[str, Plan]:
    """Every feasible plan for a statement, keyed by name."""
    return {
        name: build_plan(statement, engine, name)
        for name in feasible_plans(statement)
    }


# ----------------------------------------------------------------------
# NP construction (Section 4.3 semantics, one branch per benchmark type)
# ----------------------------------------------------------------------
def build_naive_plan(
    statement: AssessStatement, engine: MultidimensionalEngine
) -> Plan:
    """The Naive Plan: only gets are pushed to SQL; everything else runs in
    memory on cube objects (Section 5.2.1)."""
    benchmark = statement.benchmark
    if isinstance(benchmark, (ZeroBenchmark, ConstantBenchmark)):
        root, benchmark_column = _constant_pipeline(statement)
    elif isinstance(benchmark, ExternalBenchmark):
        root, benchmark_column = _external_pipeline(statement, engine)
    elif isinstance(benchmark, SiblingBenchmark):
        root, benchmark_column = _sibling_pipeline(statement)
    elif isinstance(benchmark, PastBenchmark):
        root, benchmark_column = _past_pipeline(statement, engine)
    elif isinstance(benchmark, AncestorBenchmark):
        root, benchmark_column = _ancestor_pipeline(statement)
    else:
        raise PlanError(f"unknown benchmark type {type(benchmark).__name__}")

    root = _attach_properties(root, statement, engine)
    root = UsingNode(root, statement.using, COMPARISON_COLUMN)
    root = LabelNode(root, statement.labels, COMPARISON_COLUMN, LABEL_COLUMN)
    return Plan(
        NP,
        root,
        measure=statement.measure,
        benchmark_column=benchmark_column,
        comparison_column=COMPARISON_COLUMN,
        label_column=LABEL_COLUMN,
    )


def _attach_properties(
    root: PlanNode, statement: AssessStatement, engine: MultidimensionalEngine
) -> PlanNode:
    """Insert AttachProperty nodes for descriptive-property references.

    Any unqualified ``using`` reference that is neither a schema measure nor
    a benchmark column must name a level property bound by the star schema
    (§8 extension); its level must belong to the group-by set so each cell
    has a member to look the value up with.
    """
    from .plan import AttachPropertyNode

    attached = set()
    for ref in statement.using.references():
        name = ref.name
        if ref.qualifier is None:
            if statement.schema.has_measure(name) or ref.column_name in attached:
                continue
        elif ref.qualifier == "benchmark":
            benchmark_schema = statement.schema
            if isinstance(statement.benchmark, ExternalBenchmark):
                benchmark_schema = engine.cube(statement.benchmark.cube).schema
            is_measure = (
                benchmark_schema.has_measure(name)
                or name == statement.benchmark_measure
            )
            if is_measure or ref.column_name in attached:
                continue
        else:
            continue
        if not engine.has_property(statement.source, name):
            raise ValidationError(
                f"{name!r} is neither a measure of {statement.source!r} nor a "
                "bound level property"
            )
        level, _, _ = engine.cube(statement.source).star.property_binding(name)
        if level not in statement.group_by:
            raise ValidationError(
                f"property {name!r} belongs to level {level!r}, which must be "
                f"in the by clause to be referenced"
            )
        fixed_member = None
        if ref.qualifier == "benchmark":
            benchmark = statement.benchmark
            if isinstance(benchmark, SiblingBenchmark) and benchmark.level == level:
                # the benchmark slice sits at the sibling member, so its
                # property value is that member's (e.g. France's population)
                fixed_member = benchmark.sibling
            # for other benchmark types the benchmark cell shares the
            # target's member on this level, so the per-cell lookup applies
        root = AttachPropertyNode(
            root, statement.source, name, level,
            out_name=ref.column_name, fixed_member=fixed_member,
        )
        attached.add(ref.column_name)
    return root


def _target_query(statement: AssessStatement) -> CubeQuery:
    """The get of the target cube, fetching every measure ``using`` needs.

    The assessed measure comes first; further unqualified measure references
    in the ``using`` clause (derived measures like ``storeSales -
    storeCost``) are appended so the comparison can be evaluated.
    """
    measures = [statement.measure]
    for ref in statement.using.references():
        if (
            ref.qualifier is None
            and statement.schema.has_measure(ref.name)
            and ref.name not in measures
        ):
            measures.append(ref.name)
    return CubeQuery(
        statement.source, statement.group_by, statement.predicates, tuple(measures)
    )


def _benchmark_measures(statement: AssessStatement, schema) -> Tuple[str, ...]:
    """Measures a benchmark get must fetch: ``m_B`` plus any further
    ``benchmark.``-qualified references in the using clause."""
    measures = [statement.benchmark_measure]
    for ref in statement.using.references():
        if (
            ref.qualifier == "benchmark"
            and schema.has_measure(ref.name)
            and ref.name not in measures
        ):
            measures.append(ref.name)
    return tuple(measures)


def _constant_pipeline(statement: AssessStatement) -> Tuple[PlanNode, str]:
    """Constant/zero benchmark: ``C = [get]`` plus a constant column.

    The benchmark cube "has exactly the same coordinates as C" with a
    constant measure, so materialising it separately and joining would be
    pure overhead; the constant column on the target IS the joined cube.
    """
    value = (
        statement.benchmark.value
        if isinstance(statement.benchmark, ConstantBenchmark)
        else 0.0
    )
    column = f"benchmark.{statement.benchmark_measure}"
    node: PlanNode = GetNode(_target_query(statement), role="target")
    node = AddConstantNode(node, value, column)
    return node, column


def _external_pipeline(
    statement: AssessStatement, engine: MultidimensionalEngine
) -> Tuple[PlanNode, str]:
    """External benchmark: ``C = [get target] ⋈ [B]`` (natural drill-across)."""
    benchmark = statement.benchmark
    assert isinstance(benchmark, ExternalBenchmark)
    external = engine.cube(benchmark.cube)
    for level_name in statement.group_by.levels:
        if not external.schema.has_level(level_name):
            raise ValidationError(
                f"external cube {benchmark.cube!r} has no level {level_name!r}; "
                "the cubes are not joinable (Definition 3.1)"
            )
    external_group_by = GroupBySet(external.schema, statement.group_by.levels)
    external_predicates = tuple(
        p for p in statement.predicates if external.schema.has_level(p.level)
    )
    benchmark_query = CubeQuery(
        benchmark.cube,
        external_group_by,
        external_predicates,
        _benchmark_measures(statement, external.schema),
    )
    target = GetNode(_target_query(statement), role="target")
    bench = GetNode(benchmark_query, role="benchmark", name="benchmark")
    join = JoinNode(
        target, bench, join_levels=None, alias="benchmark",
        outer=statement.star, pushed=False,
    )
    return join, f"benchmark.{benchmark.measure_name}"


def _sibling_pipeline(statement: AssessStatement) -> Tuple[PlanNode, str]:
    """Sibling benchmark: partial join on ``G \\ l_s`` with the sibling slice."""
    benchmark = statement.benchmark
    assert isinstance(benchmark, SiblingBenchmark)
    slice_predicate = statement.slice_predicate(benchmark.level)
    benchmark_predicates = tuple(
        Predicate.eq(benchmark.level, benchmark.sibling) if p == slice_predicate else p
        for p in statement.predicates
    )
    benchmark_query = CubeQuery(
        statement.source, statement.group_by, benchmark_predicates,
        _benchmark_measures(statement, statement.schema),
    )
    join_levels = [
        level for level in statement.group_by.levels if level != benchmark.level
    ]
    target = GetNode(_target_query(statement), role="target")
    bench = GetNode(benchmark_query, role="benchmark", name="benchmark")
    join = JoinNode(
        target, bench, join_levels=join_levels, alias="benchmark",
        outer=statement.star, pushed=False,
    )
    return join, f"benchmark.{statement.measure}"


def _past_pipeline(
    statement: AssessStatement, engine: MultidimensionalEngine
) -> Tuple[PlanNode, str]:
    """Past benchmark, following the NP of Example 4.5 step by step:

    get B (the k past slices) → pivot B onto the latest past slice →
    regression → partial join with C on ``G \\ l_t``.
    """
    benchmark = statement.benchmark
    assert isinstance(benchmark, PastBenchmark)
    measure = statement.measure
    level = statement.temporal_level
    slice_predicate = statement.slice_predicate(level)
    member = next(iter(slice_predicate.member_set()))
    past_members = engine.predecessors(statement.source, level, member, benchmark.k)
    if not past_members:
        raise PlanError(
            f"no past slices before {member!r} on level {level!r} "
            f"for the past benchmark"
        )
    benchmark_predicates = tuple(
        Predicate.isin(level, past_members) if p == slice_predicate else p
        for p in statement.predicates
    )
    benchmark_query = CubeQuery(
        statement.source, statement.group_by, benchmark_predicates, (measure,)
    )
    renames = {
        past: {measure: f"past_{i + 1}"} for i, past in enumerate(past_members)
    }
    history_columns = [f"past_{i + 1}" for i in range(len(past_members))]

    # Spread pivot (reference=None): one row per rest-key present in any
    # past slice, so cells missing from the newest slice still get a
    # forecast — the same set of cells JOP's fan-in join and POP's
    # target-anchored pivot produce.
    bench: PlanNode = GetNode(benchmark_query, role="benchmark", name="benchmark")
    bench = PivotNode(bench, level, None, renames, require_all=False,
                      pushed=False, fill_member=past_members[-1])
    bench = PredictNode(bench, benchmark.method, history_columns, "prediction")
    bench = ProjectNode(bench, ["prediction"], renames={"prediction": measure})

    join_levels = [l for l in statement.group_by.levels if l != level]
    target = GetNode(_target_query(statement), role="target")
    join = JoinNode(
        target, bench, join_levels=join_levels, alias="benchmark",
        outer=statement.star, pushed=False,
    )
    return join, f"benchmark.{measure}"


def _ancestor_pipeline(statement: AssessStatement) -> Tuple[PlanNode, str]:
    """Ancestor benchmark (extension): roll the slice level up and compare
    every cell against its ancestor's aggregate."""
    benchmark = statement.benchmark
    assert isinstance(benchmark, AncestorBenchmark)
    coarser_levels = [
        benchmark.ancestor_level if level == benchmark.level else level
        for level in statement.group_by.levels
    ]
    coarser = GroupBySet(statement.schema, coarser_levels)
    hierarchy = statement.schema.hierarchy_of_level(benchmark.level)
    benchmark_predicates = tuple(
        p for p in statement.predicates if not hierarchy.has_level(p.level)
    )
    benchmark_query = CubeQuery(
        statement.source, coarser, benchmark_predicates, (statement.measure,)
    )
    target = GetNode(_target_query(statement), role="target")
    bench = GetNode(benchmark_query, role="benchmark", name="benchmark")
    join = RollupJoinNode(
        target, bench, benchmark.level, benchmark.ancestor_level,
        alias="benchmark", outer=statement.star,
    )
    return join, f"benchmark.{statement.measure}"
