"""Rule-based plan rewriting (Section 5.1 properties, Section 5.2 plans).

Three properties drive the optimization of assess statements:

* **P1 — commutativity of transforms.**  Transform operators preserve the
  coordinate set and monotonically add measures, so independent transforms
  commute.  :func:`p1_commutes` verifies the property on concrete cubes (the
  planner relies on it implicitly when reordering the pipelines below).
* **P2 — pushing join through transformation.**  A join can be pushed below
  a cell-transformation applied to one side only; for past benchmarks this
  turns ``C ⋈ (⊟regression(⊞(B)))`` into ``⊟regression(C ⋈ B)``, leaving a
  join between two bare gets — which can then be pushed to SQL.
  :func:`push_join_to_sql` applies P2 where needed and marks the join
  pushed, producing the **JOP** plan.
* **P3 — replacing join with pivot.**  Two gets over the *same* cube whose
  predicates differ only on one level can be fetched together (widened
  ``IN`` predicate) and pivoted, eliminating the join entirely.
  :func:`replace_join_with_pivot` applies P3, producing the **POP** plan.

Both rewriters take a :class:`~repro.algebra.plan.Plan` and return a new
plan; they never mutate their input.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.cube import Cube
from ..core.errors import PlanError
from ..core.query import CubeQuery, Predicate
from .plan import (
    GetNode,
    JoinNode,
    LabelNode,
    PivotNode,
    Plan,
    PlanNode,
    PredictNode,
    ProjectNode,
    UsingNode,
)


# ----------------------------------------------------------------------
# P1 — commutativity of transform operators
# ----------------------------------------------------------------------
def p1_commutes(
    cube: Cube,
    first: Callable[[Cube], Cube],
    second: Callable[[Cube], Cube],
) -> bool:
    """Check property P1 on a concrete cube.

    ``first`` and ``second`` must each add measure columns without touching
    coordinates (the contract of ``⊟``/``⊡``).  Returns whether applying
    them in either order yields identical cubes (same coordinates, same
    columns, same values).
    """
    one = second(first(cube))
    two = first(second(cube))
    if one.coordinates() != two.coordinates():
        return False
    if set(one.measure_names) != set(two.measure_names):
        return False
    for name in one.measure_names:
        a, b = one.measure(name), two.measure(name)
        if a.dtype == object or b.dtype == object:
            if not all(x == y for x, y in zip(a, b)):
                return False
        elif not np.allclose(a, b, equal_nan=True):
            return False
    return True


# ----------------------------------------------------------------------
# Pipeline plumbing
# ----------------------------------------------------------------------
def _split_pipeline(plan: Plan) -> Tuple[PlanNode, UsingNode, LabelNode, list]:
    """Peel the mandatory Label(Using(...)) tail off a plan.

    AttachProperty wrappers between the Using node and the benchmark body
    are peeled too (they only add coordinate-keyed columns, so by P1 they
    commute with the join/pivot rewrites below) and re-applied by
    :func:`_rewrap`.
    """
    from .plan import AttachPropertyNode

    label = plan.root
    if not isinstance(label, LabelNode):
        raise PlanError("plan root is not a Label node")
    using = label.child
    if not isinstance(using, UsingNode):
        raise PlanError("plan does not end with Using -> Label")
    body = using.child
    wrappers = []
    while isinstance(body, AttachPropertyNode):
        wrappers.append(body)
        body = body.child
    return body, using, label, wrappers


def _rewrap(plan: Plan, name: str, body: PlanNode, using: UsingNode,
            label: LabelNode, wrappers: list) -> Plan:
    from .plan import AttachPropertyNode

    for wrapper in reversed(wrappers):
        body = AttachPropertyNode(
            body, wrapper.source, wrapper.property_name, wrapper.level,
            out_name=wrapper.out_name, fixed_member=wrapper.fixed_member,
        )
    root = UsingNode(body, using.expression, using.out_name)
    root = LabelNode(root, label.labeling, label.input_column, label.out_name)
    return Plan(
        name,
        root,
        measure=plan.measure,
        benchmark_column=plan.benchmark_column,
        comparison_column=plan.comparison_column,
        label_column=plan.label_column,
    )


# ----------------------------------------------------------------------
# P2 — push join through transformation; push join to SQL (JOP)
# ----------------------------------------------------------------------
def push_join_to_sql(plan: Plan) -> Plan:
    """Derive the Join-Optimized Plan from a naive plan.

    Handles the two NP shapes that contain a join between cubes:

    * ``Join(Get, Get)`` (external, sibling): the join is marked pushed —
      the engine evaluates both gets and the join as one drill-across query
      (Listing 4).
    * ``Join(Get, Project(Predict(Pivot(Get))))`` (past): property P2 first
      commutes the join below the transformation chain, yielding
      ``Predict(Join(Get, Get))`` with a fan-in (multi) join; the join is
      then pushed (Example 5.3).
    """
    body, using, label, wrappers = _split_pipeline(plan)

    if isinstance(body, JoinNode) and isinstance(body.left, GetNode) and isinstance(
        body.right, GetNode
    ):
        join = JoinNode(
            body.left,
            body.right,
            join_levels=body.join_levels,
            alias=body.alias,
            outer=body.outer,
            pushed=True,
            multi=body.multi,
        )
        return _rewrap(plan, "JOP", join, using, label, wrappers)

    past_shape = _match_past_chain(body)
    if past_shape is not None:
        join_node, get_target, get_benchmark, predict = past_shape
        measure = get_benchmark.query.measures[0]
        k = len(predict.input_columns)
        pushed_join = JoinNode(
            get_target,
            get_benchmark,
            join_levels=join_node.join_levels,
            alias=join_node.alias,
            outer=join_node.outer,
            pushed=True,
            multi=True,
        )
        qualified = f"{join_node.alias}.{measure}"
        history = [f"{qualified}_{i + 1}" for i in range(k)]
        new_predict = PredictNode(pushed_join, predict.method, history, qualified)
        return _rewrap(plan, "JOP", new_predict, using, label, wrappers)

    raise PlanError("plan contains no join that can be pushed to SQL")


def _match_past_chain(
    body: PlanNode,
) -> Optional[Tuple[JoinNode, GetNode, GetNode, PredictNode]]:
    """Match ``Join(Get, Project(Predict(Pivot(Get))))`` — the NP past shape."""
    if not isinstance(body, JoinNode) or not isinstance(body.left, GetNode):
        return None
    project = body.right
    if not isinstance(project, ProjectNode):
        return None
    predict = project.child
    if not isinstance(predict, PredictNode):
        return None
    pivot = predict.child
    if not isinstance(pivot, PivotNode) or not isinstance(pivot.child, GetNode):
        return None
    return body, body.left, pivot.child, predict


# ----------------------------------------------------------------------
# P3 — replace join with pivot (POP)
# ----------------------------------------------------------------------
def replace_join_with_pivot(plan: Plan) -> Plan:
    """Derive the Pivot-Optimized Plan from a JOP plan (property P3).

    Applies when the pushed join combines two gets over the *same* cube
    whose predicate sets differ on exactly one level — the sibling/past
    pattern.  The two gets merge into a single get with a widened ``IN``
    predicate on that level, topped by a pushed pivot that aligns the
    benchmark slices as extra measure columns (Listing 5).
    """
    body, using, label, wrappers = _split_pipeline(plan)

    predict: Optional[PredictNode] = None
    join = body
    if isinstance(body, PredictNode):
        predict = body
        join = body.child

    if not (
        isinstance(join, JoinNode)
        and isinstance(join.left, GetNode)
        and isinstance(join.right, GetNode)
    ):
        raise PlanError("plan contains no join over two gets; P3 does not apply")
    target_query = join.left.query
    benchmark_query = join.right.query
    if target_query.source != benchmark_query.source:
        raise PlanError(
            "P3 requires both gets to range over the same cube "
            f"({target_query.source!r} vs {benchmark_query.source!r})"
        )

    level, target_members, benchmark_members = _differing_level(
        target_query, benchmark_query
    )
    if len(target_members) != 1:
        raise PlanError("P3 requires the target to slice the pivot level on one member")
    reference = next(iter(target_members))
    ordered_benchmark = sorted(benchmark_members, key=repr)

    measure = benchmark_query.measures[0]
    qualified = f"{join.alias}.{measure}"
    if predict is not None:
        renames = {
            member: {measure: f"{qualified}_{i + 1}"}
            for i, member in enumerate(ordered_benchmark)
        }
        require_all = False
    else:
        renames = {member: {measure: qualified} for member in ordered_benchmark}
        require_all = not join.outer

    all_members = list(ordered_benchmark) + [reference]
    old_predicate = target_query.predicate_on(level)
    merged = target_query.replace_predicate(
        old_predicate, Predicate.isin(level, all_members)
    )
    combined_get = GetNode(merged, role="combined", name="target+benchmark")
    pivot = PivotNode(
        combined_get, level, reference, renames,
        require_all=require_all, pushed=True,
    )
    new_body: PlanNode = pivot
    if predict is not None:
        history = [f"{qualified}_{i + 1}" for i in range(len(ordered_benchmark))]
        new_body = PredictNode(
            pivot, predict.method, history, qualified,
            drop_missing=not join.outer,
        )
    return _rewrap(plan, "POP", new_body, using, label, wrappers)


def _differing_level(
    target: CubeQuery, benchmark: CubeQuery
) -> Tuple[str, frozenset, frozenset]:
    """The single level whose predicate differs between two get queries."""
    levels = {p.level for p in target.predicates} | {
        p.level for p in benchmark.predicates
    }
    differing: List[str] = []
    for level in levels:
        if target.predicate_on(level) != benchmark.predicate_on(level):
            differing.append(level)
    if len(differing) != 1:
        raise PlanError(
            f"P3 requires the two gets to differ on exactly one level, "
            f"found {sorted(differing)}"
        )
    level = differing[0]
    target_predicate = target.predicate_on(level)
    benchmark_predicate = benchmark.predicate_on(level)
    if target_predicate is None or benchmark_predicate is None:
        raise PlanError(f"both gets must constrain level {level!r} for P3")
    target_members = target_predicate.member_set()
    benchmark_members = benchmark_predicate.member_set()
    if target_members is None or benchmark_members is None:
        raise PlanError(f"P3 needs enumerable predicates on level {level!r}")
    return level, target_members, benchmark_members
