"""Logical plans: trees of the Section 4.2 operators.

A plan is an immutable tree of :class:`PlanNode` objects.  Each node is one
logical operator — get ``[q]``, join ``⋈``/``⋈_{l…}``, cell-transform ``⊟``,
h-transform ``⊡``, pivot ``⊞`` — plus small bookkeeping nodes (project,
constant-measure) the paper leaves implicit.  Nodes carry two pieces of
execution metadata:

* ``pushed`` — whether the operator is evaluated by the DBMS substrate
  ("pushed to SQL", Section 5.2) or in memory on cube objects; and
* ``step`` — the Figure 4 cost-breakdown bucket its runtime is charged to
  (``get_target`` / ``get_benchmark`` / ``get_combined`` / ``transform`` /
  ``join`` / ``compare`` / ``label``).

The planner (:mod:`repro.algebra.planner`) builds the naive plan NP from an
assess statement; the rewriter (:mod:`repro.algebra.rewrite`) derives JOP
and POP from it by applying properties P2 and P3.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ..core.expression import Expression
from ..core.labels import LabelingSpec
from ..core.query import CubeQuery

STEP_GET_TARGET = "get_target"
STEP_GET_BENCHMARK = "get_benchmark"
STEP_GET_COMBINED = "get_combined"
STEP_TRANSFORM = "transform"
STEP_JOIN = "join"
STEP_COMPARE = "compare"
STEP_LABEL = "label"

ALL_STEPS = (
    STEP_GET_TARGET,
    STEP_GET_BENCHMARK,
    STEP_GET_COMBINED,
    STEP_TRANSFORM,
    STEP_JOIN,
    STEP_COMPARE,
    STEP_LABEL,
)


class PlanNode:
    """Base class for plan-tree nodes."""

    step: str = STEP_TRANSFORM

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def describe(self) -> str:
        """One-line description for ``explain()`` output."""
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Indented tree rendering of the plan."""
        lines = [("  " * indent) + self.describe()]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class GetNode(PlanNode):
    """``[q]`` — a cube query pushed to the engine.

    ``role`` says whether the query fetches the target cube, the benchmark,
    or both at once (POP's widened get), which fixes the timing bucket.
    """

    def __init__(self, query: CubeQuery, role: str = "target", name: str = ""):
        if role not in ("target", "benchmark", "combined"):
            raise ValueError(f"unknown get role {role!r}")
        self.query = query
        self.role = role
        self.name = name
        self.step = {
            "target": STEP_GET_TARGET,
            "benchmark": STEP_GET_BENCHMARK,
            "combined": STEP_GET_COMBINED,
        }[role]

    def describe(self) -> str:
        suffix = f" -> {self.name}" if self.name else ""
        return f"Get[{self.role}] {self.query!r}{suffix} (SQL)"


class AddConstantNode(PlanNode):
    """Append a constant measure column — builds a constant benchmark.

    Implements the Section 3.1 constant benchmark without materialising a
    separate cube: ``B`` has exactly the target's coordinates, so a constant
    column on the target cube is the joined result ``C ⋈ B`` directly.
    """

    step = STEP_TRANSFORM

    def __init__(self, child: PlanNode, value: float, column_name: str):
        self.child = child
        self.value = float(value)
        self.column_name = column_name

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"AddConstant {self.column_name} = {self.value}"


class JoinNode(PlanNode):
    """``⋈`` / ``⋈_{l1..lm}`` — drill-across of target and benchmark.

    ``join_levels=None`` means the natural join on full coordinates.  With
    ``pushed=True`` both children must be :class:`GetNode`; the executor
    sends a single drill-across query to the engine (JOP) and the time is
    charged to ``get_combined``.  ``multi=True`` is the fan-in partial join
    appending one column set per matching benchmark cell.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_levels: Optional[Sequence[str]] = None,
        alias: str = "benchmark",
        outer: bool = False,
        pushed: bool = False,
        multi: bool = False,
    ):
        self.left = left
        self.right = right
        self.join_levels = tuple(join_levels) if join_levels is not None else None
        self.alias = alias
        self.outer = bool(outer)
        self.pushed = bool(pushed)
        self.multi = bool(multi)
        self.step = STEP_GET_COMBINED if pushed else STEP_JOIN

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        on = "natural" if self.join_levels is None else f"on {list(self.join_levels)}"
        flavour = "outer " if self.outer else ""
        where = "SQL" if self.pushed else "memory"
        multi = ", multi" if self.multi else ""
        return f"{flavour}Join {on} -> {self.alias} ({where}{multi})"


class PivotNode(PlanNode):
    """``⊞`` — keep the reference slice, append sibling-slice measures.

    With ``pushed=True`` the child must be a :class:`GetNode`; the engine
    evaluates get+pivot in one query (POP) and the time is charged to
    ``get_combined``.  In-memory pivots count as ``transform``, matching the
    paper's Figure 4 accounting ("the cost for the pivot operation is
    counted as transformation" for NP/JOP).
    """

    def __init__(
        self,
        child: PlanNode,
        level: str,
        reference,
        member_renames: Mapping[object, Mapping[str, str]],
        require_all: bool = False,
        pushed: bool = False,
        fill_member=None,
    ):
        self.child = child
        self.level = level
        self.reference = reference
        self.member_renames = {m: dict(r) for m, r in member_renames.items()}
        self.require_all = bool(require_all)
        self.pushed = bool(pushed)
        self.fill_member = fill_member
        self.step = STEP_GET_COMBINED if pushed else STEP_TRANSFORM

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        where = "SQL" if self.pushed else "memory"
        anchor = "spread" if self.reference is None else f"ref={self.reference!r}"
        return (
            f"Pivot on {self.level} {anchor} "
            f"members={list(self.member_renames)} ({where})"
        )


class PredictNode(PlanNode):
    """``⊟ regression`` — per-cell time-series prediction (past benchmarks).

    Consumes the ``input_columns`` (past slices, oldest first) and appends
    the predicted benchmark measure.  Always in memory; charged to
    ``transform``, the dominant step of the Past intention in Figure 4.
    """

    step = STEP_TRANSFORM

    def __init__(
        self,
        child: PlanNode,
        method: str,
        input_columns: Sequence[str],
        out_name: str,
        drop_missing: bool = False,
    ):
        self.child = child
        self.method = method
        self.input_columns = tuple(input_columns)
        self.out_name = out_name
        # POP's target-anchored pivot keeps cells with no history at all;
        # with inner (non-star) semantics those must be dropped to match
        # what NP's and JOP's joins produce.
        self.drop_missing = bool(drop_missing)

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return (
            f"Predict {self.method}({len(self.input_columns)} slices) "
            f"-> {self.out_name}"
        )


class ProjectNode(PlanNode):
    """Keep only the named measure columns (bookkeeping; free)."""

    step = STEP_TRANSFORM

    def __init__(self, child: PlanNode, columns: Sequence[str],
                 renames: Optional[Mapping[str, str]] = None):
        self.child = child
        self.columns = tuple(columns)
        self.renames = dict(renames or {})

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        renamed = f" renames={self.renames}" if self.renames else ""
        return f"Project measures {list(self.columns)}{renamed}"


class RollupJoinNode(PlanNode):
    """Ancestor-benchmark join (extension): map each target cell to its
    ancestor's cell via the part-of order, appending the ancestor measures.

    The right child is a get at the coarser group-by (``level`` replaced by
    ``ancestor_level``); each left coordinate rolls up through the hierarchy
    to find its match.  In-memory only.
    """

    step = STEP_JOIN

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        level: str,
        ancestor_level: str,
        alias: str = "benchmark",
        outer: bool = False,
    ):
        self.left = left
        self.right = right
        self.level = level
        self.ancestor_level = ancestor_level
        self.alias = alias
        self.outer = bool(outer)

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return (
            f"RollupJoin {self.level} -> {self.ancestor_level} "
            f"as {self.alias} (memory)"
        )


class AttachPropertyNode(PlanNode):
    """Append a descriptive level property as a measure column (§8 ext.).

    For each cell, looks the member of ``level`` up in the property's
    dimension mapping and stores the value under the property's name, so
    ``using`` expressions can reference e.g. ``population`` directly
    (enabling per-capita comparisons).
    """

    step = STEP_TRANSFORM

    def __init__(
        self,
        child: PlanNode,
        source: str,
        property_name: str,
        level: str,
        out_name: str = "",
        fixed_member=None,
    ):
        self.child = child
        self.source = source
        self.property_name = property_name
        self.level = level
        self.out_name = out_name or property_name
        # For benchmark-qualified property references on a sibling's slice
        # level, the property is looked up at the sibling member instead of
        # each cell's own member (e.g. benchmark.population = France's).
        self.fixed_member = fixed_member

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        anchor = (
            f" at {self.fixed_member!r}" if self.fixed_member is not None else ""
        )
        return f"AttachProperty {self.property_name} of {self.level}{anchor} -> {self.out_name}"


class UsingNode(PlanNode):
    """``⊡_{Δ}`` — evaluate the using clause, appending ``m_Δ``."""

    step = STEP_COMPARE

    def __init__(self, child: PlanNode, expression: Expression, out_name: str):
        self.child = child
        self.expression = expression
        self.out_name = out_name

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Using {self.expression.render()} -> {self.out_name}"


class LabelNode(PlanNode):
    """``⊡_{λ}`` — apply the labeling function, appending ``m_λ``."""

    step = STEP_LABEL

    def __init__(
        self,
        child: PlanNode,
        labeling: LabelingSpec,
        input_column: str,
        out_name: str,
    ):
        self.child = child
        self.labeling = labeling
        self.input_column = input_column
        self.out_name = out_name

    @property
    def children(self) -> Tuple[PlanNode, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Label {self.labeling.render()}({self.input_column}) -> {self.out_name}"


class Plan:
    """A named plan: the root node plus result-column role metadata."""

    def __init__(
        self,
        name: str,
        root: PlanNode,
        measure: str,
        benchmark_column: str,
        comparison_column: str,
        label_column: str,
    ):
        self.name = name
        self.root = root
        self.measure = measure
        self.benchmark_column = benchmark_column
        self.comparison_column = comparison_column
        self.label_column = label_column

    def explain(self) -> str:
        """Readable tree rendering of the whole plan."""
        return f"Plan {self.name}\n{self.root.explain(1)}"

    def nodes(self) -> Tuple[PlanNode, ...]:
        """All nodes, depth-first."""
        collected = []

        def visit(node: PlanNode) -> None:
            collected.append(node)
            for child in node.children:
                visit(child)

        visit(self.root)
        return tuple(collected)

    def count_pushed(self) -> int:
        """How many queries this plan sends to the engine.

        A pushed join/pivot consumes its get children into one query, so
        those gets are not counted separately.
        """
        total = 0
        consumed = set()
        for node in self.nodes():
            if isinstance(node, JoinNode) and node.pushed:
                total += 1
                consumed.add(id(node.left))
                consumed.add(id(node.right))
            elif isinstance(node, PivotNode) and node.pushed:
                total += 1
                consumed.add(id(node.child))
        for node in self.nodes():
            if isinstance(node, GetNode) and id(node) not in consumed:
                total += 1
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Plan({self.name!r}, nodes={len(self.nodes())})"
