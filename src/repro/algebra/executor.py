"""Plan execution: interpret a logical plan into an assessment result.

The executor walks the plan tree bottom-up.  *Pushed* nodes (gets, and the
pushed joins/pivots of JOP/POP) are delegated to the multidimensional engine
as single queries; everything else runs in memory on cube objects — exactly
the split Section 5.2 prescribes.  Every node's own runtime (excluding its
children) is accumulated into its Figure 4 step bucket, enabling the
breakdown experiment.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..core.cube import Cube, qualified
from ..core.errors import ExecutionError, FunctionError
from ..core.labels import CoordinateLabeling, NamedLabeling, RangeLabeling
from ..core.result import AssessResult
from ..core.statement import AssessStatement
from ..functions.evaluate import evaluate
from ..functions.registry import FunctionRegistry, default_registry
from ..obs.tracer import active as _active_tracer
from ..olap.engine import MultidimensionalEngine
from .plan import (
    AddConstantNode,
    AttachPropertyNode,
    GetNode,
    JoinNode,
    LabelNode,
    PivotNode,
    Plan,
    PlanNode,
    PredictNode,
    ProjectNode,
    RollupJoinNode,
    UsingNode,
)


class PlanExecutor:
    """Interprets plans against a multidimensional engine."""

    def __init__(
        self,
        engine: MultidimensionalEngine,
        registry: Optional[FunctionRegistry] = None,
    ):
        self.engine = engine
        self.registry = registry or default_registry()

    # ------------------------------------------------------------------
    def execute(self, plan: Plan, statement: AssessStatement) -> AssessResult:
        """Run a plan, returning the assessment result with step timings."""
        timings: Dict[str, float] = {}
        cube = self._run(plan.root, timings)
        return AssessResult(
            cube,
            measure=statement.measure,
            benchmark_measure=plan.benchmark_column,
            comparison_measure=plan.comparison_column,
            label_measure=plan.label_column,
            plan_name=plan.name,
            timings=timings,
        )

    # ------------------------------------------------------------------
    def _run(self, node: PlanNode, timings: Dict[str, float]) -> Cube:
        """Evaluate one node; under tracing, wrap it in an operator span.

        The span covers the node *and* its children (children's spans
        nest inside, so inclusive/exclusive times both fall out of the
        tree), while the Figure 4 ``timings`` buckets stay exclusive —
        :meth:`_timed` is unchanged.
        """
        tracer = _active_tracer()
        if not tracer.enabled:
            return self._run_node(node, timings)
        name = _OPERATOR_NAMES.get(type(node), type(node).__name__)
        with tracer.span(f"op.{name}", node_id=id(node)) as span:
            cube = self._run_node(node, timings)
            rows_in = sum(
                child.attrs["rows_out"]
                for child in span.children
                if child.name.startswith("op.") and "rows_out" in child.attrs
            )
            span.set(
                step=node.step,
                rows_in=rows_in,
                rows_out=len(cube),
                cells_out=len(cube) * max(len(cube.measures), 1),
                pushed=bool(getattr(node, "pushed", False)),
                detail=node.describe(),
            )
            return cube

    def _run_node(self, node: PlanNode, timings: Dict[str, float]) -> Cube:
        if isinstance(node, GetNode):
            return self._timed(node, timings, lambda: self.engine.get(node.query))

        if isinstance(node, JoinNode) and node.pushed:
            return self._run_pushed_join(node, timings)
        if isinstance(node, PivotNode) and node.pushed:
            return self._run_pushed_pivot(node, timings)

        if isinstance(node, AddConstantNode):
            child = self._run(node.child, timings)
            return self._timed(
                node,
                timings,
                lambda: child.with_measure(
                    node.column_name, np.full(len(child), node.value)
                ),
            )
        if isinstance(node, JoinNode):
            left = self._run(node.left, timings)
            right = self._run(node.right, timings)
            return self._timed(
                node, timings, lambda: self._memory_join(node, left, right)
            )
        if isinstance(node, PivotNode):
            child = self._run(node.child, timings)
            return self._timed(
                node,
                timings,
                lambda: child.pivot(
                    node.level, node.reference, node.member_renames,
                    require_all=node.require_all,
                    fill_member=node.fill_member,
                ),
            )
        if isinstance(node, PredictNode):
            child = self._run(node.child, timings)
            return self._timed(node, timings, lambda: self._predict(node, child))
        if isinstance(node, ProjectNode):
            child = self._run(node.child, timings)
            return self._timed(node, timings, lambda: self._project(node, child))
        if isinstance(node, RollupJoinNode):
            self._ensure_hydrated(node)
            left = self._run(node.left, timings)
            right = self._run(node.right, timings)
            return self._timed(
                node, timings, lambda: self._rollup_join(node, left, right)
            )
        if isinstance(node, AttachPropertyNode):
            child = self._run(node.child, timings)
            return self._timed(node, timings, lambda: self._attach_property(node, child))
        if isinstance(node, UsingNode):
            child = self._run(node.child, timings)
            return self._timed(
                node,
                timings,
                lambda: child.with_measure(
                    node.out_name, evaluate(node.expression, child, self.registry)
                ),
            )
        if isinstance(node, LabelNode):
            child = self._run(node.child, timings)
            return self._timed(node, timings, lambda: self._label(node, child))
        raise ExecutionError(f"cannot execute plan node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Pushed operators (single engine query covering the subtree)
    # ------------------------------------------------------------------
    def _run_pushed_join(self, node: JoinNode, timings: Dict[str, float]) -> Cube:
        if not (isinstance(node.left, GetNode) and isinstance(node.right, GetNode)):
            raise ExecutionError("a pushed join requires two get children")
        join_levels = (
            node.join_levels
            if node.join_levels is not None
            else node.left.query.group_by.levels
        )
        return self._timed(
            node,
            timings,
            lambda: self.engine.drill_across(
                node.left.query,
                node.right.query,
                join_levels,
                alias=node.alias,
                outer=node.outer,
                multi=node.multi,
            ),
        )

    def _run_pushed_pivot(self, node: PivotNode, timings: Dict[str, float]) -> Cube:
        if not isinstance(node.child, GetNode):
            raise ExecutionError("a pushed pivot requires a get child")
        return self._timed(
            node,
            timings,
            lambda: self.engine.pivot_get(
                node.child.query,
                node.level,
                node.reference,
                node.member_renames,
                require_all=node.require_all,
            ),
        )

    # ------------------------------------------------------------------
    # In-memory operators
    # ------------------------------------------------------------------
    def _memory_join(self, node: JoinNode, left: Cube, right: Cube) -> Cube:
        if node.join_levels is None:
            return left.natural_join(right, alias=node.alias, outer=node.outer)
        return left.partial_join(
            right, node.join_levels, alias=node.alias, outer=node.outer
        )

    def _predict(self, node: PredictNode, cube: Cube) -> Cube:
        columns = [name for name in node.input_columns if name in cube.measures]
        if not columns:
            # Fan-in joins collapse to an unsuffixed column when every key
            # matched exactly one row; fall back to the base column name.
            base = _strip_suffix(node.input_columns[0])
            if base in cube.measures:
                columns = [base]
            else:
                raise ExecutionError(
                    f"prediction input columns {list(node.input_columns)} "
                    f"missing from cube (has {list(cube.measure_names)})"
                )
        history = np.column_stack([cube.measure(name) for name in columns])
        entry = self.registry.get(node.method)
        if entry.kind != "prediction":
            raise FunctionError(
                f"function {node.method!r} has kind {entry.kind!r}, "
                "expected a prediction function"
            )
        if node.drop_missing:
            has_history = ~np.isnan(history).all(axis=1)
            if not has_history.all():
                cube = cube.filter_rows(has_history)
                history = history[has_history]
        prediction = np.asarray(entry(history), dtype=np.float64)
        return cube.with_measure(node.out_name, prediction)

    def _project(self, node: ProjectNode, cube: Cube) -> Cube:
        projected = cube.project_measures(list(node.columns))
        if node.renames:
            projected = projected.rename_measures(node.renames)
        return projected

    def _ensure_hydrated(self, node: RollupJoinNode) -> None:
        """Load the part-of maps a rollup join needs, if not yet loaded.

        Engines built for large cubes skip eager hydration; the ancestor
        benchmark is the one operator that genuinely needs the in-memory
        part-of order, so it hydrates its hierarchy on first use.
        """
        if not isinstance(node.left, GetNode):
            return
        registered = self.engine.cube(node.left.query.source)
        hierarchy = registered.schema.hierarchy_of_level(node.level)
        try:
            members = hierarchy.members_of(node.level)
        except Exception:  # pragma: no cover - defensive
            members = frozenset()
        if members:
            return  # already hydrated
        from ..olap.metadata import hydrate_hierarchies

        hydrate_hierarchies(registered.schema, registered.star, self.engine.catalog)

    def _rollup_join(self, node: RollupJoinNode, left: Cube, right: Cube) -> Cube:
        """Vectorised ancestor join: precomputed ancestor codes + the
        engine's joint-factorise/searchsorted join kernel.

        Each left member is mapped to its ancestor once per *distinct*
        member (the only per-member Python work left), then both sides'
        coordinates are jointly encoded and matched exactly like a pushed
        drill-across.  :meth:`_rollup_join_python` keeps the original
        row-at-a-time implementation as the test oracle.
        """
        from ..engine.executor import (
            _gather_float,
            _hash_encode_with_mapping,
            _joint_codes,
        )

        hierarchy = left.schema.hierarchy_of_level(node.level)
        members = left.coords[node.level]
        member_codes, mapping = _hash_encode_with_mapping(members)
        ancestors = np.empty(max(len(mapping), 1), dtype=object)
        for member, code in mapping.items():
            ancestors[code] = hierarchy.rollup_member(
                member, node.level, node.ancestor_level
            )
        ancestor_column = ancestors[member_codes]

        # Left key columns in left group-by order, the rolled-up level
        # substituted; the right side's ancestor level occupies the same
        # canonical position (same hierarchy), so the columns align.
        left_keys = [
            ancestor_column if name == node.level else left.coords[name]
            for name in left.group_by.levels
        ]
        right_keys = [right.coords[name] for name in right.group_by.levels]
        left_codes, right_codes = _joint_codes(left_keys, right_keys)

        order = np.argsort(right_codes, kind="stable")
        sorted_codes = right_codes[order]
        positions = np.searchsorted(sorted_codes, left_codes)
        clipped = np.minimum(positions, max(len(sorted_codes) - 1, 0))
        if len(sorted_codes):
            found = sorted_codes[clipped] == left_codes
            matches = np.where(found, order[clipped], -1)
        else:
            matches = np.full(len(left_codes), -1, dtype=np.int64)
        keep = matches >= 0
        if node.outer:
            keep = np.ones(len(left_codes), dtype=bool)
        index = np.nonzero(keep)[0]
        match_index = matches[keep]

        coords = {name: column[index] for name, column in left.coords.items()}
        measures = {name: column[index] for name, column in left.measures.items()}
        for name, column in right.measures.items():
            measures[qualified(node.alias, name)] = _gather_float(
                np.asarray(column, dtype=np.float64), match_index
            )
        return Cube(left.schema, left.group_by, coords, measures)

    def _rollup_join_python(
        self, node: RollupJoinNode, left: Cube, right: Cube
    ) -> Cube:
        """Row-at-a-time reference implementation (the test oracle)."""
        hierarchy = left.schema.hierarchy_of_level(node.level)
        position = left.group_by.position_of(node.level)
        right_index = right.coordinate_index()

        keep: List[int] = []
        matches: List[int] = []
        for row, coordinate in enumerate(left.coordinates()):
            member = coordinate[position]
            ancestor = hierarchy.rollup_member(member, node.level, node.ancestor_level)
            key = list(coordinate)
            key[position] = ancestor
            match = right_index.get(tuple(key))
            if match is not None:
                keep.append(row)
                matches.append(match)
            elif node.outer:
                keep.append(row)
                matches.append(-1)
        index = np.asarray(keep, dtype=np.intp)
        coords = {name: column[index] for name, column in left.coords.items()}
        measures = {name: column[index] for name, column in left.measures.items()}
        match_index = np.asarray(matches, dtype=np.intp)
        for name, column in right.measures.items():
            new_name = qualified(node.alias, name)
            gathered = np.asarray(column, dtype=np.float64)
            safe = np.where(match_index < 0, 0, match_index)
            values = gathered[safe].copy() if len(gathered) else np.full(len(match_index), np.nan)
            values[match_index < 0] = np.nan
            measures[new_name] = values
        return Cube(left.schema, left.group_by, coords, measures)

    def _attach_property(self, node: AttachPropertyNode, cube: Cube) -> Cube:
        level, lookup = self.engine.property_lookup(node.source, node.property_name)
        if node.fixed_member is not None:
            value = float(lookup.get(node.fixed_member, np.nan))
            column = np.full(len(cube), value)
        else:
            members = cube.coords[node.level]
            column = np.fromiter(
                (float(lookup.get(member, np.nan)) for member in members),
                dtype=np.float64,
                count=len(cube),
            )
        return cube.with_measure(node.out_name, column)

    def _label(self, node: LabelNode, cube: Cube) -> Cube:
        values = cube.measure(node.input_column)
        labeling = node.labeling
        if isinstance(labeling, CoordinateLabeling):
            if labeling.level not in cube.group_by:
                raise ExecutionError(
                    f"coordinate labeling on level {labeling.level!r} requires "
                    f"it in the group-by set {list(cube.group_by.levels)}"
                )
            labels = labeling.apply(values, cube.coords[labeling.level])
        elif isinstance(labeling, RangeLabeling):
            labels = labeling.apply(values)
        elif isinstance(labeling, NamedLabeling):
            entry = self.registry.get(labeling.name)
            if entry.kind != "labeling":
                raise FunctionError(
                    f"function {labeling.name!r} has kind {entry.kind!r}, "
                    "expected a labeling function"
                )
            labels = np.asarray(entry(np.asarray(values, dtype=np.float64)), dtype=object)
        else:
            raise ExecutionError(
                f"unsupported labeling spec {type(labeling).__name__}"
            )
        return cube.with_measure(node.out_name, labels)

    # ------------------------------------------------------------------
    def _timed(self, node: PlanNode, timings: Dict[str, float], thunk) -> Cube:
        start = time.perf_counter()
        result = thunk()
        elapsed = time.perf_counter() - start
        timings[node.step] = timings.get(node.step, 0.0) + elapsed
        return result


_OPERATOR_NAMES = {
    GetNode: "get",
    JoinNode: "join",
    RollupJoinNode: "rollup-join",
    PivotNode: "pivot",
    PredictNode: "cell-transform",
    UsingNode: "h-transform",
    LabelNode: "labeling",
    AddConstantNode: "add-constant",
    ProjectNode: "project",
    AttachPropertyNode: "attach-property",
}
"""Span names of the algebra operators (the paper's get/⋈/⊟/⊡/⊞)."""


def _strip_suffix(name: str) -> str:
    stem, _, suffix = name.rpartition("_")
    if stem and suffix.isdigit():
        return stem
    return name
