"""Bounded-memory execution: spill-to-disk partitioned aggregation.

The in-RAM group-by (and the PR 5 parallel merge) retain every per-morsel
partial result until the final merge, so grouping state grows with
``morsels × groups-per-morsel`` — an OOM cliff for fact tables whose
working set outgrows RAM.  This module bounds that state with a classic
partitioned external hash aggregation:

* per-morsel partial results (``run_morsel`` output: sorted combined group
  keys + distributive partials) are **range-partitioned** over the folded
  key space into ``P`` buckets;
* buffered bucket segments are charged against an accounting-enforced
  **memory budget** (``REPRO_MEMORY_BYTES`` / ``AssessSession(memory_budget=)``;
  ``REPRO_SPILL_BYTES`` is honoured as a synonym).  When the buffered bytes
  exceed the budget, the largest buckets are compacted with the same
  distributive re-aggregation the parallel merge uses and written out as
  ``.npz`` **runs** under a private temp directory;
* the final merge re-reads each bucket's runs plus its still-buffered
  segments and merges them with :func:`repro.parallel.merge.merge_morsels`.
  Range partitioning keeps bucket key ranges disjoint and ordered, so
  concatenating the per-bucket merges in bucket order reproduces exactly
  the globally sorted key order the serial fold (``np.unique``) produces —
  results stay **bit-identical** to the in-RAM path under the same
  float-exactness gate that guards the parallel merge.

Temp files live in ``tempfile.mkdtemp(prefix="repro-spill-")`` (rooted at
``REPRO_SPILL_DIR`` when set) and are removed on close — the executor
drives the aggregator as a context manager, so cleanup happens on success
and on mid-merge failure alike.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..parallel.merge import merge_morsels
from ..parallel.morsel import MorselResult

# Upper bound on the bucket count: each bucket's merge must fit in RAM, but
# each bucket also costs a searchsorted split per morsel and one file per
# flush — 256 buckets bound a ~256x budget-to-result ratio, plenty for the
# SF100 ladder.
MAX_SPILL_PARTITIONS = 256
MIN_SPILL_PARTITIONS = 4

# Bytes of grouping state per retained group entry: the int64 key plus one
# float64 partial per aggregation slot (used by budget admission estimates).
_KEY_BYTES = 8
_SLOT_BYTES = 8


def env_memory_budget() -> Optional[int]:
    """The memory budget (bytes) configured via the environment.

    ``REPRO_MEMORY_BYTES`` is the primary knob; ``REPRO_SPILL_BYTES`` is a
    synonym (the property suite forces it low).  When both are set the
    smaller wins.  Unset, empty, non-numeric, or non-positive values mean
    "unbounded" (``None``).
    """
    budgets = []
    for name in ("REPRO_MEMORY_BYTES", "REPRO_SPILL_BYTES"):
        raw = os.environ.get(name, "").strip()
        if not raw:
            continue
        try:
            value = int(raw)
        except ValueError:
            continue
        if value > 0:
            budgets.append(value)
    return min(budgets) if budgets else None


def grouping_state_bytes(rows: int, n_keys: int, n_slots: int) -> int:
    """Worst-case bytes of retained grouping state for an aggregation.

    Every scanned row may open a new group, and each group retains its
    folded key plus one partial per slot (count included).  This is the
    admission estimate the executor (and the flow analyzer) compare against
    the budget — deliberately pessimistic, so a budget below the working
    set reliably routes through the spill tier.
    """
    del n_keys  # keys fold into one int64 regardless of arity
    return int(rows) * (_KEY_BYTES + _SLOT_BYTES * (int(n_slots) + 1))


def choose_partitions(estimated_bytes: int, budget_bytes: int) -> int:
    """How many range buckets to split the key space into.

    Sized so one bucket's merged state sits well under the budget
    (4x headroom for the transient concat inside the merge), clamped to
    [MIN, MAX].
    """
    budget = max(int(budget_bytes), 1)
    need = -(-4 * max(int(estimated_bytes), 1) // budget)
    return max(MIN_SPILL_PARTITIONS, min(MAX_SPILL_PARTITIONS, need))


class SpillAggregator:
    """Range-partitioned external aggregation buffers with byte accounting.

    ``add()`` consumes one morsel's (sorted keys, partials) pair and slices
    it into per-bucket segments; ``results()`` yields each bucket's merged
    (keys, partials) in bucket order.  Use as a context manager — the temp
    directory is removed on exit regardless of outcome.
    """

    def __init__(
        self,
        key_space: int,
        ops: Sequence[str],
        budget_bytes: int,
        metrics: Optional[MetricsRegistry] = None,
        n_partitions: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ):
        self.ops = list(ops)
        self.budget = max(int(budget_bytes), 1)
        self.metrics = metrics
        key_space = max(int(key_space), 1)
        if n_partitions is None:
            n_partitions = MIN_SPILL_PARTITIONS
        self.n_partitions = max(1, min(int(n_partitions), key_space))
        # Bucket b holds keys in [bounds[b-1], bounds[b]); searchsorted
        # against these boundaries slices a sorted key array into buckets.
        self._bounds = np.array(
            [(b * key_space) // self.n_partitions
             for b in range(1, self.n_partitions)],
            dtype=np.int64,
        )
        buckets = self.n_partitions
        self._segments: List[List[MorselResult]] = [[] for _ in range(buckets)]
        self._segment_bytes = [0] * buckets
        self._runs: List[List[str]] = [[] for _ in range(buckets)]
        self._buffered = 0
        self._dir: Optional[str] = None
        self._spill_root = spill_dir if spill_dir else os.environ.get("REPRO_SPILL_DIR") or None
        self._run_counter = 0
        self.spills = 0
        self.bytes_spilled = 0
        self.peak_buffered = 0

    # -- context management -------------------------------------------------

    def __enter__(self) -> "SpillAggregator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Remove the temp directory and drop all buffered state."""
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None
        self._segments = [[] for _ in range(self.n_partitions)]
        self._segment_bytes = [0] * self.n_partitions
        self._runs = [[] for _ in range(self.n_partitions)]
        self._buffered = 0

    @property
    def temp_dir(self) -> Optional[str]:
        """The spill directory, or None if nothing has spilled yet."""
        return self._dir

    def _ensure_dir(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(
                prefix="repro-spill-", dir=self._spill_root
            )
        return self._dir

    # -- ingest -------------------------------------------------------------

    def add(self, keys: np.ndarray, partials: Sequence[np.ndarray]) -> None:
        """Buffer one morsel's partial result, spilling if over budget.

        ``keys`` must be sorted ascending (``run_morsel`` guarantees this —
        its keys come out of ``np.unique``).
        """
        if keys.size == 0:
            return
        splits = np.searchsorted(keys, self._bounds, side="left")
        edges = [0] + [int(s) for s in splits] + [len(keys)]
        for bucket in range(self.n_partitions):
            lo, hi = edges[bucket], edges[bucket + 1]
            if hi <= lo:
                continue
            seg_keys = keys[lo:hi]
            seg_partials = [np.asarray(p)[lo:hi] for p in partials]
            nbytes = seg_keys.nbytes + sum(p.nbytes for p in seg_partials)
            self._segments[bucket].append(
                MorselResult(0, seg_keys, seg_partials, 0, 0, 0.0)
            )
            self._segment_bytes[bucket] += nbytes
            self._buffered += nbytes
        self.peak_buffered = max(self.peak_buffered, self._buffered)
        while self._buffered > self.budget and any(self._segment_bytes):
            self._flush(int(np.argmax(self._segment_bytes)))

    def _flush(self, bucket: int) -> None:
        """Compact one bucket's buffered segments into a run file."""
        segments = self._segments[bucket]
        if not segments:
            return
        from ..obs.tracer import active as _active_tracer

        with _active_tracer().span(
            "spill.partition", bucket=bucket, segments=len(segments)
        ) as span:
            keys, merged = merge_morsels(segments, self.ops)
            path = os.path.join(
                self._ensure_dir(), f"run{self._run_counter:06d}.npz"
            )
            self._run_counter += 1
            np.savez(
                path, keys=keys,
                **{f"s{i}": arr for i, arr in enumerate(merged)},
            )
            written = keys.nbytes + sum(arr.nbytes for arr in merged)
            span.set(groups=int(keys.size), bytes=int(written))
        self._runs[bucket].append(path)
        self.spills += 1
        self.bytes_spilled += written
        if self.metrics is not None:
            self.metrics.inc("engine.spill.spills")
            self.metrics.inc("engine.spill.bytes_spilled", written)
        self._buffered -= self._segment_bytes[bucket]
        self._segment_bytes[bucket] = 0
        self._segments[bucket] = []

    # -- merge --------------------------------------------------------------

    def _bucket_inputs(self, bucket: int) -> List[MorselResult]:
        inputs: List[MorselResult] = []
        for path in self._runs[bucket]:
            with np.load(path) as run:
                inputs.append(MorselResult(
                    0, run["keys"],
                    [run[f"s{i}"] for i in range(len(self.ops))],
                    0, 0, 0.0,
                ))
        inputs.extend(self._segments[bucket])
        return inputs

    def results(self) -> Iterator[Tuple[np.ndarray, List[np.ndarray]]]:
        """Yield each bucket's merged (keys, partials), in bucket order.

        Bucket key ranges are disjoint and ascending, so the concatenation
        of the yielded keys is globally sorted — the same order the serial
        fold produces.
        """
        for bucket in range(self.n_partitions):
            inputs = self._bucket_inputs(bucket)
            if not inputs:
                continue
            yield merge_morsels(inputs, self.ops)
            # A merged bucket's buffers and runs are dead weight; free the
            # buffers eagerly (run files go with the directory on close).
            self._buffered -= self._segment_bytes[bucket]
            self._segment_bytes[bucket] = 0
            self._segments[bucket] = []

    def merge_all(self) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Merge every bucket and concatenate in bucket (= key) order."""
        from ..obs.tracer import active as _active_tracer

        keys_parts: List[np.ndarray] = []
        partial_parts: List[List[np.ndarray]] = [[] for _ in self.ops]
        with _active_tracer().span(
            "spill.merge", partitions=self.n_partitions, runs=self._run_counter
        ) as span:
            merged_buckets = 0
            for keys, merged in self.results():
                keys_parts.append(keys)
                for slot, arr in enumerate(merged):
                    partial_parts[slot].append(arr)
                merged_buckets += 1
            if self.metrics is not None:
                self.metrics.inc("engine.spill.merges", merged_buckets)
            if not keys_parts:
                empty = np.empty(0, dtype=np.int64)
                out = empty, [np.empty(0, dtype=np.float64) for _ in self.ops]
            else:
                out = (
                    np.concatenate(keys_parts),
                    [np.concatenate(parts) for parts in partial_parts],
                )
            span.set(groups=int(out[0].size))
        return out
