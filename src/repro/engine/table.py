"""Columnar tables — the storage layer of the relational engine substrate.

The paper's prototype stores the star schema in Oracle 11g; our substitute
is a column store on NumPy arrays.  A :class:`Table` is an ordered mapping
from column names to equal-length arrays.  Key columns used as join targets
can expose a *position index* so foreign keys resolve to row positions in
O(1) (the moral equivalent of the paper's B-tree indexes on primary keys).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import EngineError
from .kernels import sums_exactly as _sums_exactly


class Table:
    """An immutable-ish columnar table.

    Columns are NumPy arrays: integer/float columns keep their dtype, string
    columns are object arrays.  All columns share the same length.
    """

    def __init__(self, name: str, columns: Mapping[str, np.ndarray]):
        if not columns:
            raise EngineError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns: Dict[str, np.ndarray] = {}
        length: Optional[int] = None
        for column_name, values in columns.items():
            array = values if isinstance(values, np.ndarray) else _to_array(values)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise EngineError(
                    f"table {name!r}: column {column_name!r} has {len(array)} rows, "
                    f"expected {length}"
                )
            self.columns[column_name] = array
        self._n = length or 0
        self._key_indexes: Dict[str, "KeyIndex"] = {}
        self._dictionaries: Dict[str, Tuple[np.ndarray, int]] = {}
        self._dictionary_values: Dict[str, np.ndarray] = {}
        self._sum_gates: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self.columns.keys())

    def column(self, name: str) -> np.ndarray:
        """Return a column by name."""
        try:
            return self.columns[name]
        except KeyError:
            raise EngineError(
                f"table {self.name!r} has no column {name!r} "
                f"(columns: {', '.join(self.column_names)})"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self.columns

    # ------------------------------------------------------------------
    # Key indexes (the engine's "B-trees")
    # ------------------------------------------------------------------
    def create_key_index(self, column_name: str) -> "KeyIndex":
        """Index a unique-key column so lookups by key become O(1).

        Dimension tables index their surrogate key; the common case of a
        dense ``0..n-1`` key is recognised and costs no memory at all.
        """
        if column_name not in self._key_indexes:
            self._key_indexes[column_name] = KeyIndex(self, column_name)
        return self._key_indexes[column_name]

    def key_index(self, column_name: str) -> "KeyIndex":
        """Return (building on demand) the key index of a column."""
        return self.create_key_index(column_name)

    def dictionary(self, column_name: str) -> Tuple[np.ndarray, int]:
        """Dictionary-encode a column: ``(codes, cardinality)``, cached.

        Codes follow the sorted order of the distinct values.  This is the
        column-store dictionary encoding real engines keep per column; the
        executor uses it so repeated group-bys on the same stored column
        never re-factorize member strings.
        """
        if column_name not in self._dictionaries:
            _, codes = np.unique(self.column(column_name), return_inverse=True)
            cardinality = int(codes.max()) + 1 if len(codes) else 0
            self._dictionaries[column_name] = (
                codes.astype(np.int64, copy=False),
                max(cardinality, 1),
            )
        return self._dictionaries[column_name]

    def dictionary_values(self, column_name: str) -> np.ndarray:
        """Distinct values of a column in code order (the dictionary itself).

        ``dictionary_values(c)[dictionary(c)[0]]`` reconstructs the column:
        codes index this array.  The parallel merge layer uses it to decode
        group coordinates from combined keys without touching fact rows.
        """
        if column_name not in self._dictionary_values:
            uniques, codes = np.unique(self.column(column_name), return_inverse=True)
            if column_name not in self._dictionaries:
                cardinality = int(codes.max()) + 1 if len(codes) else 0
                self._dictionaries[column_name] = (
                    codes.astype(np.int64, copy=False),
                    max(cardinality, 1),
                )
            self._dictionary_values[column_name] = uniques
        return self._dictionary_values[column_name]

    def sums_exactly(self, column_name: str) -> bool:
        """Cached full-column float-exactness gate for a measure column.

        ``True`` means *any* row subset of the column sums exactly in any
        association order (a subset only shrinks the 2**53 magnitude
        bound), so partial sums over morsels may be re-added without
        changing a bit.  Conservative: a column can fail this gate while
        some masked subset would pass — callers then stay serial.
        """
        if column_name not in self._sum_gates:
            self._sum_gates[column_name] = _sums_exactly(self.column(column_name))
        return self._sum_gates[column_name]

    # ------------------------------------------------------------------
    def head(self, k: int = 10) -> List[Dict[str, object]]:
        """First ``k`` rows as dicts (debugging helper)."""
        k = min(k, self._n)
        return [
            {name: self.columns[name][row] for name in self.columns}
            for row in range(k)
        ]

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self._n}, columns={list(self.columns)})"


class KeyIndex:
    """Maps key values of a unique column to their row positions.

    ``positions_of(keys)`` vectorises the lookup for a whole foreign-key
    column.  Dense integer keys (``key == row`` or ``key == row + base``)
    are detected and served by arithmetic; anything else falls back to a
    hash map.
    """

    def __init__(self, table: Table, column_name: str):
        column = table.column(column_name)
        self.table_name = table.name
        self.column_name = column_name
        self._dense_base: Optional[int] = None
        self._mapping: Optional[Dict] = None
        if np.issubdtype(column.dtype, np.integer) and len(column) > 0:
            base = int(column[0])
            expected = np.arange(base, base + len(column), dtype=column.dtype)
            if np.array_equal(column, expected):
                self._dense_base = base
        if self._dense_base is None:
            mapping: Dict = {}
            for position, key in enumerate(column):
                if key in mapping:
                    raise EngineError(
                        f"key column {column_name!r} of table {table.name!r} "
                        f"has duplicate value {key!r}"
                    )
                mapping[key] = position
            self._mapping = mapping
        self._n = len(column)

    @property
    def is_dense(self) -> bool:
        """Whether the index is served arithmetically (dense surrogate keys)."""
        return self._dense_base is not None

    def positions_of(self, keys: np.ndarray) -> np.ndarray:
        """Row positions of each key; raises on unknown keys."""
        if self._dense_base is not None:
            positions = np.asarray(keys, dtype=np.int64) - self._dense_base
            if len(positions) and (positions.min() < 0 or positions.max() >= self._n):
                raise EngineError(
                    f"foreign key value outside table {self.table_name!r} "
                    f"key range"
                )
            return positions
        mapping = self._mapping
        assert mapping is not None
        try:
            return np.fromiter(
                (mapping[key] for key in keys), dtype=np.int64, count=len(keys)
            )
        except KeyError as exc:
            raise EngineError(
                f"foreign key value {exc.args[0]!r} not found in "
                f"{self.table_name}.{self.column_name}"
            ) from None


def _to_array(values: Sequence) -> np.ndarray:
    """Coerce a python sequence to the narrowest sensible NumPy column."""
    values = list(values)
    if not values:
        return np.empty(0, dtype=object)
    first = values[0]
    if isinstance(first, bool):
        return np.asarray(values, dtype=bool)
    if isinstance(first, (int, np.integer)) and all(
        isinstance(v, (int, np.integer)) for v in values
    ):
        return np.asarray(values, dtype=np.int64)
    if isinstance(first, (float, np.floating)) and all(
        isinstance(v, (int, float, np.integer, np.floating)) for v in values
    ):
        return np.asarray(values, dtype=np.float64)
    array = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        array[i] = value
    return array


def table_from_rows(name: str, rows: Iterable[Mapping[str, object]]) -> Table:
    """Build a table from an iterable of row dicts (tests/examples)."""
    rows = list(rows)
    if not rows:
        raise EngineError(f"cannot infer columns of empty table {name!r}")
    columns: Dict[str, List] = {key: [] for key in rows[0]}
    for row in rows:
        if set(row) != set(columns):
            raise EngineError(f"ragged rows for table {name!r}")
        for key, value in row.items():
            columns[key].append(value)
    return Table(name, {key: _to_array(values) for key, values in columns.items()})
