"""Columnar tables — the storage layer of the relational engine substrate.

The paper's prototype stores the star schema in Oracle 11g; our substitute
is a column store on NumPy arrays.  A :class:`Table` is an ordered mapping
from column names to equal-length columns.  Key columns used as join targets
can expose a *position index* so foreign keys resolve to row positions in
O(1) (the moral equivalent of the paper's B-tree indexes on primary keys).

Columns may be plain arrays (RAM-resident or memory-mapped) or compressed
:class:`repro.engine.columns.Column` representations (dictionary / RLE);
``column(name)`` always yields the decoded logical array, and the
range-aware accessors (``gather``/``window``) decode only the requested
rows — what the zone-map-pruned scans of the executor use.  Per-column
:class:`~repro.engine.columns.ZoneMap` statistics are attached by the v2
column store at load time or built on demand with ``ensure_zone_maps``.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.errors import EngineError
from .columns import (
    DEFAULT_ZONE_ROWS,
    Column,
    DictionaryColumn,
    PartitionedColumn,
    PlainColumn,
    RLEColumn,
    Ranges,
    ZoneMap,
    build_zone_map,
    take_ranges,
)
from .kernels import sums_exactly as _sums_exactly

_GATE_CHUNK_ROWS = 1 << 22
"""Stored columns longer than this decide ``sums_exactly`` in windows."""


class _ColumnsView(Mapping):
    """Read-only mapping of column name → decoded array.

    Kept for compatibility with ``table.columns[...]`` users; decoding is
    per access and never cached, so compressed and memory-mapped columns
    do not silently materialise into resident memory.
    """

    __slots__ = ("_table",)

    def __init__(self, table: "Table"):
        self._table = table

    def __getitem__(self, name: str) -> np.ndarray:
        return self._table.column(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._table._data)

    def __len__(self) -> int:
        return len(self._table._data)

    def __contains__(self, name: object) -> bool:
        return name in self._table._data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnsView({list(self._table._data)})"


class Table:
    """An immutable-ish columnar table.

    Columns are NumPy arrays or :class:`Column` encodings: integer/float
    columns keep their dtype, string columns are object arrays.  All
    columns share the same length.
    """

    def __init__(
        self,
        name: str,
        columns: Mapping[str, Union[np.ndarray, Column]],
    ):
        if not columns:
            raise EngineError(f"table {name!r} needs at least one column")
        self.name = name
        # Plain columns are stored as bare arrays (zero indirection on the
        # hot path); encoded columns as Column objects decoded on demand.
        self._data: Dict[str, Union[np.ndarray, Column]] = {}
        length: Optional[int] = None
        for column_name, values in columns.items():
            if isinstance(values, Column):
                stored: Union[np.ndarray, Column] = values
            elif isinstance(values, np.ndarray):
                stored = values
            else:
                stored = _to_array(values)
            if length is None:
                length = len(stored)
            elif len(stored) != length:
                raise EngineError(
                    f"table {name!r}: column {column_name!r} has {len(stored)} rows, "
                    f"expected {length}"
                )
            self._data[column_name] = stored
        self._n = length or 0
        self.columns: Mapping[str, np.ndarray] = _ColumnsView(self)
        self._key_indexes: Dict[str, "KeyIndex"] = {}
        self._dictionaries: Dict[str, Tuple[np.ndarray, int]] = {}
        self._dictionary_values: Dict[str, np.ndarray] = {}
        self._sum_gates: Dict[str, bool] = {}
        self._zone_maps: Dict[str, Optional[ZoneMap]] = {}
        self.zone_rows: Optional[int] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self._data.keys())

    def column(self, name: str) -> np.ndarray:
        """Return a column by name, decoded to its logical array."""
        try:
            stored = self._data[name]
        except KeyError:
            raise EngineError(
                f"table {self.name!r} has no column {name!r} "
                f"(columns: {', '.join(self.column_names)})"
            ) from None
        if isinstance(stored, np.ndarray):
            return stored
        return stored.decode()

    def has_column(self, name: str) -> bool:
        return name in self._data

    # ------------------------------------------------------------------
    # Storage-aware accessors
    # ------------------------------------------------------------------
    def storage(self, name: str) -> Column:
        """The physical representation of a column (plain columns wrapped)."""
        stored = self._data[name] if name in self._data else self._missing(name)
        if isinstance(stored, np.ndarray):
            return PlainColumn(stored)
        return stored

    def _missing(self, name: str) -> Column:
        raise EngineError(
            f"table {self.name!r} has no column {name!r} "
            f"(columns: {', '.join(self.column_names)})"
        )

    def encoding_of(self, name: str) -> str:
        """``plain`` / ``dict`` / ``rle`` — the stored encoding of a column."""
        return self.storage(name).encoding

    def gather(self, name: str, ranges: Ranges) -> np.ndarray:
        """Decoded values of the selected row ranges (``None`` = all rows)."""
        stored = self._data[name] if name in self._data else self._missing(name)
        if isinstance(stored, np.ndarray):
            return take_ranges(stored, ranges)
        return stored.gather(ranges)

    def window(self, name: str, lo: int, hi: int) -> np.ndarray:
        """Decoded values of rows ``[lo, hi)``."""
        stored = self._data[name] if name in self._data else self._missing(name)
        if isinstance(stored, np.ndarray):
            return stored[lo:hi]
        return stored.window(lo, hi)

    # ------------------------------------------------------------------
    # Key indexes (the engine's "B-trees")
    # ------------------------------------------------------------------
    def create_key_index(self, column_name: str) -> "KeyIndex":
        """Index a unique-key column so lookups by key become O(1).

        Dimension tables index their surrogate key; the common case of a
        dense ``0..n-1`` key is recognised and costs no memory at all.
        """
        if column_name not in self._key_indexes:
            self._key_indexes[column_name] = KeyIndex(self, column_name)
        return self._key_indexes[column_name]

    def key_index(self, column_name: str) -> "KeyIndex":
        """Return (building on demand) the key index of a column."""
        return self.create_key_index(column_name)

    def dictionary(self, column_name: str) -> Tuple[np.ndarray, int]:
        """Dictionary-encode a column: ``(codes, cardinality)``, cached.

        Codes follow the sorted order of the distinct values.  This is the
        column-store dictionary encoding real engines keep per column; the
        executor uses it so repeated group-bys on the same stored column
        never re-factorize member strings.  Columns already stored
        dictionary-encoded serve their codes without any scan (the stored
        dictionary is sorted and fully referenced, so the codes coincide
        with ``np.unique``'s inverse bit for bit).
        """
        if column_name not in self._dictionaries:
            stored = self._data.get(column_name)
            if isinstance(stored, DictionaryColumn):
                codes = np.asarray(stored.codes).astype(np.int64, copy=False)
                self._dictionaries[column_name] = (
                    codes, max(stored.cardinality, 1)
                )
            else:
                _, codes = np.unique(self.column(column_name), return_inverse=True)
                cardinality = int(codes.max()) + 1 if len(codes) else 0
                self._dictionaries[column_name] = (
                    codes.astype(np.int64, copy=False),
                    max(cardinality, 1),
                )
        return self._dictionaries[column_name]

    def dictionary_gather(
        self, column_name: str, ranges: Ranges
    ) -> Tuple[np.ndarray, int]:
        """Dictionary codes of the selected rows plus the full cardinality.

        Equivalent to gathering ``dictionary()[0]`` through the ranges; for
        stored dictionary encodings the gather happens on the narrow code
        array, so unselected rows are never decoded (or paged in).
        """
        if column_name in self._dictionaries:
            codes, cardinality = self._dictionaries[column_name]
            return take_ranges(codes, ranges), cardinality
        stored = self._data.get(column_name)
        if isinstance(stored, DictionaryColumn) and ranges is not None:
            return stored.gather_codes(ranges), max(stored.cardinality, 1)
        codes, cardinality = self.dictionary(column_name)
        return take_ranges(codes, ranges), cardinality

    def dictionary_values(self, column_name: str) -> np.ndarray:
        """Distinct values of a column in code order (the dictionary itself).

        ``dictionary_values(c)[dictionary(c)[0]]`` reconstructs the column:
        codes index this array.  The parallel merge layer uses it to decode
        group coordinates from combined keys without touching fact rows.
        """
        if column_name not in self._dictionary_values:
            stored = self._data.get(column_name)
            if isinstance(stored, DictionaryColumn):
                values = stored.values
                if values.dtype != stored.dtype:
                    values = values.astype(stored.dtype)
                self._dictionary_values[column_name] = values
                return values
            uniques, codes = np.unique(self.column(column_name), return_inverse=True)
            if column_name not in self._dictionaries:
                cardinality = int(codes.max()) + 1 if len(codes) else 0
                self._dictionaries[column_name] = (
                    codes.astype(np.int64, copy=False),
                    max(cardinality, 1),
                )
            self._dictionary_values[column_name] = uniques
        return self._dictionary_values[column_name]

    def sums_exactly(self, column_name: str) -> bool:
        """Cached full-column float-exactness gate for a measure column.

        ``True`` means *any* row subset of the column sums exactly in any
        association order (a subset only shrinks the 2**53 magnitude
        bound), so partial sums over morsels may be re-added without
        changing a bit.  Conservative: a column can fail this gate while
        some masked subset would pass — callers then stay serial.

        For dictionary/RLE encodings the gate is decided from the (tiny)
        distinct-value set and the row count — no decode: the bound
        ``max|values| * rows`` only needs the dictionary's extremes.
        """
        if column_name not in self._sum_gates:
            stored = self._data.get(column_name)
            if isinstance(stored, DictionaryColumn):
                gate = _distinct_sums_exactly(stored.values, len(stored))
            elif isinstance(stored, RLEColumn):
                gate = _distinct_sums_exactly(stored.run_values, len(stored))
            elif isinstance(stored, PartitionedColumn):
                distinct = stored.sum_gate_values()
                if distinct is not None:
                    gate = _distinct_sums_exactly(distinct, len(stored))
                else:
                    gate = _windowed_sums_exactly(stored)
            elif isinstance(stored, Column) and len(stored) > _GATE_CHUNK_ROWS:
                # Out-of-core stores: decide the gate window by window
                # instead of materialising the whole column.
                gate = _windowed_sums_exactly(stored)
            else:
                gate = _sums_exactly(self.column(column_name))
            self._sum_gates[column_name] = gate
        return self._sum_gates[column_name]

    # ------------------------------------------------------------------
    # Zone maps
    # ------------------------------------------------------------------
    @property
    def has_zone_maps(self) -> bool:
        """Whether any column carries zone statistics."""
        return any(zm is not None for zm in self._zone_maps.values())

    def zone_map(self, column_name: str) -> Optional[ZoneMap]:
        """The zone map of a column, or ``None`` when not available."""
        return self._zone_maps.get(column_name)

    def attach_zone_map(self, column_name: str, zone_map: Optional[ZoneMap]) -> None:
        """Attach a precomputed zone map (the v2 column store's loader)."""
        if zone_map is not None:
            if self.zone_rows is None:
                self.zone_rows = zone_map.zone_rows
            elif zone_map.zone_rows != self.zone_rows:
                raise EngineError(
                    f"table {self.name!r}: zone map of {column_name!r} uses "
                    f"{zone_map.zone_rows} rows per zone, table uses "
                    f"{self.zone_rows}"
                )
        self._zone_maps[column_name] = zone_map

    def ensure_zone_maps(self, zone_rows: int = DEFAULT_ZONE_ROWS) -> int:
        """Build zone maps for every column that lacks one.

        Returns how many columns now carry a map.  Explicit by design: the
        executor never builds maps mid-query, so cold scans of plain
        in-RAM catalogs pay zero overhead unless a caller opts in.
        """
        if self.zone_rows is not None:
            zone_rows = self.zone_rows
        else:
            self.zone_rows = zone_rows
        for name in self.column_names:
            if name not in self._zone_maps:
                self._zone_maps[name] = build_zone_map(
                    self.column(name), zone_rows
                )
        return sum(1 for zm in self._zone_maps.values() if zm is not None)

    # ------------------------------------------------------------------
    def storage_info(self) -> List[Dict[str, object]]:
        """Per-column storage report (encoding, sizes, zone coverage)."""
        report: List[Dict[str, object]] = []
        for name in self.column_names:
            stored = self.storage(name)
            zone_map = self.zone_map(name)
            plain = self.column(name)
            report.append(
                {
                    "column": name,
                    "encoding": stored.encoding,
                    "dtype": str(stored.dtype),
                    "rows": self._n,
                    "plain_bytes": int(plain.nbytes),
                    "stored_bytes": stored.stored_bytes,
                    "zones": 0 if zone_map is None else zone_map.n_zones,
                }
            )
        return report

    # ------------------------------------------------------------------
    def head(self, k: int = 10) -> List[Dict[str, object]]:
        """First ``k`` rows as dicts (debugging helper)."""
        k = min(k, self._n)
        decoded = {name: self.window(name, 0, k) for name in self.column_names}
        return [
            {name: decoded[name][row] for name in decoded}
            for row in range(k)
        ]

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self._n}, columns={list(self._data)})"


def _windowed_sums_exactly(stored: Column) -> bool:
    """The ``sums_exactly`` gate decided in bounded decode windows.

    Same verdict as :func:`repro.engine.kernels.sums_exactly` on the full
    decode: finiteness and integrality are per-element, and the ``2**53``
    magnitude bound uses the global max ``|value|`` times the global row
    count — only the decode is chunked.
    """
    n = len(stored)
    max_abs = 0.0
    for lo in range(0, n, _GATE_CHUNK_ROWS):
        part = np.asarray(
            stored.window(lo, min(lo + _GATE_CHUNK_ROWS, n)), dtype=np.float64
        )
        if not np.all(np.isfinite(part)):
            return False
        if np.any(part != np.trunc(part)):
            return False
        if len(part):
            max_abs = max(max_abs, float(np.abs(part).max()))
    return max_abs * n < 2.0**53


def _distinct_sums_exactly(values: np.ndarray, rows: int) -> bool:
    """The ``sums_exactly`` gate decided from a distinct-value dictionary."""
    if rows == 0 or len(values) == 0:
        return True
    try:
        floats = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        return False
    if not np.all(np.isfinite(floats)):
        return False
    if np.any(floats != np.trunc(floats)):
        return False
    return float(np.abs(floats).max()) * rows < 2.0**53


class KeyIndex:
    """Maps key values of a unique column to their row positions.

    ``positions_of(keys)`` vectorises the lookup for a whole foreign-key
    column.  Dense integer keys (``key == row`` or ``key == row + base``)
    are detected and served by arithmetic; anything else falls back to a
    hash map.
    """

    def __init__(self, table: Table, column_name: str):
        column = table.column(column_name)
        self.table_name = table.name
        self.column_name = column_name
        self._dense_base: Optional[int] = None
        self._mapping: Optional[Dict] = None
        if np.issubdtype(column.dtype, np.integer) and len(column) > 0:
            base = int(column[0])
            expected = np.arange(base, base + len(column), dtype=column.dtype)
            if np.array_equal(column, expected):
                self._dense_base = base
        if self._dense_base is None:
            mapping: Dict = {}
            for position, key in enumerate(column):
                if key in mapping:
                    raise EngineError(
                        f"key column {column_name!r} of table {table.name!r} "
                        f"has duplicate value {key!r}"
                    )
                mapping[key] = position
            self._mapping = mapping
        self._n = len(column)

    @property
    def is_dense(self) -> bool:
        """Whether the index is served arithmetically (dense surrogate keys)."""
        return self._dense_base is not None

    def positions_of(self, keys: np.ndarray) -> np.ndarray:
        """Row positions of each key; raises on unknown keys."""
        if self._dense_base is not None:
            positions = np.asarray(keys, dtype=np.int64) - self._dense_base
            if len(positions) and (positions.min() < 0 or positions.max() >= self._n):
                raise EngineError(
                    f"foreign key value outside table {self.table_name!r} "
                    f"key range"
                )
            return positions
        mapping = self._mapping
        assert mapping is not None
        try:
            return np.fromiter(
                (mapping[key] for key in keys), dtype=np.int64, count=len(keys)
            )
        except KeyError as exc:
            raise EngineError(
                f"foreign key value {exc.args[0]!r} not found in "
                f"{self.table_name}.{self.column_name}"
            ) from None


def _to_array(values: Sequence) -> np.ndarray:
    """Coerce a python sequence to the narrowest sensible NumPy column."""
    values = list(values)
    if not values:
        return np.empty(0, dtype=object)
    first = values[0]
    if isinstance(first, bool):
        return np.asarray(values, dtype=bool)
    if isinstance(first, (int, np.integer)) and all(
        isinstance(v, (int, np.integer)) for v in values
    ):
        return np.asarray(values, dtype=np.int64)
    if isinstance(first, (float, np.floating)) and all(
        isinstance(v, (int, float, np.integer, np.floating)) for v in values
    ):
        return np.asarray(values, dtype=np.float64)
    array = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        array[i] = value
    return array


def table_from_rows(name: str, rows: Iterable[Mapping[str, object]]) -> Table:
    """Build a table from an iterable of row dicts (tests/examples)."""
    rows = list(rows)
    if not rows:
        raise EngineError(f"cannot infer columns of empty table {name!r}")
    columns: Dict[str, List] = {key: [] for key in rows[0]}
    for row in rows:
        if set(row) != set(columns):
            raise EngineError(f"ragged rows for table {name!r}")
        for key, value in row.items():
            columns[key].append(value)
    return Table(name, {key: _to_array(values) for key, values in columns.items()})
