"""The relational engine substrate (the paper's Oracle 11g substitute).

Columnar tables, a catalog, key indexes, a three-shape query layer (star
aggregate, drill-across, pivot), a vectorised executor, SQL text rendering,
and star-schema metadata.
"""

from .catalog import Catalog
from .executor import EngineExecutor, ResultSet
from .query import (
    Aggregate,
    AggregateQuery,
    ColumnPredicate,
    DimensionJoin,
    DrillAcrossQuery,
    FACT,
    GroupByColumn,
    PivotQuery,
)
from .sqlgen import render_aggregate, render_drill_across, render_pivot, render_sql
from .persist import PartitionedStoreWriter, load_catalog, save_catalog
from .star import DimensionBinding, StarSchema
from .table import KeyIndex, Table, table_from_rows

__all__ = [
    "Aggregate",
    "AggregateQuery",
    "Catalog",
    "ColumnPredicate",
    "DimensionBinding",
    "DimensionJoin",
    "DrillAcrossQuery",
    "EngineExecutor",
    "FACT",
    "GroupByColumn",
    "KeyIndex",
    "load_catalog",
    "PartitionedStoreWriter",
    "PivotQuery",
    "ResultSet",
    "StarSchema",
    "Table",
    "render_aggregate",
    "render_drill_across",
    "render_pivot",
    "render_sql",
    "save_catalog",
    "table_from_rows",
]
