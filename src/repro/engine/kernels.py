"""Group-by factorization kernels.

The engine's group-by pipeline reduces a multi-column key to dense integer
group ids.  Two implementations are provided:

* :func:`factorize_numpy` — the production kernel: per-column ``np.unique``
  encoding combined into a single integer key, factorised once more.  Fully
  vectorised; this is what makes pushed gets fast.
* :func:`factorize_python` — a dict-based row-at-a-time reference kernel.
  Semantically identical, used (a) as an oracle in tests and (b) by the
  kernel ablation benchmark to quantify what vectorisation buys.

Both return ``(group_ids, group_count, first_row_of_group)`` where
``first_row_of_group[g]`` is a representative row of group ``g``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def encode_column(column: np.ndarray) -> Tuple[np.ndarray, int]:
    """Dense integer codes of one column plus its cardinality."""
    uniques, codes = np.unique(column, return_inverse=True)
    return codes.astype(np.int64, copy=False), len(uniques)


def sums_exactly(values: np.ndarray) -> bool:
    """Whether summing these values is exact in float64.

    Integer-valued floats add exactly while every intermediate sum stays
    below 2**53, so integral measures (quantities, counts, money in
    integral units) aggregate bit-identically in any association order.
    Fractional values do not — callers must fall back to the one
    canonical summation order (a cold scan) instead.
    """
    if len(values) == 0:
        return True
    floats = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(floats)):
        return False
    if np.any(floats != np.trunc(floats)):
        return False
    bound = float(np.abs(floats).max()) * len(floats)
    return bound < 2.0**53


def combine_codes(
    code_columns: "Sequence[Tuple[np.ndarray, int]]", n_rows: int
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Fold pre-encoded ``(codes, cardinality)`` columns into dense group ids.

    This is the production group-by fold: per-column integer codes are
    combined into one lexicographic key, factorised once more.  Group ids
    follow the combined-code sort order, i.e. the lexicographic order of the
    key columns' code order.  With no grouping columns everything is one
    group (complete aggregation).

    When the combined key space is small relative to the row count the
    factorisation runs through a counting pass (``np.bincount``) instead of
    ``np.unique``'s sort — O(n + key_space) versus O(n log n), with the same
    sorted-key group order and first-occurrence representatives.
    """
    if not code_columns:
        group_ids = np.zeros(n_rows, dtype=np.int64)
        first = np.zeros(1 if n_rows else 0, dtype=np.int64)
        return group_ids, (1 if n_rows else 0), first
    combined = np.zeros(len(code_columns[0][0]), dtype=np.int64)
    key_space = 1
    for codes, cardinality in code_columns:
        combined = combined * cardinality + codes
        key_space *= max(1, int(cardinality))
    if combined.size and key_space <= max(1 << 16, 2 * combined.size):
        present = np.flatnonzero(np.bincount(combined, minlength=key_space))
        lookup = np.empty(key_space, dtype=np.int64)
        lookup[present] = np.arange(len(present), dtype=np.int64)
        group_ids = lookup[combined]
        # reversed assignment leaves each slot holding its first occurrence
        first = np.empty(len(present), dtype=np.int64)
        first[group_ids[::-1]] = np.arange(
            combined.size - 1, -1, -1, dtype=np.int64
        )
        return group_ids, len(present), first
    uniques, first, group_ids = np.unique(
        combined, return_index=True, return_inverse=True
    )
    return group_ids.astype(np.int64, copy=False), len(uniques), first


def factorize_numpy(
    columns: Sequence[np.ndarray], n_rows: int
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Vectorised multi-column factorization.

    Encodes each column through :func:`encode_column` and delegates the fold
    to :func:`combine_codes` — the same kernel the engine executor feeds
    with dictionary codes, so the ablation benchmark measures the real
    production path.
    """
    return combine_codes([encode_column(column) for column in columns], n_rows)


def factorize_python(
    columns: Sequence[np.ndarray], n_rows: int
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Dict-based reference factorization (row at a time).

    Group ids are assigned by *sorted key order* so the output is
    exchangeable with :func:`factorize_numpy`.
    """
    if not columns:
        group_ids = np.zeros(n_rows, dtype=np.int64)
        first = np.zeros(1 if n_rows else 0, dtype=np.int64)
        return group_ids, (1 if n_rows else 0), first
    length = len(columns[0])
    keys: List[Tuple] = list(zip(*columns))
    first_seen: Dict[Tuple, int] = {}
    for row, key in enumerate(keys):
        if key not in first_seen:
            first_seen[key] = row
    ordered = sorted(first_seen)
    slot_of = {key: slot for slot, key in enumerate(ordered)}
    group_ids = np.fromiter(
        (slot_of[key] for key in keys), dtype=np.int64, count=length
    )
    first = np.fromiter(
        (first_seen[key] for key in ordered), dtype=np.int64, count=len(ordered)
    )
    return group_ids, len(ordered), first
