"""SQL text generation for pushed queries.

Renders the engine's query objects as the SQL the paper's prototype sends to
Oracle: Listing 1 (a get), Listing 4 (the JOP drill-across) and Listing 5
(the POP pivot with an ``is not null`` filter).  The text is used by the
formulation-effort experiment (Table 1), by ``explain()`` output, and by the
hand-written-code generator of :mod:`repro.codegen`.
"""

from __future__ import annotations

from typing import List

from ..core.query import Predicate, PredicateOp
from .query import AggregateQuery, DrillAcrossQuery, FACT, PivotQuery


def render_sql(query) -> str:
    """Render any pushed query object to SQL text."""
    if isinstance(query, AggregateQuery):
        return render_aggregate(query)
    if isinstance(query, DrillAcrossQuery):
        return render_drill_across(query)
    if isinstance(query, PivotQuery):
        return render_pivot(query)
    raise TypeError(f"cannot render query of type {type(query).__name__}")


def _literal(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def _render_predicate(column: str, predicate: Predicate) -> str:
    if predicate.op is PredicateOp.EQ:
        return f"{column} = {_literal(predicate.values[0])}"
    if predicate.op is PredicateOp.IN:
        rendered = ", ".join(_literal(v) for v in predicate.values)
        return f"{column} in ({rendered})"
    low, high = predicate.values
    return f"{column} between {_literal(low)} and {_literal(high)}"


def _qualify(table: str, column: str, fact: str, alias_map) -> str:
    if table in (FACT, fact):
        return f"{alias_map[fact]}.{column}"
    return f"{alias_map[table]}.{column}"


def render_aggregate(query: AggregateQuery, indent: str = "") -> str:
    """Render a get as a star-join GROUP BY query (Listing 1 style)."""
    alias_map = {query.fact: "f"}
    for i, join in enumerate(query.joins):
        alias_map[join.table] = f"d{i}"

    referenced = {gb.table for gb in query.group_by} | {cp.table for cp in query.where}
    referenced.discard(FACT)
    referenced.discard(query.fact)

    select_parts: List[str] = []
    for gb in query.group_by:
        qualified = _qualify(gb.table, gb.column, query.fact, alias_map)
        select_parts.append(f"{qualified} as {gb.alias}")
    for agg in query.aggregates:
        op = agg.op if agg.op != "avg" else "avg"
        select_parts.append(f"{op}(f.{agg.column}) as {agg.alias}")

    lines = [f"{indent}select {', '.join(select_parts)}"]
    lines.append(f"{indent}from {query.fact} f")
    for join in query.joins:
        if join.table not in referenced:
            continue
        alias = alias_map[join.table]
        lines.append(
            f"{indent}  join {join.table} {alias} "
            f"on {alias}.{join.dim_key} = f.{join.fact_fk}"
        )
    if query.where:
        conditions = [
            _render_predicate(
                _qualify(cp.table, cp.column, query.fact, alias_map), cp.predicate
            )
            for cp in query.where
        ]
        lines.append(f"{indent}where {' and '.join(conditions)}")
    if query.group_by:
        grouped = ", ".join(
            _qualify(gb.table, gb.column, query.fact, alias_map)
            for gb in query.group_by
        )
        lines.append(f"{indent}group by {grouped}")
    return "\n".join(lines)


def render_drill_across(query: DrillAcrossQuery) -> str:
    """Render the JOP join of two subqueries (Listing 4 style)."""
    left_cols = [f"t1.{alias}" for alias in query.left.output_columns]
    right_cols = [
        f"t2.{agg.alias} as {query.renames.get(agg.alias, agg.alias)}"
        if agg.alias in query.renames
        else f"t2.{agg.alias}"
        for agg in query.right.aggregates
    ]
    join_kind = "left outer join" if query.outer else "join"
    conditions = " and ".join(f"t1.{alias} = t2.{alias}" for alias in query.join_on)
    lines = [f"select {', '.join(left_cols + right_cols)}"]
    lines.append("from (")
    lines.append(render_aggregate(query.left, indent="  "))
    lines.append(f") t1 {join_kind} (")
    lines.append(render_aggregate(query.right, indent="  "))
    lines.append(f") t2 on {conditions}")
    return "\n".join(lines)


def render_pivot(query: PivotQuery) -> str:
    """Render the POP pivot (Listing 5 style, Oracle PIVOT syntax)."""
    base = render_aggregate(query.base, indent="  ")
    kept = [gb.alias for gb in query.base.group_by if gb.alias != query.pivot_alias]
    value_aliases = [agg.alias for agg in query.base.aggregates]
    pivoted: List[str] = list(value_aliases)
    for renames in query.members.values():
        pivoted.extend(renames.values())
    select_cols = (
        [f"{_literal(query.reference)} as {query.pivot_alias}"] + kept + pivoted
    )

    in_items = [f"{_literal(query.reference)} as _ref"]
    for member, renames in query.members.items():
        suffix = "_".join(renames.values()) or str(member)
        in_items.append(f"{_literal(member)} as {suffix}")

    agg_exprs = ", ".join(
        f"{agg.op}({agg.alias})" for agg in query.base.aggregates
    )
    lines = [f"select {', '.join(select_cols)}"]
    lines.append("from (")
    lines.append(base)
    lines.append(")")
    lines.append("pivot (")
    lines.append(f"  {agg_exprs} for {query.pivot_alias}")
    lines.append(f"  in ({', '.join(in_items)})")
    lines.append(")")
    if query.require_all:
        not_null = " and ".join(f"{col} is not null" for col in pivoted)
        lines.append(f"where {not_null}")
    return "\n".join(lines)
