"""The engine catalog: the set of tables a database holds.

A :class:`Catalog` is the substitute for the paper's Oracle schema: star
schemas (fact + dimension tables) are registered here, and every query the
plans push "to SQL" executes against it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..core.errors import EngineError
from .table import Table


class Catalog:
    """A named collection of tables."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}

    def register(self, table: Table, replace: bool = False) -> Table:
        """Add a table to the catalog."""
        if table.name in self._tables and not replace:
            raise EngineError(f"table {table.name!r} is already registered")
        self._tables[table.name] = table
        return table

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise EngineError(f"cannot drop unknown table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look a table up by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise EngineError(
                f"unknown table {name!r} (registered: {', '.join(sorted(self._tables))})"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        sizes = {name: len(table) for name, table in self._tables.items()}
        return f"Catalog({sizes})"
