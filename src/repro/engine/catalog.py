"""The engine catalog: the set of tables a database holds.

A :class:`Catalog` is the substitute for the paper's Oracle schema: star
schemas (fact + dimension tables) are registered here, and every query the
plans push "to SQL" executes against it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from ..core.errors import EngineError
from .table import Table

CatalogListener = Callable[[str, str], None]
"""``(event, table_name)`` callback; events: ``register``/``replace``/``drop``."""


class Catalog:
    """A named collection of tables.

    Components that cache data derived from catalog tables (e.g. the
    semantic result cache) can subscribe with :meth:`add_listener` to be
    told when a table changes identity.
    """

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._listeners: List[CatalogListener] = []

    def add_listener(self, listener: CatalogListener) -> None:
        """Subscribe to table registration/replacement/drop events."""
        self._listeners.append(listener)

    def _notify(self, event: str, name: str) -> None:
        for listener in self._listeners:
            listener(event, name)

    def register(self, table: Table, replace: bool = False) -> Table:
        """Add a table to the catalog."""
        if table.name in self._tables and not replace:
            raise EngineError(f"table {table.name!r} is already registered")
        replaced = table.name in self._tables
        self._tables[table.name] = table
        self._notify("replace" if replaced else "register", table.name)
        return table

    def drop(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise EngineError(f"cannot drop unknown table {name!r}")
        del self._tables[name]
        self._notify("drop", name)

    def table(self, name: str) -> Table:
        """Look a table up by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise EngineError(
                f"unknown table {name!r} (registered: {', '.join(sorted(self._tables))})"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __repr__(self) -> str:
        sizes = {name: len(table) for name, table in self._tables.items()}
        return f"Catalog({sizes})"
