"""Compressed column representations and zone maps (the storage layer).

Real column stores do not keep every column as a flat array: low-cardinality
columns are *dictionary-encoded* (narrow integer codes into a sorted value
dictionary), sorted/clustered columns are *run-length-encoded*, and every
column carries per-block *zone maps* (min/max, null count, distinct bound)
so scans can skip blocks that cannot satisfy a predicate.  This module
provides those three representations behind one small :class:`Column`
protocol that :class:`repro.engine.table.Table` consumes transparently —
``table.column(name)`` always yields the decoded logical array, and the
executor's hot paths use the range-aware accessors (``gather``/``window``)
so only the surviving row ranges are ever decoded.

Soundness contract of zone pruning: a zone test answers "may any row of
this zone satisfy the predicate?" — ``False`` must be *definite* (no row
can match), ``True`` may be a false positive.  Pruned rows would all have
been rejected by the selection mask anyway, so the masked row sequence —
and therefore every float summation order — is unchanged: results stay
bit-identical to the unpruned scan with no extra exactness gating.
NaN semantics make this automatic: predicates never match NaN, and NaN
zone bounds make every comparison ``False``, so all-null zones prune.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .query import FACT

DEFAULT_ZONE_ROWS = 65_536
"""Rows per zone — matches the default parallel morsel size, so one zone
verdict maps onto one morsel task."""

_DICT_MAX_CARDINALITY = 1 << 21
"""Do not dictionary-encode past this cardinality (codes stop narrowing)."""

Ranges = Optional[List[Tuple[int, int]]]
"""A row selection: ordered, disjoint ``[lo, hi)`` ranges; ``None`` = all."""


# ----------------------------------------------------------------------
# Row-range selections
# ----------------------------------------------------------------------
def take_ranges(values: np.ndarray, ranges: Ranges) -> np.ndarray:
    """Concatenate the selected row ranges of an array.

    ``None`` returns the array itself (zero copy); a single range returns a
    view.  On memory-mapped columns only the selected pages are ever read.
    """
    if ranges is None:
        return values
    if not ranges:
        return values[:0]
    if len(ranges) == 1:
        lo, hi = ranges[0]
        return values[lo:hi]
    return np.concatenate([values[lo:hi] for lo, hi in ranges])


def ranges_length(ranges: Ranges, n_rows: int) -> int:
    """Selected row count of a selection over an ``n_rows`` table."""
    if ranges is None:
        return n_rows
    return sum(hi - lo for lo, hi in ranges)


# ----------------------------------------------------------------------
# Column representations
# ----------------------------------------------------------------------
class Column:
    """Protocol of a stored column: decode fully, by window, or by ranges.

    ``decode()`` must reproduce the original logical array bit for bit
    (same values, same dtype) — the executor relies on that for the
    compressed/plain differential guarantee.
    """

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def dtype(self) -> np.dtype:
        """The *logical* dtype (``object`` for string columns)."""
        raise NotImplementedError

    @property
    def encoding(self) -> str:
        raise NotImplementedError

    def decode(self) -> np.ndarray:
        raise NotImplementedError

    def window(self, lo: int, hi: int) -> np.ndarray:
        """Decoded values of rows ``[lo, hi)``."""
        raise NotImplementedError

    def gather(self, ranges: Ranges) -> np.ndarray:
        """Decoded values of a row selection."""
        raise NotImplementedError

    @property
    def stored_bytes(self) -> int:
        raise NotImplementedError


class PlainColumn(Column):
    """An uncompressed column; the array may be RAM-resident or a memmap.

    When built from a persisted unicode array standing in for an object
    (string) column, ``as_object=True`` converts on decode — the conversion
    is per-call, so a memory-mapped string column stays out of core until
    (and only while) it is actually read.
    """

    __slots__ = ("values", "as_object")

    def __init__(self, values: np.ndarray, as_object: bool = False):
        self.values = values
        self.as_object = as_object and values.dtype != object

    def __len__(self) -> int:
        return len(self.values)

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(object) if self.as_object else self.values.dtype

    @property
    def encoding(self) -> str:
        return "plain"

    def decode(self) -> np.ndarray:
        if self.as_object:
            return self.values.astype(object)
        return self.values

    def window(self, lo: int, hi: int) -> np.ndarray:
        part = self.values[lo:hi]
        return part.astype(object) if self.as_object else part

    def gather(self, ranges: Ranges) -> np.ndarray:
        part = take_ranges(self.values, ranges)
        return part.astype(object) if self.as_object else part

    @property
    def stored_bytes(self) -> int:
        return int(self.values.nbytes)


class DictionaryColumn(Column):
    """Narrow integer codes into a sorted dictionary of distinct values.

    Invariants: ``values`` is sorted and duplicate-free, and every entry is
    referenced by at least one code — so ``values[codes]`` equals the
    original column *and* the codes coincide with ``np.unique``'s inverse,
    making ``Table.dictionary()`` free for encoded columns.
    """

    __slots__ = ("codes", "values", "_dtype")

    def __init__(self, codes: np.ndarray, values: np.ndarray,
                 dtype: Optional[np.dtype] = None):
        self.codes = codes
        self.values = values
        self._dtype = np.dtype(dtype) if dtype is not None else values.dtype

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def encoding(self) -> str:
        return "dict"

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def decode(self) -> np.ndarray:
        return self._cast(self.values[np.asarray(self.codes)])

    def window(self, lo: int, hi: int) -> np.ndarray:
        return self._cast(self.values[np.asarray(self.codes[lo:hi])])

    def gather(self, ranges: Ranges) -> np.ndarray:
        return self._cast(self.values[np.asarray(take_ranges(self.codes, ranges))])

    def gather_codes(self, ranges: Ranges) -> np.ndarray:
        """int64 dictionary codes of a row selection (no value decode)."""
        return np.asarray(take_ranges(self.codes, ranges)).astype(
            np.int64, copy=False
        )

    def _cast(self, decoded: np.ndarray) -> np.ndarray:
        if decoded.dtype != self._dtype:
            return decoded.astype(self._dtype)
        return decoded

    @property
    def stored_bytes(self) -> int:
        return int(self.codes.nbytes) + int(_values_nbytes(self.values))


class RLEColumn(Column):
    """Run-length encoding: run values plus cumulative run end offsets.

    Effective for clustered (sort-ordered) columns, where the run count is
    the column's cardinality instead of its row count.  Row ``i`` belongs
    to run ``searchsorted(run_ends, i, side="right")``.
    """

    __slots__ = ("run_values", "run_ends", "_dtype")

    def __init__(self, run_values: np.ndarray, run_ends: np.ndarray,
                 dtype: Optional[np.dtype] = None):
        self.run_values = run_values
        self.run_ends = np.asarray(run_ends, dtype=np.int64)
        self._dtype = np.dtype(dtype) if dtype is not None else run_values.dtype

    def __len__(self) -> int:
        return int(self.run_ends[-1]) if len(self.run_ends) else 0

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def encoding(self) -> str:
        return "rle"

    def decode(self) -> np.ndarray:
        return self.window(0, len(self))

    def window(self, lo: int, hi: int) -> np.ndarray:
        hi = min(hi, len(self))
        if hi <= lo:
            return self._empty()
        first = int(np.searchsorted(self.run_ends, lo, side="right"))
        last = int(np.searchsorted(self.run_ends, hi - 1, side="right"))
        ends = np.minimum(self.run_ends[first:last + 1], hi)
        starts = np.empty_like(ends)
        starts[0] = lo
        if last > first:
            starts[1:] = self.run_ends[first:last]
        out = np.repeat(self.run_values[first:last + 1], ends - starts)
        return out if out.dtype == self._dtype else out.astype(self._dtype)

    def gather(self, ranges: Ranges) -> np.ndarray:
        if ranges is None:
            return self.decode()
        if not ranges:
            return self._empty()
        return np.concatenate([self.window(lo, hi) for lo, hi in ranges])

    def _empty(self) -> np.ndarray:
        return np.empty(0, dtype=self._dtype)

    @property
    def stored_bytes(self) -> int:
        return int(_values_nbytes(self.run_values)) + int(self.run_ends.nbytes)


class ForColumn(Column):
    """Delta/frame-of-reference encoding for sorted integer columns.

    Rows are grouped into fixed ``block_rows`` blocks (zone-aligned by
    construction — the default block is the zone size, so decode windows
    touch only the blocks overlapping them); each block stores its first
    value as an int64 reference, and every row stores its non-negative
    delta from the block reference in the narrowest unsigned dtype wide
    enough for the largest block span.  Clustered fact FK columns and
    surrogate-key dimension columns (``arange``-like) shrink 4–8x.
    """

    __slots__ = ("references", "offsets", "block_rows", "_dtype")

    def __init__(
        self,
        references: np.ndarray,
        offsets: np.ndarray,
        block_rows: int,
        dtype: Optional[np.dtype] = None,
    ):
        self.references = np.asarray(references, dtype=np.int64)
        self.offsets = offsets
        self.block_rows = int(block_rows)
        self._dtype = (
            np.dtype(dtype) if dtype is not None else np.dtype(np.int64)
        )

    def __len__(self) -> int:
        return len(self.offsets)

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def encoding(self) -> str:
        return "for"

    def decode(self) -> np.ndarray:
        return self.window(0, len(self))

    def window(self, lo: int, hi: int) -> np.ndarray:
        hi = min(hi, len(self))
        if hi <= lo:
            return np.empty(0, dtype=self._dtype)
        offsets = np.asarray(self.offsets[lo:hi]).astype(np.int64)
        blocks = np.arange(lo, hi, dtype=np.int64) // self.block_rows
        out = self.references[blocks] + offsets
        return out.astype(self._dtype, copy=False)

    def gather(self, ranges: Ranges) -> np.ndarray:
        if ranges is None:
            return self.decode()
        if not ranges:
            return np.empty(0, dtype=self._dtype)
        return np.concatenate([self.window(lo, hi) for lo, hi in ranges])

    @property
    def stored_bytes(self) -> int:
        return int(self.references.nbytes) + int(np.asarray(self.offsets).nbytes)


def encode_for(
    values: np.ndarray, block_rows: int = DEFAULT_ZONE_ROWS
) -> Optional[ForColumn]:
    """FOR-encode a sorted integer column; ``None`` when it would not win.

    Eligible columns are integer-dtyped and non-decreasing (sorted keys,
    clustered FKs).  The encoding only applies when the offset dtype is
    strictly narrower than the value dtype — otherwise plain storage is
    at least as small.
    """
    if values.dtype.kind not in "iu" or len(values) == 0:
        return None
    if not bool(np.all(values[1:] >= values[:-1])):
        return None
    n = len(values)
    n_blocks = -(-n // block_rows)
    block_starts = np.arange(n_blocks, dtype=np.int64) * block_rows
    references = values[block_starts].astype(np.int64)
    repeats = np.full(n_blocks, block_rows, dtype=np.int64)
    repeats[-1] = n - int(block_starts[-1])
    offsets64 = values.astype(np.int64) - np.repeat(references, repeats)
    span = int(offsets64.max())
    if span >= 1 << 32:
        return None
    offset_dtype = narrowest_code_dtype(span + 1)
    if offset_dtype.itemsize >= values.dtype.itemsize:
        return None
    return ForColumn(
        references, offsets64.astype(offset_dtype), block_rows,
        dtype=values.dtype,
    )


class PartitionedColumn(Column):
    """A column stored as per-partition pieces, each opened lazily.

    Built by the partitioned v2 store loader: each piece is materialised by
    a zero-argument opener the first time any of its rows is touched, so a
    fact table far larger than RAM costs nothing to *load* — scans page in
    only the partitions (and, through their memory maps, only the pages)
    they actually read.  Pieces concatenate in order: partition ``p`` holds
    global rows ``[offsets[p], offsets[p+1])``.
    """

    __slots__ = ("_openers", "_offsets", "_parts", "_dtype", "_stored_bytes")

    def __init__(
        self,
        openers: Sequence[Callable[[], Column]],
        part_rows: Sequence[int],
        dtype: np.dtype,
        stored_bytes: int,
    ):
        self._openers = list(openers)
        rows = np.asarray(list(part_rows), dtype=np.int64)
        self._offsets = np.concatenate([[0], np.cumsum(rows)]).astype(np.int64)
        self._parts: List[Optional[Column]] = [None] * len(self._openers)
        self._dtype = np.dtype(dtype)
        self._stored_bytes = int(stored_bytes)

    def __len__(self) -> int:
        return int(self._offsets[-1])

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def encoding(self) -> str:
        return "partitioned"

    @property
    def n_partitions(self) -> int:
        return len(self._openers)

    def _part(self, index: int) -> Column:
        part = self._parts[index]
        if part is None:
            part = self._openers[index]()
            self._parts[index] = part
        return part

    def decode(self) -> np.ndarray:
        return self.window(0, len(self))

    def window(self, lo: int, hi: int) -> np.ndarray:
        hi = min(hi, len(self))
        if hi <= lo:
            return np.empty(0, dtype=self._dtype)
        first = int(np.searchsorted(self._offsets, lo, side="right")) - 1
        last = int(np.searchsorted(self._offsets, hi - 1, side="right")) - 1
        pieces = []
        for index in range(first, last + 1):
            base = int(self._offsets[index])
            pieces.append(self._part(index).window(max(lo - base, 0), hi - base))
        out = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        if out.dtype != self._dtype:
            return out.astype(self._dtype)
        return out

    def gather(self, ranges: Ranges) -> np.ndarray:
        if ranges is None:
            return self.decode()
        if not ranges:
            return np.empty(0, dtype=self._dtype)
        return np.concatenate([self.window(lo, hi) for lo, hi in ranges])

    def sum_gate_values(self) -> Optional[np.ndarray]:
        """Concatenated distinct values when every piece is dict/RLE-encoded.

        Lets ``Table.sums_exactly`` decide the float-exactness gate from the
        (tiny) per-partition dictionaries instead of decoding the column;
        ``None`` when any piece is stored plain.
        """
        values: List[np.ndarray] = []
        for index in range(len(self._openers)):
            part = self._part(index)
            if isinstance(part, DictionaryColumn):
                values.append(np.asarray(part.values))
            elif isinstance(part, RLEColumn):
                values.append(np.asarray(part.run_values))
            else:
                return None
        if not values:
            return np.empty(0, dtype=self._dtype)
        return np.concatenate(values)

    @property
    def stored_bytes(self) -> int:
        return self._stored_bytes


def _values_nbytes(values: np.ndarray) -> int:
    if values.dtype == object:
        # Rough but stable: python string payloads plus pointer array.
        return values.nbytes + sum(
            len(str(value)) for value in values
        )
    return values.nbytes


def narrowest_code_dtype(cardinality: int) -> np.dtype:
    """The narrowest unsigned dtype that can hold codes ``0..cardinality-1``."""
    if cardinality <= 1 << 8:
        return np.dtype(np.uint8)
    if cardinality <= 1 << 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


def encode_array(values: np.ndarray) -> Column:
    """Choose and build the best encoding for a column.

    Heuristics mirror what real stores do: run-length when the column has
    long runs (clustered data), dictionary when the cardinality is small
    relative to the row count, plain otherwise.  Columns that cannot be
    encoded soundly (mixed-type objects, floats with NaNs) stay plain.
    """
    n = len(values)
    if n == 0:
        return PlainColumn(values)

    # Run-length first: it subsumes dictionary wins on clustered columns.
    try:
        changes = np.flatnonzero(values[1:] != values[:-1])
        n_runs = len(changes) + 1
    except Exception:
        return PlainColumn(values)
    if n_runs <= max(1, n // 8):
        starts = np.concatenate([[0], changes + 1])
        run_values = values[starts]
        run_ends = np.concatenate([starts[1:], [n]]).astype(np.int64)
        return RLEColumn(run_values, run_ends, dtype=values.dtype)

    # Frame-of-reference next: sorted integer columns whose runs are too
    # short for RLE (clustered high-cardinality keys, surrogate keys)
    # shrink to narrow per-block deltas.
    if values.dtype.kind in "iu":
        for_column = encode_for(values)
        if for_column is not None:
            return for_column

    if values.dtype.kind == "f" and bool(np.isnan(values).any()):
        return PlainColumn(values)  # NaN breaks dictionary equality
    try:
        uniques, inverse = np.unique(values, return_inverse=True)
    except Exception:
        return PlainColumn(values)
    cardinality = len(uniques)
    if cardinality > min(_DICT_MAX_CARDINALITY, max(1, n // 4)):
        return PlainColumn(values)
    codes = inverse.astype(narrowest_code_dtype(cardinality))
    return DictionaryColumn(codes, uniques, dtype=values.dtype)


def as_column(values: object) -> Column:
    """Wrap an array (or pass through an existing Column) unchanged."""
    if isinstance(values, Column):
        return values
    return PlainColumn(np.asarray(values))


# ----------------------------------------------------------------------
# Zone maps
# ----------------------------------------------------------------------
class ZoneMap:
    """Per-zone min/max, null count, and distinct bound of one column.

    ``mins``/``maxs`` ignore NaNs; an all-NaN zone stores NaN bounds, which
    every comparison-based test rejects — exactly the sound verdict, since
    predicates never match NaN rows.
    """

    __slots__ = ("zone_rows", "n_rows", "mins", "maxs", "null_counts",
                 "distinct_bounds")

    def __init__(
        self,
        zone_rows: int,
        n_rows: int,
        mins: np.ndarray,
        maxs: np.ndarray,
        null_counts: np.ndarray,
        distinct_bounds: np.ndarray,
    ):
        self.zone_rows = int(zone_rows)
        self.n_rows = int(n_rows)
        self.mins = mins
        self.maxs = maxs
        self.null_counts = np.asarray(null_counts, dtype=np.int64)
        self.distinct_bounds = np.asarray(distinct_bounds, dtype=np.int64)

    @property
    def n_zones(self) -> int:
        return len(self.mins)

    def zone_bounds(self, zone: int) -> Tuple[int, int]:
        lo = zone * self.zone_rows
        return lo, min(lo + self.zone_rows, self.n_rows)

    def value_range(self) -> Tuple[object, object]:
        """Global (min, max) over the whole column (NaN zones ignored)."""
        mins = [m for m in self.mins if not _is_nan(m)]
        maxs = [m for m in self.maxs if not _is_nan(m)]
        if not mins or not maxs:
            return None, None
        return min(mins), max(maxs)

    def distinct_bound_total(self) -> int:
        """A sound upper bound on the column's distinct count."""
        return int(self.distinct_bounds.sum())

    def rechunk(self, new_zone_rows: int) -> "Optional[ZoneMap]":
        """Coarsen this map to a larger, divisible zone size.

        Sound only when ``new_zone_rows`` is a positive multiple of
        ``zone_rows``: each new zone is then the union of whole old
        zones, so min-of-mins / max-of-maxs bounds, summed null counts,
        and summed distinct bounds remain conservative.  Returns ``None``
        otherwise — callers must then drop the map (counted fallback)
        rather than mis-prune with misaligned geometry.
        """
        if new_zone_rows == self.zone_rows:
            return self
        if new_zone_rows <= 0 or new_zone_rows % self.zone_rows:
            return None
        step = new_zone_rows // self.zone_rows
        n_new = max(1, -(-self.n_zones // step))
        mins = np.empty(n_new, dtype=self.mins.dtype)
        maxs = np.empty(n_new, dtype=self.maxs.dtype)
        nulls = np.zeros(n_new, dtype=np.int64)
        distinct = np.zeros(n_new, dtype=np.int64)
        for zone in range(n_new):
            lo, hi = zone * step, min((zone + 1) * step, self.n_zones)
            zone_mins = [m for m in self.mins[lo:hi] if not _is_nan(m)]
            zone_maxs = [m for m in self.maxs[lo:hi] if not _is_nan(m)]
            mins[zone] = min(zone_mins) if zone_mins else np.nan
            maxs[zone] = max(zone_maxs) if zone_maxs else np.nan
            nulls[zone] = int(self.null_counts[lo:hi].sum())
            distinct[zone] = int(self.distinct_bounds[lo:hi].sum())
        return ZoneMap(new_zone_rows, self.n_rows, mins, maxs, nulls, distinct)


def _is_nan(value: object) -> bool:
    try:
        return bool(np.isnan(value))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False


def build_zone_map(
    values: np.ndarray, zone_rows: int = DEFAULT_ZONE_ROWS
) -> Optional[ZoneMap]:
    """Compute the zone map of a column; ``None`` when min/max is undefined
    (mixed-type object columns)."""
    n = len(values)
    n_zones = max(1, -(-n // zone_rows))
    mins = np.empty(n_zones, dtype=object)
    maxs = np.empty(n_zones, dtype=object)
    null_counts = np.zeros(n_zones, dtype=np.int64)
    distinct = np.zeros(n_zones, dtype=np.int64)
    is_float = values.dtype.kind == "f"
    try:
        for zone in range(n_zones):
            lo = zone * zone_rows
            hi = min(lo + zone_rows, n)
            part = values[lo:hi]
            if len(part) == 0:
                mins[zone] = maxs[zone] = np.nan
                continue
            if is_float:
                null_counts[zone] = int(np.isnan(part).sum())
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    mins[zone] = float(np.nanmin(part))
                    maxs[zone] = float(np.nanmax(part))
            else:
                mins[zone] = part.min()
                maxs[zone] = part.max()
            distinct[zone] = len(np.unique(part))
    except (TypeError, ValueError):
        return None
    if values.dtype.kind in "biuf":
        mins = mins.astype(np.float64)
        maxs = maxs.astype(np.float64)
    return ZoneMap(zone_rows, n, mins, maxs, null_counts, distinct)


# ----------------------------------------------------------------------
# Zone tests (predicate → may-match verdicts per zone)
# ----------------------------------------------------------------------
ZoneTest = Callable[[object, object], bool]


def _vector_or_loop(
    alive: np.ndarray,
    mins: np.ndarray,
    maxs: np.ndarray,
    vector: Callable[[np.ndarray, np.ndarray], np.ndarray],
    scalar: ZoneTest,
) -> None:
    """AND a test's verdicts into ``alive``, vectorised when dtypes allow."""
    try:
        verdict = np.asarray(vector(mins, maxs), dtype=bool)
        np.logical_and(alive, verdict, out=alive)
        return
    except Exception:
        pass
    for zone in range(len(alive)):
        if not alive[zone]:
            continue
        try:
            if not scalar(mins[zone], maxs[zone]):
                alive[zone] = False
        except TypeError:
            continue  # incomparable types: keep the zone (sound)


class RangeZoneTest:
    """``[lo, hi]`` (inclusive) overlap test against zone bounds."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: object, hi: object):
        self.lo = lo
        self.hi = hi

    def apply(self, alive: np.ndarray, mins: np.ndarray, maxs: np.ndarray) -> None:
        lo, hi = self.lo, self.hi
        _vector_or_loop(
            alive, mins, maxs,
            lambda m, x: (x >= lo) & (m <= hi),
            lambda zmin, zmax: bool(zmax >= lo) and bool(zmin <= hi),
        )


class MembersZoneTest:
    """Any-member-in-bounds test for EQ / IN predicates."""

    __slots__ = ("members",)

    def __init__(self, members: Sequence[object]):
        self.members = tuple(members)

    def apply(self, alive: np.ndarray, mins: np.ndarray, maxs: np.ndarray) -> None:
        members = self.members

        def vector(m: np.ndarray, x: np.ndarray) -> np.ndarray:
            verdict = np.zeros(len(m), dtype=bool)
            for value in members:
                verdict |= (m <= value) & (x >= value)
            return verdict

        def scalar(zmin: object, zmax: object) -> bool:
            return any(
                bool(zmin <= value) and bool(zmax >= value) for value in members
            )

        _vector_or_loop(alive, mins, maxs, vector, scalar)


class NeverZoneTest:
    """A provably-empty predicate (e.g. no dimension row matches)."""

    __slots__ = ()

    def apply(self, alive: np.ndarray, mins: np.ndarray, maxs: np.ndarray) -> None:
        alive[:] = False


def predicate_zone_test(predicate: object) -> Optional[object]:
    """The zone test of a core ``Predicate`` evaluated on the fact column."""
    op = getattr(predicate, "op", None)
    values = getattr(predicate, "values", ())
    name = getattr(op, "name", "")
    if name == "EQ":
        return MembersZoneTest((values[0],))
    if name == "IN":
        return MembersZoneTest(values) if values else NeverZoneTest()
    if name == "RANGE":
        return RangeZoneTest(values[0], values[1])
    return None


# ----------------------------------------------------------------------
# Pruning planner
# ----------------------------------------------------------------------
class ZonePruner:
    """Folds the zone tests of one scan into per-zone survival verdicts.

    Built by :func:`plan_zone_pruning`; the executor asks it either for the
    surviving row ranges (serial scans) or for per-morsel verdicts
    (parallel scans, where pruned morsels are never enqueued).
    """

    __slots__ = ("zone_rows", "n_rows", "misaligned", "_tests", "_alive")

    def __init__(self, zone_rows: int, n_rows: int,
                 tests: Sequence[Tuple[ZoneMap, object]],
                 misaligned: int = 0):
        self.zone_rows = zone_rows
        self.n_rows = n_rows
        # Zone maps the planner had to drop because their geometry could
        # not be aligned with the chosen zone size (or their row count
        # disagreed with the fact table).  Dropping a test only loses
        # pruning, never soundness; the executor surfaces the count as
        # ``engine.storage.zone_misaligned``.
        self.misaligned = misaligned
        self._tests = list(tests)
        self._alive: Optional[np.ndarray] = None

    # -- verdicts --------------------------------------------------------
    def survivors(self) -> np.ndarray:
        """Boolean per-zone survival vector (computed once)."""
        if self._alive is None:
            n_zones = max(1, -(-self.n_rows // self.zone_rows))
            alive = np.ones(n_zones, dtype=bool)
            for zone_map, test in self._tests:
                if zone_map.n_zones != n_zones:
                    # Defensive: a map whose zone count disagrees with the
                    # scan geometry would index out of bounds (or worse,
                    # silently mis-prune).  Drop it, counted.
                    self.misaligned += 1
                    continue
                test.apply(alive, zone_map.mins, zone_map.maxs)  # type: ignore[attr-defined]
            self._alive = alive
        return self._alive

    @property
    def zones_checked(self) -> int:
        return len(self.survivors())

    @property
    def zones_pruned(self) -> int:
        return int((~self.survivors()).sum())

    @property
    def rows_pruned(self) -> int:
        alive = self.survivors()
        pruned = 0
        for zone in np.flatnonzero(~alive):
            lo = int(zone) * self.zone_rows
            pruned += min(lo + self.zone_rows, self.n_rows) - lo
        return pruned

    def survival_fraction(self) -> float:
        if self.n_rows == 0:
            return 1.0
        return (self.n_rows - self.rows_pruned) / self.n_rows

    def surviving_row_ranges(self) -> Ranges:
        """Coalesced ``[lo, hi)`` ranges of surviving rows.

        ``None`` means nothing was pruned (callers skip the gather layer
        entirely); an empty list means every zone was pruned.
        """
        alive = self.survivors()
        if alive.all():
            return None
        ranges: List[Tuple[int, int]] = []
        for zone in np.flatnonzero(alive):
            lo = int(zone) * self.zone_rows
            hi = min(lo + self.zone_rows, self.n_rows)
            if ranges and ranges[-1][1] == lo:
                ranges[-1] = (ranges[-1][0], hi)
            else:
                ranges.append((lo, hi))
        return ranges

    def range_may_match(self, lo: int, hi: int) -> bool:
        """Whether any surviving zone overlaps fact rows ``[lo, hi)``."""
        if hi <= lo:
            return False
        alive = self.survivors()
        z0 = lo // self.zone_rows
        z1 = min((hi - 1) // self.zone_rows, len(alive) - 1)
        return bool(alive[z0:z1 + 1].any())


def plan_zone_pruning(
    catalog: object,
    fact: object,
    fact_name: str,
    predicates: Sequence[object],
    joins: Sequence[object],
) -> Optional[ZonePruner]:
    """Build the zone pruner of one scan, or ``None`` when nothing applies.

    Two kinds of predicate prune:

    * **fact-resident** predicates test the fact column's own zones;
    * **dimension** predicates are mapped through the star join: rows that
      match carry a foreign key inside the ``[min, max]`` range of the
      matching dimension keys, so the FK column's zones are tested against
      that range.  (A zone outside the range provably holds no matching
      row; a zone inside may still hold non-matching ones — the mask
      handles those, pruning only needs the one-sided guarantee.)

    Shared by the executor (which applies it) and the cost model / flow
    analyzer (which predict it), so the planner and the engine always see
    the same pruning.
    """
    zone_map_of = getattr(fact, "zone_map", None)
    if zone_map_of is None or not getattr(fact, "has_zone_maps", False):
        return None
    joins_by_table: Dict[str, object] = {
        join.table: join for join in joins  # type: ignore[attr-defined]
    }
    candidates: List[Tuple[ZoneMap, object]] = []
    misaligned = 0
    n_rows = len(fact)  # type: ignore[arg-type]
    for cp in predicates:
        table = cp.table  # type: ignore[attr-defined]
        if table in (FACT, fact_name):
            zone_map = zone_map_of(cp.column)  # type: ignore[attr-defined]
            if zone_map is None:
                continue
            test = predicate_zone_test(cp.predicate)  # type: ignore[attr-defined]
            if test is None:
                continue
        else:
            join = joins_by_table.get(table)
            if join is None:
                continue
            zone_map = zone_map_of(join.fact_fk)  # type: ignore[attr-defined]
            if zone_map is None:
                continue
            try:
                dimension = catalog.table(table)  # type: ignore[attr-defined]
                dim_mask = cp.predicate.mask(  # type: ignore[attr-defined]
                    dimension.column(cp.column)  # type: ignore[attr-defined]
                )
            except Exception:
                continue
            if not dim_mask.any():
                test = NeverZoneTest()
            else:
                keys = dimension.column(join.dim_key)[dim_mask]  # type: ignore[attr-defined]
                test = RangeZoneTest(keys.min(), keys.max())
        if zone_map.n_rows != n_rows:
            # A map built for a different row count (stale, truncated, or
            # saved under different geometry) cannot be trusted for this
            # scan: its zone indexes would not line up with fact rows.
            # Drop the test — pruning degrades, soundness does not.
            misaligned += 1
            continue
        candidates.append((zone_map, test))
    if not candidates:
        if misaligned:
            return ZonePruner(
                DEFAULT_ZONE_ROWS, n_rows, [], misaligned=misaligned
            )
        return None
    # All tests must share one zone geometry (the survival vector has one
    # zone size).  Pick the coarsest among the candidates and re-chunk
    # the finer maps up to it; maps whose size does not divide it are
    # dropped, counted — never silently mis-pruned.
    zone_rows = max(zone_map.zone_rows for zone_map, _ in candidates)
    tests: List[Tuple[ZoneMap, object]] = []
    for zone_map, test in candidates:
        rechunked = zone_map.rechunk(zone_rows)
        if rechunked is None:
            misaligned += 1
            continue
        tests.append((rechunked, test))
    if not tests and not misaligned:
        return None
    return ZonePruner(zone_rows, n_rows, tests, misaligned=misaligned)
