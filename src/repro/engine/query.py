"""Logical query objects the plans push to the engine ("to SQL").

Section 5.2 works "under the following hypotheses: (i) the get, join, and
pivot logical operations can be executed via SQL queries".  These three are
exactly the query shapes the engine accepts:

* :class:`AggregateQuery` — a star-join + group-by + aggregate, the SQL
  translation of a *get* (Listing 1);
* :class:`DrillAcrossQuery` — two aggregate subqueries joined on (a subset
  of) their group-by columns, the SQL translation JOP uses (Listing 4);
* :class:`PivotQuery` — an aggregate subquery whose slices of one column are
  pivoted into measure columns, the SQL translation POP uses (Listing 5).

All three are immutable value objects; :mod:`repro.engine.sqlgen` renders
them to SQL text and :mod:`repro.engine.executor` evaluates them.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from ..core.errors import EngineError
from ..core.query import Predicate

FACT = "__fact__"
"""Placeholder table token meaning "the fact table" in column references."""


class DimensionJoin:
    """A foreign-key join from the fact table to one dimension table."""

    __slots__ = ("table", "fact_fk", "dim_key")

    def __init__(self, table: str, fact_fk: str, dim_key: str):
        self.table = table
        self.fact_fk = fact_fk
        self.dim_key = dim_key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DimensionJoin) and (
            other.table,
            other.fact_fk,
            other.dim_key,
        ) == (self.table, self.fact_fk, self.dim_key)

    def __hash__(self) -> int:
        return hash(("DimensionJoin", self.table, self.fact_fk, self.dim_key))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DimensionJoin({self.table}.{self.dim_key} = fact.{self.fact_fk})"


class GroupByColumn:
    """A grouping column: a physical ``table.column`` with an output alias.

    The alias is the OLAP *level name*, which is how result columns line up
    with cube coordinates.
    """

    __slots__ = ("table", "column", "alias")

    def __init__(self, table: str, column: str, alias: str):
        self.table = table
        self.column = column
        self.alias = alias

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GroupByColumn) and (
            other.table,
            other.column,
            other.alias,
        ) == (self.table, self.column, self.alias)

    def __hash__(self) -> int:
        return hash(("GroupByColumn", self.table, self.column, self.alias))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}.{self.column} as {self.alias}"


class ColumnPredicate:
    """A selection predicate bound to a physical ``table.column``.

    Reuses the operator/values structure of the OLAP-level
    :class:`~repro.core.query.Predicate`.
    """

    __slots__ = ("table", "column", "predicate")

    def __init__(self, table: str, column: str, predicate: Predicate):
        self.table = table
        self.column = column
        self.predicate = predicate

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ColumnPredicate) and (
            other.table,
            other.column,
            other.predicate,
        ) == (self.table, self.column, self.predicate)

    def __hash__(self) -> int:
        return hash(("ColumnPredicate", self.table, self.column, self.predicate))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}.{self.column} {self.predicate!r}"


class Aggregate:
    """An aggregation over a fact measure column: ``op(column) AS alias``."""

    __slots__ = ("column", "op", "alias")

    def __init__(self, column: str, op: str, alias: str):
        if op not in ("sum", "avg", "min", "max", "count"):
            raise EngineError(f"unsupported aggregation operator {op!r}")
        self.column = column
        self.op = op
        self.alias = alias

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Aggregate) and (
            other.column,
            other.op,
            other.alias,
        ) == (self.column, self.op, self.alias)

    def __hash__(self) -> int:
        return hash(("Aggregate", self.column, self.op, self.alias))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.op}({self.column}) as {self.alias}"


class AggregateQuery:
    """A star group-by query — the SQL form of a *get* operation."""

    __slots__ = ("fact", "joins", "where", "group_by", "aggregates")

    def __init__(
        self,
        fact: str,
        joins: Sequence[DimensionJoin],
        where: Sequence[ColumnPredicate],
        group_by: Sequence[GroupByColumn],
        aggregates: Sequence[Aggregate],
    ):
        self.fact = fact
        self.joins: Tuple[DimensionJoin, ...] = tuple(joins)
        self.where: Tuple[ColumnPredicate, ...] = tuple(where)
        self.group_by: Tuple[GroupByColumn, ...] = tuple(group_by)
        self.aggregates: Tuple[Aggregate, ...] = tuple(aggregates)
        if not self.aggregates:
            raise EngineError("an aggregate query needs at least one aggregate")
        joined = {join.table for join in self.joins} | {self.fact, FACT}
        for gb in self.group_by:
            if gb.table not in joined:
                raise EngineError(
                    f"group-by column {gb!r} references unjoined table {gb.table!r}"
                )
        for cp in self.where:
            if cp.table not in joined:
                raise EngineError(
                    f"predicate {cp!r} references unjoined table {cp.table!r}"
                )

    @property
    def output_columns(self) -> Tuple[str, ...]:
        """Result column aliases: group-by aliases then aggregate aliases."""
        return tuple(gb.alias for gb in self.group_by) + tuple(
            agg.alias for agg in self.aggregates
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AggregateQuery) and (
            other.fact,
            other.joins,
            frozenset(other.where),
            other.group_by,
            other.aggregates,
        ) == (self.fact, self.joins, frozenset(self.where), self.group_by, self.aggregates)

    def __hash__(self) -> int:
        return hash(
            (
                "AggregateQuery",
                self.fact,
                self.joins,
                frozenset(self.where),
                self.group_by,
                self.aggregates,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AggregateQuery(fact={self.fact}, by={[g.alias for g in self.group_by]}, "
            f"where={list(self.where)}, aggs={list(self.aggregates)})"
        )


class DrillAcrossQuery:
    """Two aggregate subqueries joined on grouping aliases (JOP, Listing 4).

    ``join_on`` lists the group-by aliases used as the join key (all of them
    for a natural drill-across, a subset for a partial join).  The right
    side's aggregate columns appear in the result renamed through
    ``renames`` (e.g. ``quantity → bc_quantity``).  ``outer=True`` keeps
    unmatched left rows (the ``assess*`` variant).

    ``multi=True`` enables the fan-in partial join of Section 4.2: when a
    left row matches several right rows (e.g. the k past months of a past
    benchmark), their measures are appended as ``name_1 … name_p`` columns,
    ordered by the right side's full grouping coordinate.  With
    ``multi=False`` a non-unique right key is an error.
    """

    __slots__ = ("left", "right", "join_on", "renames", "outer", "multi")

    def __init__(
        self,
        left: AggregateQuery,
        right: AggregateQuery,
        join_on: Sequence[str],
        renames: Mapping[str, str],
        outer: bool = False,
        multi: bool = False,
    ):
        left_aliases = set(alias for alias in left.output_columns)
        for alias in join_on:
            if alias not in left_aliases:
                raise EngineError(f"join alias {alias!r} missing from left subquery")
        right_aliases = {gb.alias for gb in right.group_by}
        for alias in join_on:
            if alias not in right_aliases:
                raise EngineError(f"join alias {alias!r} missing from right subquery")
        self.left = left
        self.right = right
        self.join_on: Tuple[str, ...] = tuple(join_on)
        self.renames = dict(renames)
        self.outer = bool(outer)
        self.multi = bool(multi)

    @property
    def output_columns(self) -> Tuple[str, ...]:
        extra = tuple(
            self.renames.get(agg.alias, agg.alias) for agg in self.right.aggregates
        )
        return self.left.output_columns + extra

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DrillAcrossQuery) and (
            other.left,
            other.right,
            other.join_on,
            other.renames,
            other.outer,
            other.multi,
        ) == (self.left, self.right, self.join_on, self.renames,
              self.outer, self.multi)

    def __hash__(self) -> int:
        return hash(
            (
                "DrillAcrossQuery",
                self.left,
                self.right,
                self.join_on,
                tuple(sorted(self.renames.items())),
                self.outer,
                self.multi,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DrillAcrossQuery(on={list(self.join_on)}, outer={self.outer}, "
            f"left={self.left!r}, right={self.right!r})"
        )


class PivotQuery:
    """An aggregate subquery pivoted on one grouping column (POP, Listing 5).

    ``pivot_alias`` names the grouping column whose slices are pivoted;
    ``reference`` is the member kept as the row identity; ``members`` maps
    every *other* member to per-aggregate renames, e.g.
    ``{"France": {"quantity": "bc_quantity"}}``.  With ``require_all=True``
    rows missing any pivoted value are filtered out (the ``is not null``
    of Listing 5); reference rows are always required.
    """

    __slots__ = ("base", "pivot_alias", "reference", "members", "require_all")

    def __init__(
        self,
        base: AggregateQuery,
        pivot_alias: str,
        reference,
        members: Mapping[object, Mapping[str, str]],
        require_all: bool = True,
    ):
        if pivot_alias not in {gb.alias for gb in base.group_by}:
            raise EngineError(
                f"pivot alias {pivot_alias!r} is not a grouping column of the base query"
            )
        self.base = base
        self.pivot_alias = pivot_alias
        self.reference = reference
        self.members = {member: dict(renames) for member, renames in members.items()}
        self.require_all = bool(require_all)

    @property
    def output_columns(self) -> Tuple[str, ...]:
        kept = tuple(
            gb.alias for gb in self.base.group_by
        ) + tuple(agg.alias for agg in self.base.aggregates)
        extra = tuple(
            new_name
            for renames in self.members.values()
            for new_name in renames.values()
        )
        return kept + extra

    def _identity(self) -> Tuple:
        # Member *order* is part of the identity: it fixes the output
        # column layout, which plain dict equality would ignore.
        return (
            self.base,
            self.pivot_alias,
            self.reference,
            tuple(
                (member, tuple(renames.items()))
                for member, renames in self.members.items()
            ),
            self.require_all,
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PivotQuery) and other._identity() == self._identity()

    def __hash__(self) -> int:
        return hash(("PivotQuery",) + self._identity())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PivotQuery(on={self.pivot_alias!r}, reference={self.reference!r}, "
            f"members={list(self.members)}, base={self.base!r})"
        )
