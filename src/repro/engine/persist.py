"""Catalog persistence: the v2 column store plus legacy ``.npz`` archives.

Generated star schemas (especially the larger SSB ladder rungs) are
expensive to rebuild, and past a scale factor or two they stop fitting in
RAM at all.  Two on-disk formats are supported:

* **v1** — one compressed ``.npz`` archive holding every column as a plain
  array (the original format; still written for ``*.npz`` paths and always
  readable).
* **v2** — a *directory* column store: a ``catalog.json`` manifest plus one
  ``.npy`` file per stored array.  Columns are dictionary- or run-length-
  compressed where profitable, every array is opened with
  ``np.load(..., mmap_mode="r")`` so loading is lazy (the OS pages data in
  per scan and can drop it under pressure — this is what lets the SSB
  ladder climb past RAM), and per-column zone maps (min/max, null count,
  distinct bound per :data:`~repro.engine.columns.DEFAULT_ZONE_ROWS`-row
  zone) are computed at store time and persisted in the manifest so the
  executor can prune morsels without touching the data files.

``save_catalog`` picks the format from the path (``*.npz`` → v1, anything
else → v2 directory) unless forced with ``format=``; ``load_catalog``
auto-detects.  Object (string) columns round-trip through unicode arrays;
numeric columns keep their dtypes; decoded results are bit-identical to the
arrays that were saved.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import EngineError
from .catalog import Catalog
from .columns import (
    DEFAULT_ZONE_ROWS,
    Column,
    DictionaryColumn,
    ForColumn,
    PartitionedColumn,
    PlainColumn,
    RLEColumn,
    ZoneMap,
    build_zone_map,
    encode_array,
)
from .table import Table

_SEP = "\x1f"
_INDEX_KEY = "__tables__"
_MANIFEST = "catalog.json"
_DATA_DIR = "data"
_PARTS_DIR = "parts"
_V2_VERSION = 2


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def save_catalog(
    catalog: Catalog,
    path: str,
    *,
    format: str = "auto",
    zone_rows: int = DEFAULT_ZONE_ROWS,
    cluster: Optional[Dict[str, str]] = None,
    compress: bool = True,
) -> str:
    """Write every table of a catalog to disk; returns the path written.

    ``format`` is ``"v1"`` (flat ``.npz``), ``"v2"`` (directory column
    store), or ``"auto"`` (v1 iff the path ends in ``.npz``).  v2 options:

    * ``zone_rows`` — zone-map granularity (rows per zone).
    * ``cluster`` — ``{table: column}``: stable-sort those tables by the
      named column before encoding.  Clustering turns equality/range
      predicates on the cluster column (and on dimensions joined through
      it) into contiguous zone ranges, which is what makes zone-map
      pruning bite; it also hands run-length encoding its best case.
    * ``compress`` — choose dictionary/RLE encodings per column; plain
      arrays otherwise (zone maps are built either way).
    """
    if format not in ("auto", "v1", "v2"):
        raise EngineError(f"unknown catalog format {format!r}")
    if format == "v1" or (format == "auto" and path.endswith(".npz")):
        return _save_v1(catalog, path)
    return _save_v2(
        catalog, path, zone_rows=zone_rows, cluster=cluster or {},
        compress=compress,
    )


def _save_v1(catalog: Catalog, path: str) -> str:
    payload: Dict[str, np.ndarray] = {}
    table_names: List[str] = []
    for table in catalog:
        table_names.append(table.name)
        for column_name, column in table.columns.items():
            key = f"{table.name}{_SEP}{column_name}"
            if column.dtype == object:
                payload[key] = _object_to_unicode(table.name, column_name, column)
            else:
                payload[key] = column
    payload[_INDEX_KEY] = np.array(
        [f"{name}{_SEP}{_column_order(catalog, name)}" for name in table_names],
        dtype=np.str_,
    )
    np.savez_compressed(path, **payload)
    return path if path.endswith(".npz") else f"{path}.npz"


def _save_v2(
    catalog: Catalog,
    path: str,
    *,
    zone_rows: int,
    cluster: Dict[str, str],
    compress: bool,
) -> str:
    writer = PartitionedStoreWriter(
        path, zone_rows=zone_rows, compress=compress
    )
    for table in catalog:
        writer.add_table(table, cluster_by=cluster.get(table.name))
    return writer.finish()


class PartitionedStoreWriter:
    """Incremental v2 store writer for catalogs larger than RAM.

    Whole (dimension) tables go in with :meth:`add_table`.  One table per
    store may instead be appended partition by partition: after
    :meth:`begin_partitioned`, each :meth:`append_partition` chunk is
    encoded, zone-mapped, and flushed to its own ``parts/pNNNNN``
    directory before the next chunk exists — peak RAM is one partition,
    never the table.  All partitions except the last must hold a multiple
    of ``zone_rows`` rows so the loader can stitch the per-partition zone
    maps into one global map (zone boundaries line up exactly) and serve
    the columns through lazily-opened
    :class:`~repro.engine.columns.PartitionedColumn` pieces.

    Dictionary value arrays are shared store-wide: two columns whose
    dictionaries are byte-identical (the SSB city/nation/region strings of
    ``customer`` and ``supplier``, say) reference a single ``.npy`` file.
    The manifest stays a plain v2 manifest — sharing is invisible to the
    loader, which already resolves arrays by relpath.
    """

    def __init__(
        self,
        path: str,
        *,
        zone_rows: int = DEFAULT_ZONE_ROWS,
        compress: bool = True,
    ):
        self.path = path
        self.zone_rows = int(zone_rows)
        self.compress = compress
        os.makedirs(os.path.join(path, _DATA_DIR), exist_ok=True)
        self._counter = 0
        self._shared: Dict[Tuple[str, bytes], str] = {}
        self._tables: List[Dict[str, object]] = []
        self._partition_spec: Optional[Dict[str, object]] = None

    # -- array sinks --------------------------------------------------------

    def _store_in(self, directory: str) -> Callable[[np.ndarray], str]:
        def store(array: np.ndarray) -> str:
            relpath = os.path.join(directory, f"a{self._counter}.npy")
            self._counter += 1
            np.save(os.path.join(self.path, relpath[:-len(".npy")]), array)
            return relpath

        return store

    def _share_in(
        self, store: Callable[[np.ndarray], str]
    ) -> Callable[[np.ndarray], str]:
        def share(array: np.ndarray) -> str:
            key = (array.dtype.str, array.tobytes())
            relpath = self._shared.get(key)
            if relpath is None:
                relpath = store(array)
                self._shared[key] = relpath
            return relpath

        return share

    def _encode_columns(
        self, table: Table, order: Optional[np.ndarray], directory: str
    ) -> List[Dict[str, object]]:
        store = self._store_in(directory)
        share = self._share_in(store)
        columns: List[Dict[str, object]] = []
        for column_name in table.column_names:
            values = table.column(column_name)
            if order is not None:
                values = values[order]
            stored = (
                encode_array(values) if self.compress else PlainColumn(values)
            )
            zone_map = build_zone_map(values, self.zone_rows)
            columns.append(
                _store_column(
                    table.name, column_name, values, stored, zone_map,
                    store, share,
                )
            )
        return columns

    # -- tables -------------------------------------------------------------

    def add_table(self, table: Table, *, cluster_by: Optional[str] = None) -> None:
        """Encode and write one whole table (dimensions, small facts)."""
        order: Optional[np.ndarray] = None
        if cluster_by is not None:
            order = np.argsort(table.column(cluster_by), kind="stable")
        columns = self._encode_columns(table, order, _DATA_DIR)
        self._tables.append(
            {
                "name": table.name,
                "rows": len(table),
                "clustered_by": cluster_by,
                "columns": columns,
            }
        )

    def begin_partitioned(
        self, table_name: str, *, clustered_by: Optional[str] = None
    ) -> None:
        """Open a table that will arrive partition by partition.

        ``clustered_by`` is declarative: callers are expected to hand in
        chunks already ordered by that column (partitioned generation
        produces them that way); the writer never re-sorts across chunks.
        """
        if self._partition_spec is not None:
            raise EngineError("a partitioned table is already open")
        spec: Dict[str, object] = {
            "name": table_name,
            "rows": 0,
            "clustered_by": clustered_by,
            "columns": [],
            "partitions": [],
        }
        self._tables.append(spec)
        self._partition_spec = spec

    def append_partition(self, chunk: Table) -> None:
        """Encode and flush one partition of the open partitioned table."""
        spec = self._partition_spec
        if spec is None:
            raise EngineError("begin_partitioned() before append_partition()")
        parts: List[Dict[str, object]] = spec["partitions"]  # type: ignore[assignment]
        if parts:
            previous = parts[-1]
            if int(previous["rows"]) % self.zone_rows:  # type: ignore[call-overload]
                raise EngineError(
                    "only the final partition may hold a ragged last zone "
                    f"(partition {len(parts) - 1} has {previous['rows']} rows, "
                    f"zone_rows={self.zone_rows})"
                )
            first_columns = [
                str(column["name"])
                for column in parts[0]["columns"]  # type: ignore[index]
            ]
            if list(chunk.column_names) != first_columns:
                raise EngineError(
                    f"partition columns {list(chunk.column_names)} do not "
                    f"match the first partition's {first_columns}"
                )
        directory = os.path.join(_PARTS_DIR, f"p{len(parts):05d}")
        os.makedirs(os.path.join(self.path, directory), exist_ok=True)
        columns = self._encode_columns(chunk, None, directory)
        parts.append(
            {"dir": directory, "rows": len(chunk), "columns": columns}
        )
        spec["rows"] = int(spec["rows"]) + len(chunk)  # type: ignore[call-overload]

    def finish(self) -> str:
        """Write the manifest; returns the store path."""
        self._partition_spec = None
        manifest = {
            "format": "repro-catalog",
            "version": _V2_VERSION,
            "zone_rows": self.zone_rows,
            "tables": self._tables,
        }
        with open(os.path.join(self.path, _MANIFEST), "w") as handle:
            json.dump(manifest, handle, indent=1)
        return self.path


def _store_column(
    table_name: str,
    column_name: str,
    values: np.ndarray,
    stored: Column,
    zone_map: Optional[ZoneMap],
    store,
    store_shared=None,
) -> Dict[str, object]:
    is_object = values.dtype == object
    # Dictionary value arrays go through the content-addressed sink (when
    # the caller provides one) so byte-identical dictionaries are written
    # once per store; everything else is written unconditionally.
    share = store_shared if store_shared is not None else store

    def persistable(array: np.ndarray) -> np.ndarray:
        if array.dtype == object:
            return _object_to_unicode(table_name, column_name, array)
        return array

    extra: Dict[str, object] = {}
    arrays: Dict[str, str] = {}
    if isinstance(stored, DictionaryColumn):
        encoding = "dict"
        arrays["codes"] = store(np.asarray(stored.codes))
        arrays["values"] = share(persistable(np.asarray(stored.values)))
    elif isinstance(stored, RLEColumn):
        encoding = "rle"
        arrays["run_values"] = store(persistable(np.asarray(stored.run_values)))
        arrays["run_ends"] = store(np.asarray(stored.run_ends))
    elif isinstance(stored, ForColumn):
        encoding = "for"
        arrays["references"] = store(np.asarray(stored.references))
        arrays["offsets"] = store(np.asarray(stored.offsets))
        extra["block_rows"] = stored.block_rows
    else:
        encoding = "plain"
        arrays["values"] = store(persistable(stored.decode()))
    spec: Dict[str, object] = {
        "name": column_name,
        "encoding": encoding,
        "object": is_object,
        "dtype": "object" if is_object else str(values.dtype),
        "rows": len(values),
        "plain_bytes": _plain_bytes(values),
        "stored_bytes": stored.stored_bytes,
        "arrays": arrays,
        "zones": _zone_map_to_json(zone_map),
    }
    spec.update(extra)
    return spec


def _plain_bytes(values: np.ndarray) -> int:
    if values.dtype == object:
        return int(values.nbytes) + sum(
            len(str(value)) for value in values
        )
    return int(values.nbytes)


def _zone_map_to_json(zone_map: Optional[ZoneMap]) -> Optional[Dict[str, object]]:
    if zone_map is None:
        return None
    return {
        "zone_rows": zone_map.zone_rows,
        "n_rows": zone_map.n_rows,
        "mins": [_json_scalar(v) for v in zone_map.mins],
        "maxs": [_json_scalar(v) for v in zone_map.maxs],
        "null_counts": [int(v) for v in zone_map.null_counts],
        "distinct_bounds": [int(v) for v in zone_map.distinct_bounds],
    }


def _json_scalar(value: object) -> object:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def _zone_map_from_json(
    spec: Optional[Dict[str, object]], numeric: bool
) -> Optional[ZoneMap]:
    if spec is None:
        return None
    if numeric:
        mins: np.ndarray = np.asarray(spec["mins"], dtype=np.float64)
        maxs: np.ndarray = np.asarray(spec["maxs"], dtype=np.float64)
    else:
        mins = np.asarray(spec["mins"], dtype=object)
        maxs = np.asarray(spec["maxs"], dtype=object)
    return ZoneMap(
        int(spec["zone_rows"]),  # type: ignore[arg-type]
        int(spec["n_rows"]),  # type: ignore[arg-type]
        mins,
        maxs,
        np.asarray(spec["null_counts"], dtype=np.int64),
        np.asarray(spec["distinct_bounds"], dtype=np.int64),
    )


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_catalog(path: str, *, mmap: bool = True) -> Catalog:
    """Restore a catalog saved by :func:`save_catalog` (either format).

    v2 stores are opened memory-mapped by default (``mmap=False`` forces
    everything resident, for differential tests); zone maps come straight
    from the manifest, so pruning works before any data file is paged in.
    """
    if os.path.isdir(path):
        return _load_v2(path, mmap=mmap)
    if not os.path.exists(path) and os.path.exists(f"{path}.npz"):
        path = f"{path}.npz"
    if os.path.isdir(path):
        return _load_v2(path, mmap=mmap)
    return _load_v1(path)


def _load_v1(path: str) -> Catalog:
    with np.load(path, allow_pickle=False) as archive:
        if _INDEX_KEY not in archive:
            raise EngineError(f"{path!r} is not a saved catalog archive")
        catalog = Catalog()
        for entry in archive[_INDEX_KEY]:
            table_name, _, column_csv = str(entry).partition(_SEP)
            columns: Dict[str, np.ndarray] = {}
            for column_name in column_csv.split(","):
                stored = archive[f"{table_name}{_SEP}{column_name}"]
                if stored.dtype.kind == "U":
                    restored = stored.astype(object)
                    columns[column_name] = restored
                else:
                    columns[column_name] = stored
            catalog.register(Table(table_name, columns))
    return catalog


def _load_v2(path: str, *, mmap: bool) -> Catalog:
    manifest_path = os.path.join(path, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise EngineError(f"{path!r} is not a saved catalog archive")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("format") != "repro-catalog":
        raise EngineError(f"{path!r} is not a saved catalog archive")
    mmap_mode = "r" if mmap else None
    catalog = Catalog()
    # Shared-dictionary cache: value arrays referenced by several columns
    # (content-addressed at save time) are loaded once per store.
    cache: Dict[Tuple[str, bool], np.ndarray] = {}
    zone_rows = int(manifest.get("zone_rows", DEFAULT_ZONE_ROWS))
    for table_spec in manifest["tables"]:
        if table_spec.get("partitions"):
            catalog.register(
                _load_partitioned_table(
                    path, table_spec, mmap_mode, cache, zone_rows
                )
            )
            continue
        columns: Dict[str, Column] = {}
        zone_maps: Dict[str, Optional[ZoneMap]] = {}
        for column_spec in table_spec["columns"]:
            name = column_spec["name"]
            columns[name] = _load_column(path, column_spec, mmap_mode, cache)
            numeric = not column_spec["object"]
            zone_maps[name] = _zone_map_from_json(
                column_spec.get("zones"), numeric
            )
        table = Table(table_spec["name"], columns)
        for name, zone_map in zone_maps.items():
            table.attach_zone_map(name, zone_map)
        catalog.register(table)
    return catalog


def _load_partitioned_table(
    path: str,
    table_spec: Dict[str, object],
    mmap_mode: Optional[str],
    cache: Dict[Tuple[str, bool], np.ndarray],
    zone_rows: int,
) -> Table:
    partitions: List[Dict[str, object]] = table_spec["partitions"]  # type: ignore[assignment]
    if not partitions:
        raise EngineError(
            f"partitioned table {table_spec['name']!r} has no partitions"
        )
    part_rows = [int(part["rows"]) for part in partitions]  # type: ignore[call-overload]
    # Global zone maps are only stitched when every non-final partition is
    # zone-aligned — otherwise per-partition zone boundaries would not map
    # onto global zone indexes and pruning could not be trusted.
    aligned = all(rows % zone_rows == 0 for rows in part_rows[:-1])
    names = [
        str(spec["name"]) for spec in partitions[0]["columns"]  # type: ignore[index]
    ]
    columns: Dict[str, Column] = {}
    zone_maps: Dict[str, Optional[ZoneMap]] = {}
    for position, name in enumerate(names):
        specs = [
            part["columns"][position] for part in partitions  # type: ignore[index]
        ]
        openers = [
            _partition_opener(path, spec, mmap_mode, cache) for spec in specs
        ]
        is_object = bool(specs[0]["object"])
        dtype = (
            np.dtype(object) if is_object
            else np.dtype(str(specs[0]["dtype"]))
        )
        stored_bytes = sum(int(spec["stored_bytes"]) for spec in specs)
        columns[name] = PartitionedColumn(
            openers, part_rows, dtype, stored_bytes
        )
        zone_maps[name] = (
            _concat_zone_maps(specs, not is_object, zone_rows)
            if aligned else None
        )
    table = Table(str(table_spec["name"]), columns)
    for name, zone_map in zone_maps.items():
        table.attach_zone_map(name, zone_map)
    return table


def _partition_opener(
    path: str,
    spec: Dict[str, object],
    mmap_mode: Optional[str],
    cache: Dict[Tuple[str, bool], np.ndarray],
):
    def opener() -> Column:
        return _load_column(path, spec, mmap_mode, cache)

    return opener


def _concat_zone_maps(
    specs: List[Dict[str, object]], numeric: bool, zone_rows: int
) -> Optional[ZoneMap]:
    """Stitch per-partition zone stats into one global column zone map."""
    maps: List[ZoneMap] = []
    for spec in specs:
        zone_map = _zone_map_from_json(spec.get("zones"), numeric)
        if zone_map is None or zone_map.zone_rows != zone_rows:
            return None
        maps.append(zone_map)
    return ZoneMap(
        zone_rows,
        sum(zone_map.n_rows for zone_map in maps),
        np.concatenate([zone_map.mins for zone_map in maps]),
        np.concatenate([zone_map.maxs for zone_map in maps]),
        np.concatenate([zone_map.null_counts for zone_map in maps]),
        np.concatenate([zone_map.distinct_bounds for zone_map in maps]),
    )


def _load_column(
    path: str,
    spec: Dict[str, object],
    mmap_mode: Optional[str],
    cache: Optional[Dict[Tuple[str, bool], np.ndarray]] = None,
) -> Column:
    arrays: Dict[str, str] = spec["arrays"]  # type: ignore[assignment]
    is_object = bool(spec["object"])
    dtype = np.dtype(object) if is_object else np.dtype(str(spec["dtype"]))

    def load(role: str) -> np.ndarray:
        return np.load(os.path.join(path, arrays[role]), mmap_mode=mmap_mode)

    encoding = spec["encoding"]
    if encoding == "dict":
        # Dictionaries are tiny by construction — restore values eagerly
        # (and to object dtype for string columns) while codes stay mapped.
        # Shared dictionaries (several columns referencing one value file)
        # come out of the per-store cache as one array.
        cache_key = (arrays["values"], is_object)
        values = None if cache is None else cache.get(cache_key)
        if values is None:
            values = np.asarray(np.load(os.path.join(path, arrays["values"])))
            if is_object:
                values = values.astype(object)
            if cache is not None:
                cache[cache_key] = values
        return DictionaryColumn(load("codes"), values, dtype=dtype)
    if encoding == "for":
        # References are one int64 per block — restore them eagerly while
        # the (much larger) per-row offsets stay mapped.
        references = np.asarray(
            np.load(os.path.join(path, arrays["references"]))
        )
        return ForColumn(
            references, load("offsets"), int(spec["block_rows"]),  # type: ignore[call-overload]
            dtype=dtype,
        )
    if encoding == "rle":
        run_values = np.asarray(np.load(os.path.join(path, arrays["run_values"])))
        if is_object:
            run_values = run_values.astype(object)
        return RLEColumn(run_values, load("run_ends"), dtype=dtype)
    if encoding == "plain":
        return PlainColumn(load("values"), as_object=is_object)
    raise EngineError(f"unknown column encoding {encoding!r}")


# ----------------------------------------------------------------------
# Reports and in-RAM compression helpers
# ----------------------------------------------------------------------
def storage_report(path: str) -> Dict[str, object]:
    """Per-table/per-column storage stats of a v2 store, from the manifest
    alone (no data file is opened)."""
    manifest_path = os.path.join(path, _MANIFEST)
    if not os.path.exists(manifest_path):
        raise EngineError(f"{path!r} is not a v2 catalog store")
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    tables: List[Dict[str, object]] = []
    for table_spec in manifest["tables"]:
        columns = []
        partitions = table_spec.get("partitions") or []
        if partitions:
            # Partitioned tables report each column summed over its pieces.
            names = [spec["name"] for spec in partitions[0]["columns"]]
            for position, name in enumerate(names):
                specs = [part["columns"][position] for part in partitions]
                columns.append(
                    {
                        "column": name,
                        "encoding": "partitioned",
                        "dtype": specs[0]["dtype"],
                        "plain_bytes": sum(s["plain_bytes"] for s in specs),
                        "stored_bytes": sum(s["stored_bytes"] for s in specs),
                        "zones": sum(
                            0 if s.get("zones") is None
                            else len(s["zones"]["mins"])
                            for s in specs
                        ),
                    }
                )
        for spec in table_spec["columns"]:
            zones = spec.get("zones")
            columns.append(
                {
                    "column": spec["name"],
                    "encoding": spec["encoding"],
                    "dtype": spec["dtype"],
                    "plain_bytes": spec["plain_bytes"],
                    "stored_bytes": spec["stored_bytes"],
                    "zones": 0 if zones is None else len(zones["mins"]),
                }
            )
        table_report: Dict[str, object] = {
            "table": table_spec["name"],
            "rows": table_spec["rows"],
            "clustered_by": table_spec.get("clustered_by"),
            "columns": columns,
        }
        if partitions:
            table_report["partitions"] = len(partitions)
        tables.append(table_report)
    return {
        "path": path,
        "version": manifest["version"],
        "zone_rows": manifest["zone_rows"],
        "tables": tables,
    }


def compress_table(
    table: Table,
    *,
    zone_rows: int = DEFAULT_ZONE_ROWS,
    cluster_by: Optional[str] = None,
) -> Table:
    """An in-RAM compressed copy of a table (encodings + zone maps).

    The differential tests' workhorse: same rows (optionally re-clustered),
    dictionary/RLE storage, zone maps attached — no disk involved.
    """
    order: Optional[np.ndarray] = None
    if cluster_by is not None:
        order = np.argsort(table.column(cluster_by), kind="stable")
    columns: Dict[str, Column] = {}
    zone_maps: Dict[str, Optional[ZoneMap]] = {}
    for name in table.column_names:
        values = table.column(name)
        if order is not None:
            values = values[order]
        columns[name] = encode_array(values)
        zone_maps[name] = build_zone_map(values, zone_rows)
    compressed = Table(table.name, columns)
    for name, zone_map in zone_maps.items():
        compressed.attach_zone_map(name, zone_map)
    return compressed


def compress_catalog(
    catalog: Catalog,
    *,
    zone_rows: int = DEFAULT_ZONE_ROWS,
    cluster: Optional[Dict[str, str]] = None,
) -> Catalog:
    """An in-RAM compressed copy of every table of a catalog."""
    cluster = cluster or {}
    compressed = Catalog()
    for table in catalog:
        compressed.register(
            compress_table(
                table, zone_rows=zone_rows, cluster_by=cluster.get(table.name)
            )
        )
    return compressed


def _column_order(catalog: Catalog, table_name: str) -> str:
    return ",".join(catalog.table(table_name).column_names)


def _object_to_unicode(table: str, column: str, values: np.ndarray) -> np.ndarray:
    for value in values:
        if value is not None and not isinstance(value, str):
            raise EngineError(
                f"cannot persist non-string object value {value!r} in "
                f"{table}.{column}"
            )
    return np.asarray(
        ["" if value is None else value for value in values], dtype=np.str_
    )
