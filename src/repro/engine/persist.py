"""Catalog persistence: save/load columnar tables as ``.npz`` archives.

Generated star schemas (especially the larger SSB ladder rungs) are
expensive to rebuild; :func:`save_catalog` snapshots every table of a
catalog into one compressed NumPy archive and :func:`load_catalog` restores
it.  Object (string) columns round-trip through unicode arrays; numeric
columns keep their dtypes.

The archive layout is flat: ``{table}\x1f{column}`` keys (the unit
separator cannot appear in identifiers), plus a ``__tables__`` index entry.
"""

from __future__ import annotations

import os
from typing import Dict, List

import numpy as np

from ..core.errors import EngineError
from .catalog import Catalog
from .table import Table

_SEP = "\x1f"
_INDEX_KEY = "__tables__"


def save_catalog(catalog: Catalog, path: str) -> str:
    """Write every table of a catalog to a compressed ``.npz`` archive.

    Returns the path written.  Object columns are stored as unicode arrays
    (all members must be strings or ``None``); numeric columns are stored
    as-is.
    """
    payload: Dict[str, np.ndarray] = {}
    table_names: List[str] = []
    for table in catalog:
        table_names.append(table.name)
        for column_name, column in table.columns.items():
            key = f"{table.name}{_SEP}{column_name}"
            if column.dtype == object:
                payload[key] = _object_to_unicode(table.name, column_name, column)
            else:
                payload[key] = column
    payload[_INDEX_KEY] = np.array(
        [f"{name}{_SEP}{_column_order(catalog, name)}" for name in table_names],
        dtype=np.str_,
    )
    np.savez_compressed(path, **payload)
    return path if path.endswith(".npz") else f"{path}.npz"


def load_catalog(path: str) -> Catalog:
    """Restore a catalog saved by :func:`save_catalog`."""
    if not os.path.exists(path) and os.path.exists(f"{path}.npz"):
        path = f"{path}.npz"
    with np.load(path, allow_pickle=False) as archive:
        if _INDEX_KEY not in archive:
            raise EngineError(f"{path!r} is not a saved catalog archive")
        catalog = Catalog()
        for entry in archive[_INDEX_KEY]:
            table_name, _, column_csv = str(entry).partition(_SEP)
            columns: Dict[str, np.ndarray] = {}
            for column_name in column_csv.split(","):
                stored = archive[f"{table_name}{_SEP}{column_name}"]
                if stored.dtype.kind == "U":
                    restored = stored.astype(object)
                    columns[column_name] = restored
                else:
                    columns[column_name] = stored
            catalog.register(Table(table_name, columns))
    return catalog


def _column_order(catalog: Catalog, table_name: str) -> str:
    return ",".join(catalog.table(table_name).column_names)


def _object_to_unicode(table: str, column: str, values: np.ndarray) -> np.ndarray:
    for value in values:
        if value is not None and not isinstance(value, str):
            raise EngineError(
                f"cannot persist non-string object value {value!r} in "
                f"{table}.{column}"
            )
    return np.asarray(
        ["" if value is None else value for value in values], dtype=np.str_
    )
