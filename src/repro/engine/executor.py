"""Vectorised execution of pushed queries (the engine's query processor).

This is the substitute for the paper's DBMS: it evaluates the three query
shapes of :mod:`repro.engine.query` with set-oriented NumPy kernels —
semi-join filtering through dimension tables, factorised multi-column
group-by, hash drill-across, and scatter-based pivot.  Its performance
profile mirrors a real DBMS closely enough for the NP/JOP/POP comparison to
be meaningful: pushing a join or pivot here is significantly cheaper than
performing it cell-at-a-time on cube objects.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import EngineError
from ..obs.metrics import METRICS, MetricsRegistry
from ..obs.tracer import active as _active_tracer
from ..parallel.config import ParallelConfig
from ..parallel.merge import decode_keys as _decode_keys
from ..parallel.merge import merge_morsels as _merge_morsels
from ..parallel.morsel import (
    AggSpec,
    DimPredicate,
    FactPredicate,
    JoinSpec,
    KeySpec,
    MorselTask,
    morsel_ranges,
    run_morsel,
)
from .catalog import Catalog
from .columns import (
    Ranges,
    ZonePruner,
    plan_zone_pruning as _plan_zone_pruning,
    ranges_length as _ranges_length,
)
from .kernels import combine_codes as _combine_codes
from .kernels import encode_column as _encode_column
from .kernels import sums_exactly as _sums_exactly
from .spill import (
    SpillAggregator,
    choose_partitions as _choose_partitions,
    env_memory_budget as _env_memory_budget,
    grouping_state_bytes as _grouping_state_bytes,
)
from .query import (
    AggregateQuery,
    ColumnPredicate,
    DrillAcrossQuery,
    FACT,
    PivotQuery,
)
from .table import Table

_MAX_COMBINED_KEY = 2**62
"""Bail out of key folding when the cardinality product nears int64."""


class ResultSet:
    """A query result: ordered named columns of equal length."""

    def __init__(self, columns: "Dict[str, np.ndarray]"):
        self.columns = columns
        lengths = {len(col) for col in columns.values()}
        if len(lengths) > 1:
            raise EngineError(f"ragged result columns: {sorted(lengths)}")
        self._n = lengths.pop() if lengths else 0

    def __len__(self) -> int:
        return self._n

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise EngineError(
                f"result has no column {name!r} (columns: {list(self.columns)})"
            ) from None

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultSet(rows={self._n}, columns={list(self.columns)})"


class EngineExecutor:
    """Evaluates pushed queries against a catalog."""

    def __init__(self, catalog: Catalog, metrics: Optional[MetricsRegistry] = None):
        self.catalog = catalog
        # Fact passes actually executed (cold aggregates, fused scans, and
        # per-member fused fallbacks).  Cache hits and derived results do
        # not count; the batch sharing report reads this.
        self.scan_count = 0
        # Counter registry ("engine.scans", "engine.rows_scanned", ...);
        # engine-owned executors share their engine's registry, standalone
        # ones report straight into the process-wide aggregate.
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(parent=METRICS)
        )
        # Morsel-driven parallel execution, off unless a session enables
        # it (AssessSession(parallelism=N) / REPRO_PARALLELISM).  When
        # set, eligible fact passes are partitioned, dispatched to the
        # config's worker pool, and merged deterministically — results
        # stay bit-identical to serial or the query falls back to the
        # serial path (see repro.parallel and docs/performance.md).
        self.parallel: Optional[ParallelConfig] = None
        # Zone-map morsel pruning (skipping fact zones whose min/max
        # statistics prove no row can pass the predicates).  Only active
        # on tables that carry zone maps (v2 column stores, or explicit
        # Table.ensure_zone_maps); REPRO_NO_PRUNE=1 disables it for
        # ablation benchmarks and differential tests.
        self.zone_pruning = not os.environ.get("REPRO_NO_PRUNE")
        # Bounded-memory execution: when a byte budget is set
        # (REPRO_MEMORY_BYTES / REPRO_SPILL_BYTES env, or
        # AssessSession(memory_budget=)), fact passes whose worst-case
        # grouping state exceeds it run through the spill-to-disk
        # partitioned aggregation tier (engine/spill.py) instead of the
        # in-RAM kernels — bit-identical under the same exactness gate
        # that guards the parallel merge.
        self.memory_budget: Optional[int] = _env_memory_budget()

    def _count_scan(self, fact: Table, rows: Optional[int] = None) -> None:
        """One executed fact pass: bump the scan counters together.

        ``rows`` is the post-pruning row count actually scanned (defaults
        to the whole fact table).
        """
        self.scan_count += 1
        self.metrics.inc("engine.scans")
        self.metrics.inc("engine.rows_scanned", len(fact) if rows is None else rows)

    def _zone_pruner(
        self,
        fact: Table,
        fact_name: str,
        predicates: Sequence[ColumnPredicate],
        joins,
    ) -> Optional[ZonePruner]:
        """Plan zone-map pruning for one scan; ``None`` when inapplicable.

        Emits a ``storage.prune`` span and the ``engine.storage.*``
        counters.  Soundness: a pruned zone provably holds no row passing
        ``predicates``, so dropping it removes only mask-rejected rows —
        the surviving masked row sequence (and every float summation
        order) is unchanged and results stay bit-identical.
        """
        if not self.zone_pruning or not fact.has_zone_maps:
            return None
        tracer = _active_tracer()
        if not tracer.enabled:
            pruner = _plan_zone_pruning(
                self.catalog, fact, fact_name, predicates, joins
            )
            if pruner is not None:
                self._count_pruning(pruner)
            return pruner
        with tracer.span("storage.prune", fact=fact_name) as span:
            pruner = _plan_zone_pruning(
                self.catalog, fact, fact_name, predicates, joins
            )
            if pruner is None:
                span.set(zones=0, zones_pruned=0, rows_pruned=0)
                return None
            self._count_pruning(pruner)
            span.set(
                zones=pruner.zones_checked,
                zones_pruned=pruner.zones_pruned,
                rows_pruned=pruner.rows_pruned,
            )
            return pruner

    def _count_pruning(self, pruner: ZonePruner) -> None:
        self.metrics.inc("engine.storage.prunes")
        self.metrics.inc("engine.storage.zones_checked", pruner.zones_checked)
        self.metrics.inc("engine.storage.zones_pruned", pruner.zones_pruned)
        self.metrics.inc("engine.storage.rows_pruned", pruner.rows_pruned)
        # zones_checked forces the survival vector, so planning-time and
        # apply-time misalignment drops are both counted by now.
        if pruner.misaligned:
            self.metrics.inc("engine.storage.zone_misaligned", pruner.misaligned)

    def _pruned_ranges(
        self,
        fact: Table,
        fact_name: str,
        predicates: Sequence[ColumnPredicate],
        joins,
    ) -> Ranges:
        """Surviving row ranges of a serial scan (``None`` = scan all)."""
        pruner = self._zone_pruner(fact, fact_name, predicates, joins)
        if pruner is None:
            return None
        return pruner.surviving_row_ranges()

    # ------------------------------------------------------------------
    # Aggregate (get)
    # ------------------------------------------------------------------
    def execute(self, query) -> ResultSet:
        """Dispatch on the query shape."""
        if isinstance(query, AggregateQuery):
            return self.execute_aggregate(query)
        if isinstance(query, DrillAcrossQuery):
            return self.execute_drill_across(query)
        if isinstance(query, PivotQuery):
            return self.execute_pivot(query)
        raise EngineError(f"cannot execute query of type {type(query).__name__}")

    def execute_aggregate(self, query: AggregateQuery) -> ResultSet:
        """Star join + filter + group-by + aggregate.

        Pipeline: (1) resolve each needed dimension's FK column to row
        positions; (2) fold predicates into one fact-row mask (dimension
        predicates are evaluated once per dimension row, then propagated
        through the FK — a semi-join); (3) gather grouping columns; (4)
        factorise them into dense group ids; (5) aggregate with bincount /
        ufunc.at kernels.
        """
        fact = self.catalog.table(query.fact)
        if self._spill_admits(fact, len(query.aggregates)):
            result = self._spill_aggregate(fact, query)
            if result is not None:
                return result
        if self.parallel is not None and self.parallel.eligible(len(fact)):
            result = self._parallel_aggregate(fact, query)
            if result is not None:
                return result
        ranges = self._pruned_ranges(fact, query.fact, query.where, query.joins)
        n_scan = _ranges_length(ranges, len(fact))
        tracer = _active_tracer()
        if not tracer.enabled:
            positions = self._dimension_positions(fact, query, ranges)
            mask = self._selection_mask(fact, query, positions, ranges)
            self._count_scan(fact, n_scan)
            return self._grouped_aggregate(fact, query, positions, mask, ranges)
        with tracer.span("engine.scan", fact=query.fact) as span:
            with tracer.span("engine.semijoin") as semijoin:
                positions = self._dimension_positions(fact, query, ranges)
                mask = self._selection_mask(fact, query, positions, ranges)
                semijoin.set(
                    rows_in=n_scan,
                    rows_matched=n_scan if mask is None else int(mask.sum()),
                    predicates=len(query.where),
                )
            self._count_scan(fact, n_scan)
            with tracer.span("engine.groupby") as groupby:
                result = self._grouped_aggregate(
                    fact, query, positions, mask, ranges
                )
                groupby.set(rows_out=len(result), keys=len(query.group_by))
            span.set(
                rows_in=n_scan,
                rows_out=len(result),
                cells_out=len(result) * max(len(result.column_names), 1),
            )
            return result

    def _grouped_aggregate(
        self,
        fact: Table,
        query: AggregateQuery,
        positions: "Dict[str, np.ndarray]",
        mask: Optional[np.ndarray],
        ranges: Ranges = None,
    ) -> ResultSet:
        """Group and aggregate the masked fact rows (steps 3–5).

        Split out of :meth:`execute_aggregate` so the fused-scan fallback
        can reuse the exact same grouping code with a shared semi-join
        mask — bit-identity between the two paths is then structural.

        ``ranges`` is the zone-pruned row selection the positions and mask
        were computed over (``None`` = whole table); fact-resident columns
        are gathered through it, so pruned rows are never decoded.
        """
        n_rows = (
            _ranges_length(ranges, len(fact)) if mask is None else int(mask.sum())
        )

        # Integer key codes: dimension-sourced grouping columns use the FK
        # row positions directly (already dense integers), fact-resident
        # columns are dictionary-encoded.  Avoiding factorization of member
        # strings is what keeps large group-bys cheap.
        code_columns: List[Tuple[np.ndarray, int]] = []
        emitters = []
        for gb in query.group_by:
            if gb.table in (FACT, fact.name):
                codes, cardinality = fact.dictionary_gather(gb.column, ranges)
                values = fact.gather(gb.column, ranges)
                if mask is not None:
                    codes = codes[mask]
                    values = values[mask]
                code_columns.append((codes, cardinality))
                emitters.append(lambda first, values=values: values[first])
            else:
                dimension = self.catalog.table(gb.table)
                pos = positions[gb.table]
                if mask is not None:
                    pos = pos[mask]
                # Encode members once over the (small) dimension table, then
                # gather the codes through the FK positions: grouping on a
                # coarse attribute (e.g. region) collapses correctly while
                # the per-fact-row work stays integer-only.
                dim_codes, cardinality = dimension.dictionary(gb.column)
                code_columns.append((dim_codes[pos], cardinality))
                member_column = dimension.column(gb.column)
                emitters.append(
                    lambda first, pos=pos, col=member_column: col[pos[first]]
                )

        group_ids, group_count, first_rows = _combine_codes(code_columns, n_rows)

        columns: Dict[str, np.ndarray] = {}
        for gb, emit in zip(query.group_by, emitters):
            columns[gb.alias] = emit(first_rows)
        for agg in query.aggregates:
            measure = fact.gather(agg.column, ranges)
            if mask is not None:
                measure = measure[mask]
            columns[agg.alias] = _aggregate(group_ids, group_count, measure, agg.op)
        return ResultSet(columns)

    # ------------------------------------------------------------------
    # Fused multi-group-by scan
    # ------------------------------------------------------------------
    def execute_fused(
        self,
        queries: Sequence[AggregateQuery],
        scan_where: Sequence[ColumnPredicate],
        residuals: Sequence[Sequence[ColumnPredicate]],
    ) -> "Tuple[List[ResultSet], List[bool]]":
        """Answer several compatible aggregate queries from one fact pass.

        All queries must share the same fact table and joins, and each
        query's predicate set must equal ``scan_where ∧ residuals[i]``
        (the caller — the batch fusion planner — guarantees this, using
        predicate subsumption so the scan is never broader than what some
        member itself requires).

        One semi-join mask and one set of gathered dictionary codes build
        the *finest shared group-by* (the union of every member's grouping
        columns plus residual predicate columns); each member is then
        derived from the finest partial aggregates via the distributive
        re-aggregation rules, with residual predicates evaluated on the
        (tiny) finest-group coordinates.  ``sum`` members are only derived
        when the masked measure passes the same float-exactness gate the
        result cache uses; anything else (``avg``, fractional sums) falls
        back to a direct grouping pass that reuses the shared mask — never
        faster than fused, never different by a bit.

        Returns the per-query results (input order) and a parallel list of
        flags: ``True`` when the result was derived from the fused pass,
        ``False`` when it fell back to a direct grouping pass.
        """
        if queries:
            fact = self.catalog.table(queries[0].fact)
            slots = sum(len(query.aggregates) for query in queries)
            if self._spill_admits(fact, slots):
                fused = self._spill_fused(fact, queries, scan_where, residuals)
                if fused is not None:
                    return fused
            if self.parallel is not None and self.parallel.eligible(len(fact)):
                fused = self._parallel_fused(fact, queries, scan_where, residuals)
                if fused is not None:
                    return fused
        tracer = _active_tracer()
        if not tracer.enabled:
            return self._execute_fused(queries, scan_where, residuals)
        with tracer.span("engine.fused-scan", members=len(queries)) as span:
            results, derived_flags = self._execute_fused(
                queries, scan_where, residuals
            )
            derived = int(sum(derived_flags))
            span.set(
                derived=derived,
                fallbacks=len(derived_flags) - derived,
                rows_out=int(sum(len(result) for result in results)),
            )
            return results, derived_flags

    def _execute_fused(
        self,
        queries: Sequence[AggregateQuery],
        scan_where: Sequence[ColumnPredicate],
        residuals: Sequence[Sequence[ColumnPredicate]],
    ) -> "Tuple[List[ResultSet], List[bool]]":
        if not queries:
            return [], []
        fact = self.catalog.table(queries[0].fact)
        fact_name = queries[0].fact

        # Zone pruning uses the shared scan predicates only: every member
        # mask is ``base ∧ residual``, so a zone no row of which passes the
        # base predicates contributes to no member (residuals could prune
        # further, but per-member, which would break the shared gathers).
        ranges = self._pruned_ranges(
            fact, fact_name, scan_where, queries[0].joins
        )
        n_scan = _ranges_length(ranges, len(fact))

        # Union dimension positions: one FK resolution serves every member.
        referenced = set()
        for query in queries:
            referenced |= {gb.table for gb in query.group_by}
            referenced |= {cp.table for cp in query.where}
        positions: Dict[str, np.ndarray] = {}
        for join in queries[0].joins:
            if join.table not in referenced:
                continue
            dimension = self.catalog.table(join.table)
            index = dimension.key_index(join.dim_key)
            positions[join.table] = index.positions_of(
                fact.gather(join.fact_fk, ranges)
            )

        self._count_scan(fact, n_scan)
        self.metrics.inc("engine.fused_scans")
        base_mask = self._predicate_mask(
            fact, fact_name, scan_where, positions, ranges
        )
        n_rows = n_scan if base_mask is None else int(base_mask.sum())

        def column_key(table: str) -> str:
            return FACT if table in (FACT, fact_name) else table

        # The finest shared key: every member grouping column plus every
        # residual predicate column, ordered by first appearance.
        finest: List[Tuple[str, str]] = []
        seen = set()
        for query, residual in zip(queries, residuals):
            for gb in query.group_by:
                key = (column_key(gb.table), gb.column)
                if key not in seen:
                    seen.add(key)
                    finest.append(key)
            for cp in residual:
                key = (column_key(cp.table), cp.column)
                if key not in seen:
                    seen.add(key)
                    finest.append(key)

        codes_of: Dict[Tuple[str, str], Tuple[np.ndarray, int]] = {}
        value_emitters: Dict[Tuple[str, str], object] = {}
        key_space = 1
        for table, column in finest:
            if table == FACT:
                codes, cardinality = fact.dictionary_gather(column, ranges)
                values = fact.gather(column, ranges)
                if base_mask is not None:
                    codes = codes[base_mask]
                    values = values[base_mask]
                emit = (lambda first, values=values: values[first])
            else:
                dimension = self.catalog.table(table)
                pos = positions[table]
                if base_mask is not None:
                    pos = pos[base_mask]
                dim_codes, cardinality = dimension.dictionary(column)
                codes = dim_codes[pos]
                member_column = dimension.column(column)
                emit = (lambda first, pos=pos, col=member_column: col[pos[first]])
            codes_of[(table, column)] = (codes, cardinality)
            value_emitters[(table, column)] = emit
            key_space *= max(cardinality, 1)
        if key_space >= _MAX_COMBINED_KEY:
            # The folded finest key would overflow int64; run every member
            # as its own direct pass (still sharing mask and positions).
            return self._fused_fallback_all(
                fact, queries, residuals, positions, base_mask, ranges
            )

        finest_ids, finest_count, finest_first = _combine_codes(
            [codes_of[key] for key in finest], n_rows
        )
        group_codes = {
            key: (codes_of[key][0][finest_first], codes_of[key][1]) for key in finest
        }
        group_values = {
            key: value_emitters[key](finest_first) for key in finest  # type: ignore[operator]
        }

        # Finest partial aggregates, computed once per distinct (column, op).
        partials: Dict[Tuple[str, str], np.ndarray] = {}
        sum_exact: Dict[str, bool] = {}
        count_state: Dict[str, np.ndarray] = {}

        def masked_measure(column: str) -> np.ndarray:
            # Pruned rows are all base-mask rejects, so gathering through
            # the surviving ranges yields the identical masked sequence the
            # unpruned scan would — exactness gating included.
            measure = fact.gather(column, ranges)
            return measure if base_mask is None else measure[base_mask]

        def partial_of(column: str, op: str) -> np.ndarray:
            pkey = (column, op)
            if pkey not in partials:
                partials[pkey] = _aggregate(
                    finest_ids, finest_count, masked_measure(column), op
                )
            return partials[pkey]

        def count_of() -> np.ndarray:
            if "count" not in count_state:
                count_state["count"] = _aggregate(
                    finest_ids, finest_count, np.empty(0), "count"
                )
            return count_state["count"]

        results: List[ResultSet] = []
        derived_flags: List[bool] = []
        for query, residual in zip(queries, residuals):
            derivable = True
            for agg in query.aggregates:
                if agg.op == "avg":
                    derivable = False
                    break
                if agg.op == "sum":
                    if agg.column not in sum_exact:
                        sum_exact[agg.column] = _sums_exactly(
                            masked_measure(agg.column)
                        )
                    if not sum_exact[agg.column]:
                        derivable = False
                        break
            if not derivable:
                results.append(
                    self._fused_member_direct(
                        fact, query, residual, positions, base_mask, ranges
                    )
                )
                derived_flags.append(False)
                self.metrics.inc("engine.fused_fallbacks")
                continue

            results.append(
                self._derive_fused_member(
                    query, residual, column_key, group_codes, group_values,
                    finest_count, partial_of, count_of,
                )
            )
            derived_flags.append(True)
            self.metrics.inc("engine.fused_derived")
        return results, derived_flags

    def _derive_fused_member(
        self,
        query: AggregateQuery,
        residual: Sequence[ColumnPredicate],
        column_key,
        group_codes: "Dict[Tuple[str, str], Tuple[np.ndarray, int]]",
        group_values: "Dict[Tuple[str, str], np.ndarray]",
        finest_count: int,
        partial_of,
        count_of,
    ) -> ResultSet:
        """Derive one member's result from finest-granularity partials.

        Shared by the serial fused path (``partial_of`` computes from the
        finest grouping of this scan, lazily) and the parallel fused path
        (``partial_of`` reads morsel-merged partials): the derivation
        arithmetic is identical by construction, which is what keeps the
        two bit-identical.  Residual predicates are evaluated on
        finest-group coordinates (residual columns are part of the finest
        key, so they are constant within each finest group).
        """
        rmask: Optional[np.ndarray] = None
        for cp in residual:
            key = (column_key(cp.table), cp.column)
            part = cp.predicate.mask(group_values[key])
            rmask = part if rmask is None else (rmask & part)

        if rmask is None:
            group_rows = finest_count
            member_codes = [
                group_codes[(column_key(gb.table), gb.column)]
                for gb in query.group_by
            ]
        else:
            group_rows = int(rmask.sum())
            member_codes = [
                (group_codes[(column_key(gb.table), gb.column)][0][rmask],
                 group_codes[(column_key(gb.table), gb.column)][1])
                for gb in query.group_by
            ]
        ids, count, first = _combine_codes(member_codes, group_rows)

        columns: Dict[str, np.ndarray] = {}
        for gb in query.group_by:
            values = group_values[(column_key(gb.table), gb.column)]
            if rmask is not None:
                values = values[rmask]
            columns[gb.alias] = values[first]
        for agg in query.aggregates:
            if agg.op == "count":
                values = count_of()
                reagg = "sum"
            else:
                values = partial_of(agg.column, agg.op)
                reagg = "sum" if agg.op == "sum" else agg.op
            if rmask is not None:
                values = values[rmask]
            columns[agg.alias] = _aggregate(ids, count, values, reagg)
        return ResultSet(columns)

    def _fused_member_direct(
        self,
        fact: Table,
        query: AggregateQuery,
        residual: Sequence[ColumnPredicate],
        positions: Dict[str, np.ndarray],
        base_mask: Optional[np.ndarray],
        ranges: Ranges = None,
    ) -> ResultSet:
        """Direct grouping pass for one fused member, reusing the scan mask.

        The member mask is ``base ∧ residual`` — the same predicate parts a
        standalone execution would AND together, so the result is
        bit-identical to :meth:`execute_aggregate` on the member's query.
        """
        self._count_scan(fact, _ranges_length(ranges, len(fact)))
        residual_mask = self._predicate_mask(
            fact, query.fact, residual, positions, ranges
        )
        if base_mask is None:
            mask = residual_mask
        elif residual_mask is None:
            mask = base_mask
        else:
            mask = base_mask & residual_mask
        return self._grouped_aggregate(fact, query, positions, mask, ranges)

    def _fused_fallback_all(
        self,
        fact: Table,
        queries: Sequence[AggregateQuery],
        residuals: Sequence[Sequence[ColumnPredicate]],
        positions: Dict[str, np.ndarray],
        base_mask: Optional[np.ndarray],
        ranges: Ranges = None,
    ) -> "Tuple[List[ResultSet], List[bool]]":
        results = [
            self._fused_member_direct(
                fact, query, residual, positions, base_mask, ranges
            )
            for query, residual in zip(queries, residuals)
        ]
        self.metrics.inc("engine.fused_fallbacks", len(queries))
        return results, [False] * len(queries)

    # ------------------------------------------------------------------
    # Morsel-driven parallel execution
    # ------------------------------------------------------------------
    def _lower_aggregates(self, fact: Table, aggregates):
        """Lower logical aggregates onto physical partial specs.

        Returns ``(specs, plan)`` where ``specs`` is the deduplicated
        list of ``(op, column)`` partials every morsel computes (op in
        sum/count/min/max) and ``plan`` maps each logical aggregate to
        its merged slots: ``("direct", slot)`` or
        ``("avg", sum_slot, count_slot)`` — avg is divided after the
        merge, exactly the totals/counts division of the serial kernel.

        Returns ``None`` when any measure fails the float-exactness gate
        (fractional sums do not re-associate bit-identically): the caller
        then stays on the serial path.
        """
        specs: List[Tuple[str, Optional[str]]] = []

        def slot(op: str, column: Optional[str]) -> int:
            key = (op, column)
            if key not in specs:
                specs.append(key)
            return specs.index(key)

        plan: List[Tuple] = []
        for agg in aggregates:
            if agg.op not in ("sum", "count", "min", "max", "avg"):
                return None
            if agg.op in ("sum", "avg") and not fact.sums_exactly(agg.column):
                return None
            if agg.op == "count":
                plan.append(("direct", slot("count", None)))
            elif agg.op == "avg":
                plan.append(("avg", slot("sum", agg.column), slot("count", None)))
            else:
                plan.append(("direct", slot(agg.op, agg.column)))
        return specs, plan

    def _parallel_key_info(
        self, fact: Table, fact_name: str, keys: "Sequence[Tuple[str, str]]"
    ):
        """Global dictionary info for each ``(table, column)`` key column.

        Each entry is ``(kind, alias, codes, cardinality, uniques)``:
        fact-resident columns carry their full-column dictionary codes
        (sliced per morsel by the driver), dimension columns carry the
        whole (small) dimension's codes (gathered through FK positions by
        the worker).  ``uniques`` decodes merged group keys back into
        coordinate values.  Also returns the folded key space, so callers
        can bail to serial before an int64 overflow.
        """
        infos = []
        key_space = 1
        for table, column in keys:
            if table in (FACT, fact_name):
                codes, cardinality = fact.dictionary(column)
                uniques = fact.dictionary_values(column)
                infos.append(("fact", None, codes, cardinality, uniques))
            else:
                dimension = self.catalog.table(table)
                codes, cardinality = dimension.dictionary(column)
                uniques = dimension.dictionary_values(column)
                infos.append(("dim", table, codes, cardinality, uniques))
            key_space *= max(cardinality, 1)
        return infos, key_space

    def _morsel_task_source(
        self,
        fact: Table,
        fact_name: str,
        predicates: Sequence[ColumnPredicate],
        joins_needed,
        key_infos,
        agg_specs: "Sequence[Tuple[str, Optional[str]]]",
        morsel_rows: int,
        pruner: Optional[ZonePruner] = None,
    ):
        """Shared per-morsel task construction (parallel and spill paths).

        Dimension-side work (key indexes, dimension predicate masks,
        dimension dictionaries) is computed once here and shared by every
        task; per-fact-row arrays are windowed per morsel (so compressed
        or memory-mapped columns decode one morsel at a time).  With a
        ``pruner``, morsels no zone of which can satisfy the predicates
        are never enqueued at all — their rows would contribute zero
        groups, so the merged result is unchanged; skipped tasks keep
        their original index, preserving the deterministic merge order.

        Returns ``(surviving, build)``: the surviving ``(index, lo, hi)``
        morsel ranges and a builder producing the :class:`MorselTask` for
        one of them on demand — the spill path builds (and drops) tasks
        one at a time, so only one morsel's decoded windows are ever live.
        """
        fact_pred_columns = []
        dim_preds = []
        for cp in predicates:
            if cp.table in (FACT, fact_name):
                fact_pred_columns.append((cp.predicate, cp.column))
            else:
                dimension = self.catalog.table(cp.table)
                dim_mask = cp.predicate.mask(dimension.column(cp.column))
                dim_preds.append(DimPredicate(cp.table, dim_mask))
        dim_predicates = tuple(dim_preds)
        join_sources = [
            (
                join.table,
                self.catalog.table(join.table).key_index(join.dim_key),
                join.fact_fk,
            )
            for join in joins_needed
        ]
        measure_columns = [
            column for _, column in agg_specs if column is not None
        ]

        surviving: List[Tuple[int, int, int]] = []
        pruned_morsels = 0
        for index, (lo, hi) in enumerate(
            morsel_ranges(len(fact), morsel_rows)
        ):
            if pruner is not None and not pruner.range_may_match(lo, hi):
                pruned_morsels += 1
                continue
            surviving.append((index, lo, hi))
        if pruned_morsels:
            self.metrics.inc("engine.storage.morsels_pruned", pruned_morsels)

        def build(index: int, lo: int, hi: int) -> MorselTask:
            joins = tuple(
                JoinSpec(alias, key_index, fact.window(fk_column, lo, hi))
                for alias, key_index, fk_column in join_sources
            )
            fps = tuple(
                FactPredicate(predicate, fact.window(column, lo, hi))
                for predicate, column in fact_pred_columns
            )
            key_specs = tuple(
                KeySpec(
                    kind,
                    alias,
                    codes[lo:hi] if kind == "fact" else codes,
                    cardinality,
                )
                for kind, alias, codes, cardinality, _ in key_infos
            )
            windows = {
                column: fact.window(column, lo, hi)
                for column in measure_columns
            }
            aggs = tuple(
                AggSpec(op, None if column is None else windows[column])
                for op, column in agg_specs
            )
            return MorselTask(index, lo, hi, joins, fps, dim_predicates,
                              key_specs, aggs)

        return surviving, build

    def _parallel_tasks(
        self,
        fact: Table,
        fact_name: str,
        predicates: Sequence[ColumnPredicate],
        joins_needed,
        key_infos,
        agg_specs: "Sequence[Tuple[str, Optional[str]]]",
        pruner: Optional[ZonePruner] = None,
    ) -> List[MorselTask]:
        """Slice the fact pass into per-morsel tasks (all built eagerly)."""
        assert self.parallel is not None
        surviving, build = self._morsel_task_source(
            fact, fact_name, predicates, joins_needed, key_infos, agg_specs,
            self.parallel.morsel_rows, pruner,
        )
        return [build(index, lo, hi) for index, lo, hi in surviving]

    def _dispatch_morsels(self, tasks: List[MorselTask], tracer):
        """Run the tasks on the pool; emit per-morsel trace events."""
        assert self.parallel is not None
        results = self.parallel.map_ordered(run_morsel, tasks)
        self.metrics.inc("engine.parallel.morsels", len(tasks))
        if tracer.enabled:
            for result in results:
                event = tracer.event(
                    "parallel.morsel",
                    index=result.index,
                    rows_in=result.rows_in,
                    rows_matched=result.rows_matched,
                    groups=len(result.keys),
                )
                # Workers cannot emit spans (the tracer is driver-local),
                # so the driver back-fills the measured worker time.
                event.duration = result.seconds
        return results

    def _parallel_aggregate(
        self, fact: Table, query: AggregateQuery
    ) -> Optional[ResultSet]:
        """Morsel-parallel execute_aggregate; None → caller runs serial.

        Ineligible queries (gate-failing measures, key spaces that would
        overflow the int64 fold) return ``None`` and are counted under
        ``engine.parallel.fallbacks``.
        """
        lowered = self._lower_aggregates(fact, query.aggregates)
        if lowered is None:
            self.metrics.inc("engine.parallel.fallbacks")
            return None
        agg_specs, agg_plan = lowered
        key_infos, key_space = self._parallel_key_info(
            fact, query.fact, [(gb.table, gb.column) for gb in query.group_by]
        )
        if key_space >= _MAX_COMBINED_KEY:
            self.metrics.inc("engine.parallel.fallbacks")
            return None
        referenced = {gb.table for gb in query.group_by} | {
            cp.table for cp in query.where
        }
        joins_needed = [j for j in query.joins if j.table in referenced]
        pruner = self._zone_pruner(fact, query.fact, query.where, query.joins)
        tasks = self._parallel_tasks(
            fact, query.fact, query.where, joins_needed, key_infos, agg_specs,
            pruner,
        )

        tracer = _active_tracer()
        with tracer.span(
            "engine.scan",
            fact=query.fact,
            parallel=True,
            degree=self.parallel.degree,
            morsels=len(tasks),
        ) as span:
            self._count_scan(fact, sum(task.hi - task.lo for task in tasks))
            self.metrics.inc("engine.parallel.queries")
            results = self._dispatch_morsels(tasks, tracer)
            with tracer.span("parallel.merge", morsels=len(results)) as merge_span:
                result = self._merge_aggregate(
                    query, key_infos, agg_specs, agg_plan, results
                )
                if tracer.enabled:
                    merge_span.set(rows_out=len(result))
            if tracer.enabled:
                span.set(
                    rows_in=len(fact),
                    rows_out=len(result),
                    cells_out=len(result) * max(len(result.column_names), 1),
                )
            return result

    def _merge_aggregate(
        self, query: AggregateQuery, key_infos, agg_specs, agg_plan, results
    ) -> ResultSet:
        """Merge morsel partials into the final result set."""
        merged_keys, merged = _merge_morsels(results, [op for op, _ in agg_specs])
        return self._finalize_merged(query, key_infos, agg_plan, merged_keys, merged)

    def _finalize_merged(
        self, query: AggregateQuery, key_infos, agg_plan, merged_keys, merged
    ) -> ResultSet:
        """Decode merged keys and apply the post-merge aggregate plan.

        Shared by the parallel merge and the spill merge — both produce
        merged keys in globally sorted folded-key order, which is exactly
        the group order of the serial fold, so decoding through the global
        dictionaries reproduces the serial result bit for bit.
        """
        codes = _decode_keys(merged_keys, [info[3] for info in key_infos])
        columns: Dict[str, np.ndarray] = {}
        for gb, info, code in zip(query.group_by, key_infos, codes):
            columns[gb.alias] = info[4][code]
        for agg, step in zip(query.aggregates, agg_plan):
            if step[0] == "avg":
                totals = merged[step[1]]
                counts = merged[step[2]]
                with np.errstate(divide="ignore", invalid="ignore"):
                    columns[agg.alias] = totals / counts
            else:
                columns[agg.alias] = merged[step[1]]
        return ResultSet(columns)

    # ------------------------------------------------------------------
    # Bounded-memory (spill-to-disk) execution
    # ------------------------------------------------------------------
    def _spill_admits(self, fact: Table, n_slots: int) -> bool:
        """Should this fact pass run through the spill tier?

        True when a memory budget is configured and the worst-case
        grouping state of the pass (every scanned row opening a group)
        exceeds it.  Deliberately pessimistic: a budget below the working
        set reliably routes through the bounded-memory path.
        """
        if self.memory_budget is None:
            return False
        return _grouping_state_bytes(len(fact), 0, n_slots) > self.memory_budget

    def _spill_morsel_rows(self) -> int:
        """Chunk size of a spill-tier scan (the parallel morsel size)."""
        if self.parallel is not None:
            return self.parallel.morsel_rows
        from ..parallel.config import DEFAULT_MORSEL_ROWS, env_morsel_rows

        return env_morsel_rows() or DEFAULT_MORSEL_ROWS

    def _stream_morsels(self, surviving, build, tracer):
        """Yield per-morsel results one at a time (bounded retained state).

        With a parallel config the morsels are dispatched in bounded waves
        through the worker pool (spill composes with the morsel path);
        serially, each task is built, run, and dropped before the next, so
        only one morsel's decoded windows are ever live.
        """
        if self.parallel is not None and self.parallel.enabled:
            wave = max(1, self.parallel.degree) * 4
            for start in range(0, len(surviving), wave):
                batch = [
                    build(index, lo, hi)
                    for index, lo, hi in surviving[start:start + wave]
                ]
                for result in self._dispatch_morsels(batch, tracer):
                    yield result
        else:
            for index, lo, hi in surviving:
                yield run_morsel(build(index, lo, hi))

    def _spill_aggregate(
        self, fact: Table, query: AggregateQuery
    ) -> Optional[ResultSet]:
        """Bounded-memory execute_aggregate; None → caller runs in RAM.

        Streams per-morsel partial results (the same ``run_morsel``
        workers the parallel path uses) into a :class:`SpillAggregator`,
        which range-partitions them over the folded key space, spills
        buffered runs to temp files when the budget is exceeded, and
        merges partitions with the distributive re-aggregation kernels —
        bit-identical to the in-RAM path under the same float-exactness
        gate that guards the parallel merge.  Gate-failing measures
        return ``None`` (counted under ``engine.spill.fallbacks``); the
        caller then runs the unbudgeted in-RAM path.
        """
        lowered = self._lower_aggregates(fact, query.aggregates)
        if lowered is None:
            self.metrics.inc("engine.spill.fallbacks")
            return None
        agg_specs, agg_plan = lowered
        key_infos, key_space = self._parallel_key_info(
            fact, query.fact, [(gb.table, gb.column) for gb in query.group_by]
        )
        if key_space >= _MAX_COMBINED_KEY:
            self.metrics.inc("engine.spill.fallbacks")
            return None
        referenced = {gb.table for gb in query.group_by} | {
            cp.table for cp in query.where
        }
        joins_needed = [j for j in query.joins if j.table in referenced]
        pruner = self._zone_pruner(fact, query.fact, query.where, query.joins)
        surviving, build = self._morsel_task_source(
            fact, query.fact, query.where, joins_needed, key_infos, agg_specs,
            self._spill_morsel_rows(), pruner,
        )
        budget = self.memory_budget
        assert budget is not None
        estimate = _grouping_state_bytes(len(fact), len(key_infos), len(agg_specs))

        tracer = _active_tracer()
        with tracer.span(
            "engine.scan",
            fact=query.fact,
            spill=True,
            morsels=len(surviving),
        ) as span:
            self._count_scan(fact, sum(hi - lo for _, lo, hi in surviving))
            self.metrics.inc("engine.spill.queries")
            with SpillAggregator(
                key_space,
                [op for op, _ in agg_specs],
                budget,
                metrics=self.metrics,
                n_partitions=_choose_partitions(estimate, budget),
            ) as spiller:
                for morsel in self._stream_morsels(surviving, build, tracer):
                    spiller.add(morsel.keys, morsel.partials)
                merged_keys, merged = spiller.merge_all()
                spills = spiller.spills
            result = self._finalize_merged(
                query, key_infos, agg_plan, merged_keys, merged
            )
            if tracer.enabled:
                span.set(
                    rows_in=len(fact),
                    rows_out=len(result),
                    spills=spills,
                )
            return result

    def _spill_fused(
        self,
        fact: Table,
        queries: Sequence[AggregateQuery],
        scan_where: Sequence[ColumnPredicate],
        residuals: Sequence[Sequence[ColumnPredicate]],
    ) -> "Optional[Tuple[List[ResultSet], List[bool]]]":
        """Bounded-memory execute_fused; None → caller runs in RAM.

        The finest shared partial aggregation streams through the
        :class:`SpillAggregator` exactly like :meth:`_spill_aggregate`;
        members are then derived from the merged finest groups with the
        shared :meth:`_derive_fused_member` arithmetic (the merged state
        is result-sized, not scan-sized).  ``None`` when no member would
        be derivable — the serial fused path then runs its per-member
        fallbacks directly.
        """
        fact_name = queries[0].fact
        lowering = self._fused_lowering(fact, fact_name, queries, residuals)
        if lowering is None:
            self.metrics.inc("engine.spill.fallbacks")
            return None
        (column_key, derivable_flags, finest, key_infos, key_space,
         agg_specs) = lowering

        referenced = set()
        for query in queries:
            referenced |= {gb.table for gb in query.group_by}
            referenced |= {cp.table for cp in query.where}
        joins_needed = [j for j in queries[0].joins if j.table in referenced]
        pruner = self._zone_pruner(fact, fact_name, scan_where, queries[0].joins)
        surviving, build = self._morsel_task_source(
            fact, fact_name, scan_where, joins_needed, key_infos, agg_specs,
            self._spill_morsel_rows(), pruner,
        )
        budget = self.memory_budget
        assert budget is not None
        estimate = _grouping_state_bytes(len(fact), len(finest), len(agg_specs))

        tracer = _active_tracer()
        with tracer.span(
            "engine.fused-scan",
            members=len(queries),
            spill=True,
            morsels=len(surviving),
        ) as span:
            self._count_scan(fact, sum(hi - lo for _, lo, hi in surviving))
            self.metrics.inc("engine.fused_scans")
            self.metrics.inc("engine.spill.queries")
            with SpillAggregator(
                key_space,
                [op for op, _ in agg_specs],
                budget,
                metrics=self.metrics,
                n_partitions=_choose_partitions(estimate, budget),
            ) as spiller:
                for morsel in self._stream_morsels(surviving, build, tracer):
                    spiller.add(morsel.keys, morsel.partials)
                merged_keys, merged = spiller.merge_all()
                spills = spiller.spills
            results, flags = self._fused_from_merged(
                fact, fact_name, queries, residuals, scan_where, joins_needed,
                column_key, derivable_flags, finest, key_infos, agg_specs,
                merged_keys, merged,
            )
            if tracer.enabled:
                derived = int(sum(flags))
                span.set(
                    derived=derived,
                    fallbacks=len(flags) - derived,
                    rows_out=int(sum(len(result) for result in results)),
                    spills=spills,
                )
            return results, flags

    def _parallel_fused(
        self,
        fact: Table,
        queries: Sequence[AggregateQuery],
        scan_where: Sequence[ColumnPredicate],
        residuals: Sequence[Sequence[ColumnPredicate]],
    ) -> "Optional[Tuple[List[ResultSet], List[bool]]]":
        """Morsel-parallel execute_fused; None → caller runs serial.

        Per-morsel workers compute the *finest shared* partial aggregates;
        the deterministic merge reproduces exactly the finest grouping the
        serial fused scan builds, and each member is then derived with the
        shared :meth:`_derive_fused_member` arithmetic.  Members whose
        measures fail the (full-column) exactness gate fall back to a
        direct serial grouping pass over the shared predicates — the same
        fallback the serial fused path uses, so results stay bit-identical
        to standalone execution either way.
        """
        fact_name = queries[0].fact
        lowering = self._fused_lowering(fact, fact_name, queries, residuals)
        if lowering is None:
            # Nothing would be derived from a parallel finest pass (or the
            # folded key would overflow); let the serial fused path run
            # its per-member fallbacks directly.
            self.metrics.inc("engine.parallel.fallbacks")
            return None
        (column_key, derivable_flags, finest, key_infos, key_space,
         agg_specs) = lowering

        referenced = set()
        for query in queries:
            referenced |= {gb.table for gb in query.group_by}
            referenced |= {cp.table for cp in query.where}
        joins_needed = [j for j in queries[0].joins if j.table in referenced]
        pruner = self._zone_pruner(fact, fact_name, scan_where, queries[0].joins)
        tasks = self._parallel_tasks(
            fact, fact_name, scan_where, joins_needed, key_infos, agg_specs,
            pruner,
        )

        tracer = _active_tracer()
        with tracer.span(
            "engine.fused-scan",
            members=len(queries),
            parallel=True,
            degree=self.parallel.degree,
            morsels=len(tasks),
        ) as span:
            self._count_scan(fact, sum(task.hi - task.lo for task in tasks))
            self.metrics.inc("engine.fused_scans")
            self.metrics.inc("engine.parallel.queries")
            raw = self._dispatch_morsels(tasks, tracer)
            with tracer.span("parallel.merge", morsels=len(raw)) as merge_span:
                merged_keys, merged = _merge_morsels(
                    raw, [op for op, _ in agg_specs]
                )
                if tracer.enabled:
                    merge_span.set(rows_out=len(merged_keys))
            results, flags = self._fused_from_merged(
                fact, fact_name, queries, residuals, scan_where, joins_needed,
                column_key, derivable_flags, finest, key_infos, agg_specs,
                merged_keys, merged,
            )
            if tracer.enabled:
                derived = int(sum(flags))
                span.set(
                    derived=derived,
                    fallbacks=len(flags) - derived,
                    rows_out=int(sum(len(result) for result in results)),
                )
            return results, flags

    def _fused_lowering(
        self,
        fact: Table,
        fact_name: str,
        queries: Sequence[AggregateQuery],
        residuals: Sequence[Sequence[ColumnPredicate]],
    ):
        """Shared lowering for the parallel and spill fused paths.

        Computes per-member derivability flags (same gates as the serial
        fused path: no avg, sums must pass the exactness gate), the finest
        shared key list, its global dictionary infos, and the deduplicated
        partial agg specs.  ``None`` when nothing would be derivable or
        the folded key space would overflow int64 — the caller then runs
        the serial fused path.
        """

        def column_key(table: str) -> str:
            return FACT if table in (FACT, fact_name) else table

        derivable_flags: List[bool] = []
        for query in queries:
            ok = True
            for agg in query.aggregates:
                if agg.op == "avg" or agg.op not in ("sum", "count", "min", "max"):
                    ok = False
                    break
                if agg.op == "sum" and not fact.sums_exactly(agg.column):
                    ok = False
                    break
            derivable_flags.append(ok)
        if not any(derivable_flags):
            return None

        finest: List[Tuple[str, str]] = []
        seen = set()
        for query, residual in zip(queries, residuals):
            for gb in query.group_by:
                key = (column_key(gb.table), gb.column)
                if key not in seen:
                    seen.add(key)
                    finest.append(key)
            for cp in residual:
                key = (column_key(cp.table), cp.column)
                if key not in seen:
                    seen.add(key)
                    finest.append(key)

        key_infos, key_space = self._parallel_key_info(fact, fact_name, finest)
        if key_space >= _MAX_COMBINED_KEY:
            return None

        agg_specs: List[Tuple[str, Optional[str]]] = []
        for query, ok in zip(queries, derivable_flags):
            if not ok:
                continue
            for agg in query.aggregates:
                key = ("count", None) if agg.op == "count" else (agg.op, agg.column)
                if key not in agg_specs:
                    agg_specs.append(key)

        return (column_key, derivable_flags, finest, key_infos, key_space,
                agg_specs)

    def _fused_from_merged(
        self,
        fact: Table,
        fact_name: str,
        queries: Sequence[AggregateQuery],
        residuals: Sequence[Sequence[ColumnPredicate]],
        scan_where: Sequence[ColumnPredicate],
        joins_needed,
        column_key,
        derivable_flags: Sequence[bool],
        finest: "Sequence[Tuple[str, str]]",
        key_infos,
        agg_specs: "Sequence[Tuple[str, Optional[str]]]",
        merged_keys: np.ndarray,
        merged: Sequence[np.ndarray],
    ) -> "Tuple[List[ResultSet], List[bool]]":
        """Derive every fused member from merged finest partials.

        Shared by the parallel merge and the spill merge; both produce the
        finest grouping in serial group order, so the member derivation is
        the bit-identical :meth:`_derive_fused_member` arithmetic either
        way.  Gate-failing members run the serial direct fallback over
        lazily computed full-table positions and the shared scan mask.
        """
        codes = _decode_keys(merged_keys, [info[3] for info in key_infos])
        finest_count = len(merged_keys)
        group_codes = {
            key: (code, info[3])
            for key, info, code in zip(finest, key_infos, codes)
        }
        group_values = {
            key: info[4][code]
            for key, info, code in zip(finest, key_infos, codes)
        }
        slot_of = {key: i for i, key in enumerate(agg_specs)}

        def partial_of(column: str, op: str) -> np.ndarray:
            return merged[slot_of[(op, column)]]

        def count_of() -> np.ndarray:
            return merged[slot_of[("count", None)]]

        # Fallback members need full-table positions and the shared
        # scan mask; computed serially, once, only if some member
        # actually falls back.
        full_state: Dict[str, object] = {}

        def full_positions_mask():
            if "positions" not in full_state:
                positions: Dict[str, np.ndarray] = {}
                for join in joins_needed:
                    dimension = self.catalog.table(join.table)
                    index = dimension.key_index(join.dim_key)
                    positions[join.table] = index.positions_of(
                        fact.column(join.fact_fk)
                    )
                full_state["positions"] = positions
                full_state["mask"] = self._predicate_mask(
                    fact, fact_name, scan_where, positions
                )
            return full_state["positions"], full_state["mask"]

        results: List[ResultSet] = []
        for query, residual, ok in zip(queries, residuals, derivable_flags):
            if ok:
                results.append(
                    self._derive_fused_member(
                        query, residual, column_key, group_codes,
                        group_values, finest_count, partial_of, count_of,
                    )
                )
                self.metrics.inc("engine.fused_derived")
            else:
                positions, base_mask = full_positions_mask()
                results.append(
                    self._fused_member_direct(
                        fact, query, residual, positions, base_mask
                    )
                )
                self.metrics.inc("engine.fused_fallbacks")
        return results, list(derivable_flags)

    # ------------------------------------------------------------------
    # Drill-across (JOP)
    # ------------------------------------------------------------------
    def execute_drill_across(self, query: DrillAcrossQuery) -> ResultSet:
        """Join two aggregate results on grouping aliases (hash join).

        Implemented by jointly factorising the join-key columns of both
        sides into shared integer codes, then matching codes through a dense
        lookup table — the vectorised analogue of the DBMS hash join the
        paper's JOP relies on.
        """
        self.metrics.inc("engine.drill_across")
        tracer = _active_tracer()
        with tracer.span("engine.join", multi=bool(query.multi)) as span:
            with tracer.span("engine.side", side="left") as side:
                left = self.execute_aggregate(query.left)
                side.set(rows_out=len(left))
            with tracer.span("engine.side", side="right") as side:
                right = self.execute_aggregate(query.right)
                side.set(rows_out=len(right))
            result = self._drill_across_join(query, left, right)
            if tracer.enabled:
                span.set(rows_in=len(left) + len(right), rows_out=len(result))
            return result

    def _drill_across_join(
        self, query: DrillAcrossQuery, left: ResultSet, right: ResultSet
    ) -> ResultSet:
        """The join itself, after both sides have been aggregated."""
        left_keys = [left.column(alias) for alias in query.join_on]
        right_keys = [right.column(alias) for alias in query.join_on]
        left_codes, right_codes = _joint_codes(left_keys, right_keys)

        if query.multi:
            return self._drill_across_multi(query, left, right, left_codes, right_codes)

        order = np.argsort(right_codes, kind="stable")
        sorted_codes = right_codes[order]
        if len(sorted_codes) > 1 and np.any(sorted_codes[1:] == sorted_codes[:-1]):
            raise EngineError(
                "drill-across join key is not unique on the right side; "
                "use multi=True for fan-in partial joins"
            )
        positions = np.searchsorted(sorted_codes, left_codes)
        clipped = np.minimum(positions, max(len(sorted_codes) - 1, 0))
        if len(sorted_codes):
            found = sorted_codes[clipped] == left_codes
            matches = np.where(found, order[clipped], -1)
        else:
            matches = np.full(len(left_codes), -1, dtype=np.int64)
        keep = matches >= 0
        if query.outer:
            keep = np.ones(len(left_codes), dtype=bool)

        columns: Dict[str, np.ndarray] = {
            name: left.column(name)[keep] for name in left.column_names
        }
        matched = matches[keep]
        for agg in query.right.aggregates:
            name = query.renames.get(agg.alias, agg.alias)
            source = right.column(agg.alias)
            columns[name] = _gather_float(source, matched)
        return ResultSet(columns)

    def _drill_across_multi(
        self,
        query: DrillAcrossQuery,
        left: ResultSet,
        right: ResultSet,
        left_codes: np.ndarray,
        right_codes: np.ndarray,
    ) -> ResultSet:
        """Fan-in partial join: append each right match as extra columns.

        Each match is slotted by its *residual coordinate* — the right
        side's grouping values outside the join key — against the globally
        sorted list of distinct residual coordinates.  For a past benchmark
        the residual is the time slice, so slice ``i`` always lands in
        column ``name_i`` (oldest first) and a missing slice stays NaN,
        preserving the time alignment the regression transform needs.
        """
        right_group_aliases = [gb.alias for gb in query.right.group_by]
        residual_aliases = [
            alias for alias in right_group_aliases if alias not in query.join_on
        ]
        slots, width = self._residual_slots(right, residual_aliases)

        # Sort-based join: for each left code, its right matches are the
        # contiguous run [lo, hi) in the sorted right codes.
        order = np.argsort(right_codes, kind="stable")
        sorted_codes = right_codes[order]
        lo = np.searchsorted(sorted_codes, left_codes, side="left")
        hi = np.searchsorted(sorted_codes, left_codes, side="right")
        counts = hi - lo
        keep = (counts > 0) if not query.outer else np.ones(len(left_codes), bool)
        index = np.nonzero(keep)[0].astype(np.int64)
        columns: Dict[str, np.ndarray] = {
            name: left.column(name)[index] for name in left.column_names
        }

        # Scatter every (kept left row, residual slot) pair in one pass.
        kept_counts = counts[index]
        total = int(kept_counts.sum())
        padded = np.full((len(index), max(width, 1)), -1, dtype=np.int64)
        if total:
            out_rows = np.repeat(np.arange(len(index), dtype=np.int64), kept_counts)
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(kept_counts) - kept_counts, kept_counts
            )
            right_rows = order[np.repeat(lo[index], kept_counts) + offsets]
            padded[out_rows, slots[right_rows]] = right_rows
        for agg in query.right.aggregates:
            base_name = query.renames.get(agg.alias, agg.alias)
            source = right.column(agg.alias)
            if width <= 1:
                columns[base_name] = _gather_float(source, padded[:, 0])
            else:
                for slot in range(width):
                    columns[f"{base_name}_{slot + 1}"] = _gather_float(
                        source, padded[:, slot]
                    )
        return ResultSet(columns)

    @staticmethod
    def _residual_slots(
        right: ResultSet, residual_aliases: "List[str]"
    ) -> "Tuple[np.ndarray, int]":
        """Slot id of every right row by its residual coordinate.

        The residual columns are factorised into dense codes; only the (few)
        distinct coordinates are materialised as tuples to fix the slot
        order — sorted by ``repr``, oldest-first for time slices — so slice
        ``i`` always lands in column ``name_i``.
        """
        n_right = len(right)
        if not residual_aliases:
            return np.zeros(n_right, dtype=np.int64), 1
        code_columns = []
        for alias in residual_aliases:
            column = right.column(alias)
            if column.dtype == object:
                code_columns.append(_hash_encode(column))
            else:
                code_columns.append(_encode_column(column))
        inverse, count, first_rows = _combine_codes(code_columns, n_right)
        distinct = [
            tuple(right.column(alias)[row] for alias in residual_aliases)
            for row in first_rows
        ]
        by_repr = sorted(range(count), key=lambda i: repr(distinct[i]))
        slot_of_code = np.empty(count, dtype=np.int64)
        for slot, code in enumerate(by_repr):
            slot_of_code[code] = slot
        return slot_of_code[inverse], count

    # ------------------------------------------------------------------
    # Pivot (POP)
    # ------------------------------------------------------------------
    def execute_pivot(self, query: PivotQuery) -> ResultSet:
        """Evaluate the base aggregate once and pivot one grouping column.

        The rest-key (all grouping columns but the pivoted one) is
        factorised into dense ids; a ``(rest_groups × members)`` matrix is
        then filled by scatter for each aggregate, and reference rows are
        emitted with their neighbours' values as extra columns (Listing 5).
        """
        self.metrics.inc("engine.pivots")
        tracer = _active_tracer()
        with tracer.span("engine.pivot") as span:
            with tracer.span("engine.side", side="base") as side:
                base = self.execute_aggregate(query.base)
                side.set(rows_out=len(base))
            result = self._pivot_of_base(query, base)
            if tracer.enabled:
                span.set(rows_in=len(base), rows_out=len(result))
            return result

    def _pivot_of_base(self, query: PivotQuery, base: ResultSet) -> ResultSet:
        """The pivot scatter itself, after the base has been aggregated."""
        rest_aliases = [
            gb.alias for gb in query.base.group_by if gb.alias != query.pivot_alias
        ]
        code_columns = []
        for alias in rest_aliases:
            column = base.column(alias)
            if column.dtype == object:
                code_columns.append(_hash_encode(column))
            else:
                code_columns.append(_encode_column(column))
        rest_ids, rest_count, _ = _combine_codes(code_columns, len(base))

        pivot_column = base.column(query.pivot_alias)
        members = [query.reference] + list(query.members.keys())
        member_slot = {member: i for i, member in enumerate(members)}
        pivot_codes, mapping = _hash_encode_with_mapping(pivot_column)
        slot_of_code = np.full(max(len(mapping), 1), -1, dtype=np.int64)
        for value, code in mapping.items():
            slot_of_code[code] = member_slot.get(value, -1)
        slots = slot_of_code[pivot_codes]
        valid = slots >= 0

        n_slots = len(members)
        row_of = np.full((rest_count, n_slots), -1, dtype=np.int64)
        row_of[rest_ids[valid], slots[valid]] = np.nonzero(valid)[0]

        reference_rows = row_of[:, 0]
        keep_groups = reference_rows >= 0
        if query.require_all:
            keep_groups &= (row_of >= 0).all(axis=1)
        reference_rows = reference_rows[keep_groups]

        columns: Dict[str, np.ndarray] = {}
        for alias in [gb.alias for gb in query.base.group_by]:
            columns[alias] = base.column(alias)[reference_rows]
        for agg in query.base.aggregates:
            columns[agg.alias] = base.column(agg.alias)[reference_rows]
        for slot, (member, renames) in enumerate(query.members.items(), start=1):
            member_rows = row_of[keep_groups, slot]
            for agg_alias, new_name in renames.items():
                source = base.column(agg_alias)
                columns[new_name] = _gather_float(source, member_rows)
        return ResultSet(columns)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _dimension_positions(
        self, fact: Table, query: AggregateQuery, ranges: Ranges = None
    ) -> Dict[str, np.ndarray]:
        """Resolve each referenced dimension's FK column to row positions.

        With a zone-pruned ``ranges`` selection only the surviving fact
        rows' foreign keys are gathered and resolved.
        """
        referenced = {gb.table for gb in query.group_by} | {
            cp.table for cp in query.where
        }
        positions: Dict[str, np.ndarray] = {}
        for join in query.joins:
            if join.table not in referenced:
                continue  # join elimination: untouched dimensions are skipped
            dimension = self.catalog.table(join.table)
            index = dimension.key_index(join.dim_key)
            positions[join.table] = index.positions_of(
                fact.gather(join.fact_fk, ranges)
            )
        return positions

    def _selection_mask(
        self,
        fact: Table,
        query: AggregateQuery,
        positions: Dict[str, np.ndarray],
        ranges: Ranges = None,
    ) -> Optional[np.ndarray]:
        return self._predicate_mask(fact, query.fact, query.where, positions, ranges)

    def _predicate_mask(
        self,
        fact: Table,
        fact_name: str,
        predicates: Sequence[ColumnPredicate],
        positions: Dict[str, np.ndarray],
        ranges: Ranges = None,
    ) -> Optional[np.ndarray]:
        mask: Optional[np.ndarray] = None
        for cp in predicates:
            if cp.table in (FACT, fact_name):
                part = cp.predicate.mask(fact.gather(cp.column, ranges))
            else:
                dimension = self.catalog.table(cp.table)
                dim_mask = cp.predicate.mask(dimension.column(cp.column))
                part = dim_mask[positions[cp.table]]
            mask = part if mask is None else (mask & part)
        return mask

    def _gather_column(
        self,
        fact: Table,
        table: str,
        column: str,
        positions: Dict[str, np.ndarray],
        mask: Optional[np.ndarray],
    ) -> np.ndarray:
        if table in (FACT, fact.name):
            values = fact.column(column)
            return values if mask is None else values[mask]
        dimension = self.catalog.table(table)
        pos = positions[table]
        if mask is not None:
            pos = pos[mask]
        return dimension.column(column)[pos]


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def _aggregate(
    group_ids: np.ndarray, group_count: int, measure: np.ndarray, op: str
) -> np.ndarray:
    """Aggregate one measure column per group."""
    measure = np.asarray(measure, dtype=np.float64)
    if op == "sum":
        return np.bincount(group_ids, weights=measure, minlength=group_count)
    if op == "count":
        return np.bincount(group_ids, minlength=group_count).astype(np.float64)
    if op == "avg":
        totals = np.bincount(group_ids, weights=measure, minlength=group_count)
        counts = np.bincount(group_ids, minlength=group_count)
        with np.errstate(divide="ignore", invalid="ignore"):
            return totals / counts
    if op == "min":
        out = np.full(group_count, np.inf)
        np.minimum.at(out, group_ids, measure)
        return out
    if op == "max":
        out = np.full(group_count, -np.inf)
        np.maximum.at(out, group_ids, measure)
        return out
    raise EngineError(f"unsupported aggregation operator {op!r}")


def _joint_codes(
    left_keys: Sequence[np.ndarray], right_keys: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Factorise the key columns of both join sides into shared codes.

    Numeric columns are encoded with ``np.unique`` (fast integer sorts);
    object columns with a hash-map pass, which beats comparison-sorting
    Python strings.  Code order is arbitrary but consistent across the two
    sides, which is all an equality join needs.
    """
    n_left = len(left_keys[0]) if left_keys else 0
    left_codes = np.zeros(n_left, dtype=np.int64)
    right_codes = np.zeros(len(right_keys[0]) if right_keys else 0, dtype=np.int64)
    for left_column, right_column in zip(left_keys, right_keys):
        stacked = np.concatenate([left_column, right_column])
        if stacked.dtype == object:
            codes, cardinality = _hash_encode(stacked)
        else:
            codes, cardinality = _encode_column(stacked)
        left_codes = left_codes * cardinality + codes[:n_left]
        right_codes = right_codes * cardinality + codes[n_left:]
    return left_codes, right_codes


def _hash_encode(column: np.ndarray) -> Tuple[np.ndarray, int]:
    """Dictionary-encode an object column via one hash-map pass."""
    codes, mapping = _hash_encode_with_mapping(column)
    return codes, max(len(mapping), 1)


def _hash_encode_with_mapping(column: np.ndarray) -> Tuple[np.ndarray, Dict]:
    """Dictionary-encode a column, also returning the value→code mapping."""
    mapping: Dict = {}
    setdefault = mapping.setdefault
    codes = np.fromiter(
        (setdefault(value, len(mapping)) for value in column),
        dtype=np.int64,
        count=len(column),
    )
    return codes, mapping


def _gather_float(source: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Gather float values treating row ``-1`` as NULL (NaN)."""
    missing = rows < 0
    safe = np.where(missing, 0, rows)
    if len(source) == 0:
        return np.full(len(rows), np.nan)
    gathered = np.asarray(source, dtype=np.float64)[safe].copy()
    gathered[missing] = np.nan
    return gathered
