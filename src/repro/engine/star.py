"""Star-schema metadata: the physical description of a cube's storage.

A :class:`StarSchema` records which catalog table is the fact table, which
are the dimension tables, how they link (FK → surrogate key), and which
dimension/fact column stores each OLAP level.  This is the multidimensional
metadata the engine of [6] uses to rewrite cube queries into SQL; the OLAP
layer (:mod:`repro.olap`) consults it to translate gets, drill-acrosses and
pivots into engine queries.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..core.errors import EngineError
from .query import DimensionJoin, FACT


class DimensionBinding:
    """One dimension table: its join to the fact and its level columns.

    ``level_columns`` maps OLAP level names to columns of the dimension
    table, finest first (e.g. ``{"customer": "c_name", "city": "c_city",
    "nation": "c_nation"}``).

    ``properties`` maps *descriptive property* names to ``(level, column)``
    pairs — e.g. ``{"population": ("country", "s_population")}`` — enabling
    the per-capita comparisons of the paper's §8.  A property must be
    functionally dependent on its level.
    """

    __slots__ = ("hierarchy", "table", "fact_fk", "dim_key", "level_columns",
                 "properties")

    def __init__(
        self,
        hierarchy: str,
        table: str,
        fact_fk: str,
        dim_key: str,
        level_columns: Mapping[str, str],
        properties: Mapping[str, Tuple[str, str]] = (),
    ):
        self.hierarchy = hierarchy
        self.table = table
        self.fact_fk = fact_fk
        self.dim_key = dim_key
        self.level_columns: Dict[str, str] = dict(level_columns)
        self.properties: Dict[str, Tuple[str, str]] = dict(properties)

    def join(self) -> DimensionJoin:
        """The fact→dimension join descriptor."""
        return DimensionJoin(self.table, self.fact_fk, self.dim_key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DimensionBinding({self.hierarchy!r} -> {self.table}, "
            f"levels={list(self.level_columns)})"
        )


class StarSchema:
    """The star-schema layout of one detailed cube.

    ``degenerate_levels`` maps levels stored directly on the fact table
    (degenerate dimensions) to fact columns; ``measure_columns`` maps
    measure names to fact columns.
    """

    def __init__(
        self,
        name: str,
        fact_table: str,
        dimensions: Sequence[DimensionBinding],
        measure_columns: Mapping[str, str],
        degenerate_levels: Optional[Mapping[str, str]] = None,
    ):
        self.name = name
        self.fact_table = fact_table
        self.dimensions: Tuple[DimensionBinding, ...] = tuple(dimensions)
        self.measure_columns: Dict[str, str] = dict(measure_columns)
        self.degenerate_levels: Dict[str, str] = dict(degenerate_levels or {})

        self._binding_by_level: Dict[str, DimensionBinding] = {}
        self._property_bindings: Dict[str, Tuple[DimensionBinding, str, str]] = {}
        for binding in self.dimensions:
            for level_name in binding.level_columns:
                if level_name in self._binding_by_level or level_name in self.degenerate_levels:
                    raise EngineError(
                        f"level {level_name!r} is bound twice in star schema {name!r}"
                    )
                self._binding_by_level[level_name] = binding
            for property_name, (level_name, column) in binding.properties.items():
                if property_name in self._property_bindings:
                    raise EngineError(
                        f"property {property_name!r} is bound twice in star "
                        f"schema {name!r}"
                    )
                if level_name not in binding.level_columns:
                    raise EngineError(
                        f"property {property_name!r} references level "
                        f"{level_name!r} which dimension {binding.table!r} "
                        "does not bind"
                    )
                self._property_bindings[property_name] = (binding, level_name, column)

    # ------------------------------------------------------------------
    def binding_for_level(self, level_name: str) -> Optional[DimensionBinding]:
        """The dimension binding that stores a level, or ``None`` when the
        level is degenerate (on the fact table)."""
        if level_name in self.degenerate_levels:
            return None
        try:
            return self._binding_by_level[level_name]
        except KeyError:
            raise EngineError(
                f"star schema {self.name!r} does not bind level {level_name!r}"
            ) from None

    def column_for_level(self, level_name: str) -> Tuple[str, str]:
        """The ``(table_token, column)`` pair storing a level's members."""
        if level_name in self.degenerate_levels:
            return FACT, self.degenerate_levels[level_name]
        binding = self._binding_by_level.get(level_name)
        if binding is None:
            raise EngineError(
                f"star schema {self.name!r} does not bind level {level_name!r}"
            )
        return binding.table, binding.level_columns[level_name]

    def column_for_measure(self, measure_name: str) -> str:
        """The fact column storing a measure."""
        try:
            return self.measure_columns[measure_name]
        except KeyError:
            raise EngineError(
                f"star schema {self.name!r} does not bind measure {measure_name!r}"
            ) from None

    def has_level(self, level_name: str) -> bool:
        return level_name in self._binding_by_level or level_name in self.degenerate_levels

    def has_property(self, property_name: str) -> bool:
        """Whether a descriptive property with that name is bound."""
        return property_name in self._property_bindings

    def property_binding(self, property_name: str) -> Tuple[str, str, str]:
        """The ``(level, table, column)`` triple of a property."""
        try:
            binding, level_name, column = self._property_bindings[property_name]
        except KeyError:
            raise EngineError(
                f"star schema {self.name!r} does not bind property "
                f"{property_name!r}"
            ) from None
        return level_name, binding.table, column

    def all_joins(self) -> Tuple[DimensionJoin, ...]:
        """Join descriptors for every dimension of the star."""
        return tuple(binding.join() for binding in self.dimensions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StarSchema({self.name!r}, fact={self.fact_table!r}, "
            f"dimensions={[d.table for d in self.dimensions]})"
        )
