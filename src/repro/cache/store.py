"""The semantic result cache: LRU store keyed by query fingerprint.

An entry memoizes one executed :class:`AggregateQuery`'s
:class:`ResultSet`.  The budget is measured in cached *cells* (rows ×
columns), not entry count, so one huge fine-grained result cannot be
"cheaper" than a hundred tiny ones.  Lookup follows a three-step
protocol (see :meth:`SemanticResultCache.fetch`):

1. **exact hit** — the fingerprint matches and the stored query equals
   the request (guaranteeing the result layout matches, since the
   fingerprint deliberately canonicalises column order away);
2. **derivation** — some cached entry of the same cube is finer along
   every hierarchy with subsuming predicates, and the answer is
   re-aggregated from it (:mod:`repro.cache.derive`) without touching
   the fact table;
3. **miss** — the caller executes cold and :meth:`store`s the result.

Invalidation is by table name: the OLAP layer annotates every query it
builds with the base tables of its star (:class:`QueryMeta`), and the
catalog notifies the cache when a table is replaced or dropped; every
entry whose physical or base tables include it is discarded.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Optional, Set

from ..engine.executor import ResultSet
from ..engine.query import AggregateQuery, DrillAcrossQuery, PivotQuery
from ..obs.metrics import METRICS, MetricsRegistry
from ..obs.tracer import active as _active_tracer
from .derive import QueryMeta, RollupResolver, can_derive, derive_result
from .fingerprint import CacheableQuery, Fingerprint, fingerprint_query

DEFAULT_CELL_BUDGET = 16_000_000
"""Default cache capacity in cells (~128 MB of float64 measure data).

Sized so an interactive session over the mid benchmark rung (600k fact
rows) keeps its whole working set resident: the four reference
intentions cache ~6.3M cells, and an undersized budget would make the
statements evict each other's targets in LRU ping-pong."""

_MAX_SEMANTICS = 4096
"""Bound on retained query annotations (tiny metadata objects)."""


class CacheEntry:
    """One memoized aggregate result."""

    __slots__ = ("fingerprint", "query", "result", "meta", "tables", "cells",
                 "nbytes", "derived")

    def __init__(
        self,
        fingerprint: Fingerprint,
        query: AggregateQuery,
        result: ResultSet,
        meta: Optional[QueryMeta],
        tables: FrozenSet[str],
        derived: bool,
    ):
        self.fingerprint = fingerprint
        self.query = query
        self.result = result
        self.meta = meta
        self.tables = tables
        self.cells = len(result) * max(len(result.column_names), 1)
        self.nbytes = sum(
            column.nbytes for column in result.columns.values()
        )
        self.derived = derived

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CacheEntry(rows={len(self.result)}, cells={self.cells})"


class CacheStats:
    """Counters of one cache's lifetime activity.

    Since the observability refactor the counters live in a
    :class:`~repro.obs.metrics.MetricsRegistry` (by default a private
    child of the process-wide registry, so every bump also aggregates
    upward as ``cache.<name>``).  The attribute API is unchanged —
    ``stats.hits`` reads and ``stats.hits += 1`` writes exactly as the
    old plain-int fields did, and :meth:`snapshot` returns the same flat
    dict of ints.
    """

    NAMES = ("hits", "misses", "derivations", "evictions", "invalidations",
             "stores")

    __slots__ = ("metrics",)

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry(parent=METRICS, prefix="cache")
        )

    def snapshot(self) -> Dict[str, int]:
        return {name: self.metrics.get(name) for name in self.NAMES}


def _counter_property(name: str) -> property:
    def getter(self: CacheStats) -> int:
        return self.metrics.get(name)

    def setter(self: CacheStats, value: int) -> None:
        # Assignment is expressed as a delta so the increment propagates
        # to parent registries (plain assignment would bypass them).
        delta = value - self.metrics.get(name)
        if delta:
            self.metrics.inc(name, delta)

    return property(getter, setter)


for _name in CacheStats.NAMES:
    setattr(CacheStats, _name, _counter_property(_name))
del _name


class SemanticResultCache:
    """LRU result cache with exact and derivation reuse."""

    def __init__(
        self,
        cell_budget: int = DEFAULT_CELL_BUDGET,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.enabled = True
        self.cell_budget = cell_budget
        self.rollup_resolver: Optional[RollupResolver] = None
        self.counters = CacheStats(metrics)
        self._entries: "OrderedDict[Fingerprint, CacheEntry]" = OrderedDict()
        self._semantics: "OrderedDict[Fingerprint, QueryMeta]" = OrderedDict()
        self._by_source: Dict[str, Set[Fingerprint]] = {}
        self._cached_cells = 0
        # One reentrant lock over all mutable state: sessions may be
        # shared across threads (and catalog listeners may invalidate
        # concurrently with lookups), and the LRU bookkeeping — entry
        # dict, per-source index, cell accounting — must move together
        # or an eviction could leave a torn entry.  Reentrant because
        # ``fetch`` stores derived results while already holding it.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Annotation (populated by the OLAP layer's query rewriting)
    # ------------------------------------------------------------------
    def annotate(self, query: AggregateQuery, meta: QueryMeta) -> None:
        """Attach cube-level semantics to a pushed query's fingerprint.

        Derivation needs hierarchy knowledge the physical query lacks;
        the OLAP layer calls this from ``build_aggregate_query`` so every
        query that flows through the engine carries its provenance.
        """
        fingerprint = fingerprint_query(query)
        with self._lock:
            self._semantics[fingerprint] = meta
            self._semantics.move_to_end(fingerprint)
            # Bounded LRU; live entries keep their own ``meta`` reference, so
            # evicting an annotation never breaks candidate scans.
            while len(self._semantics) > _MAX_SEMANTICS:
                self._semantics.popitem(last=False)

    def semantics_for(self, query: AggregateQuery) -> Optional[QueryMeta]:
        fingerprint = fingerprint_query(query)
        with self._lock:
            return self._semantics.get(fingerprint)

    # ------------------------------------------------------------------
    # Lookup protocol
    # ------------------------------------------------------------------
    def fetch(self, query: CacheableQuery) -> Optional[ResultSet]:
        """Exact hit, else derivation, else a recorded miss (``None``).

        Composite (drill-across/pivot) queries only take the exact-hit
        path: they have no annotated cube semantics, so ``_derive`` is a
        no-op for them — but their aggregate sides, which the executor
        routes back through :meth:`fetch`, still derive individually.
        """
        if not self.enabled:
            return None
        tracer = _active_tracer()
        with tracer.span("cache.lookup") as span:
            fingerprint = fingerprint_query(query)
            with self._lock:
                entry = self._entries.get(fingerprint)
                if entry is not None and entry.query == query:
                    self._entries.move_to_end(fingerprint)
                    self.counters.hits += 1
                    if tracer.enabled:
                        span.set(outcome="hit", fingerprint=_short(fingerprint),
                                 rows_out=len(entry.result))
                    return _serve(entry.result)
                derived = self._derive(query, fingerprint)
                if derived is not None:
                    self.counters.derivations += 1
                    self.store(query, derived, derived_from_cache=True)
                    if tracer.enabled:
                        span.set(outcome="derive",
                                 fingerprint=_short(fingerprint),
                                 rows_out=len(derived))
                    return _serve(derived)
                self.counters.misses += 1
            if tracer.enabled:
                span.set(outcome="miss", fingerprint=_short(fingerprint))
            return None

    def store(
        self,
        query: CacheableQuery,
        result: ResultSet,
        derived_from_cache: bool = False,
    ) -> None:
        """Memoize an executed (or derived) result, evicting LRU-first."""
        if not self.enabled:
            return
        fingerprint = fingerprint_query(query)
        with self._lock:
            meta = self._semantics.get(fingerprint)
            tables: Set[str] = set()
            for aggregate in _component_aggregates(query):
                tables |= {aggregate.fact}
                tables |= {join.table for join in aggregate.joins}
                component_meta = self._semantics.get(fingerprint_query(aggregate))
                if component_meta is not None:
                    tables |= component_meta.base_tables
            entry = CacheEntry(
                fingerprint, query, result, meta, frozenset(tables),
                derived_from_cache,
            )
            if entry.cells > self.cell_budget:
                return  # would evict the whole cache for one oversized result
            old = self._entries.pop(fingerprint, None)
            if old is not None:
                self._forget(old)
            self._entries[fingerprint] = entry
            self._cached_cells += entry.cells
            if meta is not None:
                self._by_source.setdefault(meta.source, set()).add(fingerprint)
            self.counters.stores += 1
            while self._cached_cells > self.cell_budget and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._forget(evicted)
                self.counters.evictions += 1

    def would_hit(self, query: AggregateQuery) -> Optional[str]:
        """Non-mutating probe: ``"exact"``, ``"derive"``, or ``None``.

        The derivation probe runs only the static usability check, so it
        can be (rarely) optimistic about roll-ups the engine cannot
        build — acceptable for cost estimation.
        """
        if not self.enabled:
            return None
        fingerprint = fingerprint_query(query)
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None and entry.query == query:
                return "exact"
            meta = self._semantics.get(fingerprint)
            if meta is not None:
                for candidate in self._candidates(meta):
                    if can_derive(meta, candidate.meta):  # type: ignore[arg-type]
                        return "derive"
        return None

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_table(self, table_name: str) -> int:
        """Discard every entry depending on a table; returns the count."""
        with self._lock:
            stale = [
                fingerprint
                for fingerprint, entry in self._entries.items()
                if table_name in entry.tables
            ]
            for fingerprint in stale:
                self._forget(self._entries.pop(fingerprint))
            self.counters.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop all cached results (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._by_source.clear()
            self._cached_cells = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus current occupancy, as one flat dict."""
        snapshot = self.counters.snapshot()
        with self._lock:
            snapshot.update(
                entries=len(self._entries),
                cached_cells=self._cached_cells,
                cached_bytes=sum(e.nbytes for e in self._entries.values()),
                cell_budget=self.cell_budget,
                enabled=int(self.enabled),
            )
        return snapshot

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _candidates(self, meta: QueryMeta):
        """Annotated entries of the same cube, smallest result first."""
        fingerprints = self._by_source.get(meta.source, ())
        entries = [
            self._entries[f]
            for f in fingerprints
            if f in self._entries and self._entries[f].meta is not None
        ]
        entries.sort(key=lambda entry: len(entry.result))
        return entries

    def _derive(
        self, query: AggregateQuery, fingerprint: Fingerprint
    ) -> Optional[ResultSet]:
        meta = self._semantics.get(fingerprint)
        if meta is None or self.rollup_resolver is None:
            return None
        for candidate in self._candidates(meta):
            if not can_derive(meta, candidate.meta):  # type: ignore[arg-type]
                continue
            result = derive_result(
                meta, candidate.meta, candidate.result, self.rollup_resolver  # type: ignore[arg-type]
            )
            if result is not None:
                self._entries.move_to_end(candidate.fingerprint)
                tracer = _active_tracer()
                if tracer.enabled:
                    tracer.event(
                        "cache.rollup-derivation",
                        source_fingerprint=_short(candidate.fingerprint),
                        source_rows=len(candidate.result),
                        rows_out=len(result),
                    )
                return result
        return None

    def _forget(self, entry: CacheEntry) -> None:
        self._cached_cells -= entry.cells
        if entry.meta is not None:
            fingerprints = self._by_source.get(entry.meta.source)
            if fingerprints is not None:
                fingerprints.discard(entry.fingerprint)


def _short(fingerprint: Fingerprint) -> str:
    """A short stable digest of a fingerprint, for span attributes.

    Fingerprints are deterministic tuples of strings, so the digest of
    their ``repr`` is stable within a process run and across runs —
    enough to correlate a derivation with its source entry in a trace.
    """
    import hashlib

    return hashlib.sha1(repr(fingerprint).encode()).hexdigest()[:10]


def _serve(result: ResultSet) -> ResultSet:
    """A shallow copy: callers get their own column dict, shared arrays."""
    return ResultSet(dict(result.columns))


def _component_aggregates(query: CacheableQuery):
    """The aggregate subqueries a cacheable query is built from.

    Invalidation tracks tables through these: a drill-across entry
    depends on both sides' tables, a pivot entry on its base's.
    """
    if isinstance(query, DrillAcrossQuery):
        return (query.left, query.right)
    if isinstance(query, PivotQuery):
        return (query.base,)
    return (query,)
