"""Derivation reuse: answering a cube query from a cached finer result.

This is the semantic half of the cache — the usability/containment
relation between query results that classic OLAP caching (and the
comparative cube algebras in the related work) formalise: a cached result
``r_e`` of query ``q_e`` can answer query ``q_t`` when

* both range over the same detailed cube,
* ``q_e``'s group-by set is finer or equal along every hierarchy of
  ``q_t`` (``G_e ⪰_H G_t``),
* every predicate ``q_e`` was filtered by subsumes a predicate of
  ``q_t`` on the same level (the cached rows are a superset of the rows
  the target needs),
* the remaining target predicates are evaluable on the cached
  coordinates (their level is reachable by roll-up from an entry level),
* every requested measure re-aggregates soundly — the same distributive
  rule as :mod:`repro.olap.materialized` (``sum/min/max`` re-aggregate as
  themselves, ``count`` by summing); ``avg`` only when the group-by sets
  are *equal*, where every output group is a single cached row and
  re-aggregation is the identity.

Derivation then never touches the fact table: cached coordinates roll up
member-by-member through the engine's rollup resolver, residual
predicates filter with :meth:`Predicate.mask`, and the re-grouping runs
through the same :func:`~repro.engine.kernels.combine_codes` /
``_aggregate`` kernels as cold execution.  Because both paths order
groups lexicographically by member value, a derived result has the same
row order as a cold one.

**Bit-exactness policy.**  A derived answer must be bit-identical to the
cold one, so re-aggregations that could *re-associate* floating-point
additions are only taken when provably exact: ``min``/``max`` pick
existing values, ``count`` sums integral counts, equal group-by sets
make every output group a single cached row (identity), and ``sum``
over strictly finer groups is accepted only when the cached partial
sums are integral and small enough that integer addition is exact in
float64.  Anything else bails out to cold execution — slower, never
wrong by a bit.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Tuple

import numpy as np

from ..core.query import CubeQuery, Predicate, PredicateOp
from ..engine.executor import ResultSet, _aggregate, _hash_encode_with_mapping
from ..engine.kernels import combine_codes, encode_column, sums_exactly
from ..olap.materialized import REAGGREGATION_OPS

RollupResolver = Callable[[str, str, str], Optional[Mapping]]
"""``(source, fine_level, coarse_level) -> {fine_member: coarse_member}``.

Returns ``None`` when the engine cannot build the member roll-up (e.g. a
degenerate level with no hydrated hierarchy), which makes derivation
bail out and the query fall back to cold execution.
"""


class QueryMeta:
    """OLAP-level semantics of a pushed aggregate query.

    The physical :class:`~repro.engine.query.AggregateQuery` has no
    hierarchy knowledge, so the OLAP layer annotates each query it builds
    with the originating :class:`~repro.core.query.CubeQuery` plus the set
    of base tables its star touches (for invalidation).
    """

    __slots__ = ("query", "base_tables")

    def __init__(self, query: CubeQuery, base_tables: FrozenSet[str]):
        self.query = query
        self.base_tables = base_tables

    @property
    def source(self) -> str:
        return self.query.source

    @property
    def measure_names(self) -> Tuple[str, ...]:
        return self.query.measures or self.query.schema.measure_names()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryMeta({self.query!r})"


def predicate_subsumes(broader: Predicate, narrower: Predicate) -> bool:
    """Whether every member accepted by ``narrower`` satisfies ``broader``.

    Only same-level predicates are compared (cross-level implication via
    roll-up is deliberately out of scope — conservative, always sound).
    """
    if broader.level != narrower.level:
        return False
    if broader == narrower:
        return True
    members = narrower.member_set()
    if members is not None:
        return all(broader.matches(member) for member in members)
    if broader.op is PredicateOp.RANGE and narrower.op is PredicateOp.RANGE:
        return (
            broader.values[0] <= narrower.values[0]
            and narrower.values[1] <= broader.values[1]
        )
    return False


def can_derive(target: QueryMeta, entry: QueryMeta) -> bool:
    """Static usability check: can ``entry``'s result answer ``target``?

    Pure metadata reasoning — no roll-up maps are built, so this is cheap
    enough for candidate scans and for the cost model's warm-probe.  The
    execution step can still bail out (returning ``None``) when a member
    roll-up proves unbuildable.
    """
    if entry.source != target.source:
        return False
    entry_gb = entry.query.group_by
    target_gb = target.query.group_by
    if not entry_gb.rolls_up_to(target_gb):
        return False
    schema = target.query.schema

    # Measures: requested ⊆ cached, each re-aggregatable.
    cached = set(entry.measure_names)
    equal_sets = set(entry_gb.levels) == set(target_gb.levels)
    for name in target.measure_names:
        if name not in cached:
            return False
        op = schema.measure(name).op
        if op not in REAGGREGATION_OPS and not equal_sets:
            return False

    # Every entry predicate must be implied by a target predicate on the
    # same level, else the cached rows are missing data the target needs.
    target_preds = target.query.predicates
    for entry_pred in entry.query.predicates:
        covering = next(
            (p for p in target_preds if p.level == entry_pred.level), None
        )
        if covering is None or not predicate_subsumes(entry_pred, covering):
            return False

    # Residual target predicates must be evaluable on cached coordinates.
    entry_hierarchies = set(entry_gb.hierarchy_names)
    for target_pred in target_preds:
        if any(p == target_pred for p in entry.query.predicates):
            continue
        hierarchy = schema.hierarchy_of_level(target_pred.level)
        if hierarchy.name not in entry_hierarchies:
            return False
        entry_level = entry_gb.level_for_hierarchy(hierarchy.name)
        if not hierarchy.rolls_up_to(entry_level, target_pred.level):
            return False
    return True


def derive_result(
    target: QueryMeta,
    entry: QueryMeta,
    cached: ResultSet,
    rollup: RollupResolver,
) -> Optional[ResultSet]:
    """Compute ``target``'s result from ``entry``'s cached result.

    Assumes :func:`can_derive` holds.  Returns ``None`` when a needed
    member roll-up cannot be built (the caller falls back to cold
    execution).
    """
    schema = target.query.schema
    entry_gb = entry.query.group_by
    target_gb = target.query.group_by
    source = target.source
    equal_sets = set(entry_gb.levels) == set(target_gb.levels)

    # Exactness gate, checked before any roll-up work: a strictly-finer
    # sum is only taken when the cached partial sums re-add exactly.  Any
    # row subset of an exactly-summable column is itself exactly summable,
    # so testing the full column here is conservative and spares encoding
    # a large entry just to bail afterwards.
    if not equal_sets:
        for name in target.measure_names:
            if REAGGREGATION_OPS.get(schema.measure(name).op) == "sum":
                if not _sums_exactly(cached.column(name)):
                    return None  # re-associating float sums drifts by ulps

    def column_at(level: str) -> Optional[np.ndarray]:
        hierarchy = schema.hierarchy_of_level(level)
        entry_level = entry_gb.level_for_hierarchy(hierarchy.name)
        column = cached.column(entry_level)
        if entry_level == level:
            return column
        return _rollup_column(column, rollup(source, entry_level, level))

    # Residual predicate mask over the cached rows.
    mask: Optional[np.ndarray] = None
    for predicate in target.query.predicates:
        if any(p == predicate for p in entry.query.predicates):
            continue  # already fully applied when the entry was computed
        column = column_at(predicate.level)
        if column is None:
            return None
        part = predicate.mask(column)
        mask = part if mask is None else (mask & part)

    # Roll cached coordinates up to the target levels, then re-group.
    level_columns: List[np.ndarray] = []
    code_columns: List[Tuple[np.ndarray, int]] = []
    for level in target_gb.levels:
        column = column_at(level)
        if column is None:
            return None
        if mask is not None:
            column = column[mask]
        try:
            code_columns.append(encode_column(column))
        except TypeError:  # un-orderable mixed member types
            return None
        level_columns.append(column)
    n_rows = int(mask.sum()) if mask is not None else len(cached)
    group_ids, group_count, first_rows = combine_codes(code_columns, n_rows)

    columns: Dict[str, np.ndarray] = {}
    for level, column in zip(target_gb.levels, level_columns):
        columns[level] = column[first_rows]
    for name in target.measure_names:
        op = schema.measure(name).op
        # For equal group-by sets every output group is one cached row, so
        # even avg re-aggregates as the identity (avg of a singleton).
        reagg = REAGGREGATION_OPS.get(op, op if equal_sets else None)
        if reagg is None:  # pragma: no cover - excluded by can_derive
            return None
        values = cached.column(name)
        if mask is not None:
            values = values[mask]
        columns[name] = _aggregate(group_ids, group_count, values, reagg)
    return ResultSet(columns)


# The float-sum exactness gate is shared with the fused-scan path of the
# engine executor, which applies it at fact-row granularity; here it gates
# cached *partial* sums before re-association.
_sums_exactly = sums_exactly


def _rollup_column(
    column: np.ndarray, mapping: Optional[Mapping]
) -> Optional[np.ndarray]:
    """Map a member column through a fine→coarse roll-up, vectorised.

    Only distinct members go through the mapping; the (result-sized)
    column is then rebuilt by gather.  ``None`` when the roll-up is
    unavailable or a member is missing from it.
    """
    if mapping is None:
        return None
    codes, code_of = _hash_encode_with_mapping(column)
    lut = np.empty(max(len(code_of), 1), dtype=object)
    for member, code in code_of.items():
        rolled = mapping.get(member, _MISSING)
        if rolled is _MISSING:
            return None
        lut[code] = rolled
    return lut[codes]


_MISSING = object()
