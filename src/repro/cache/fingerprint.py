"""Canonical fingerprints of pushed aggregate queries.

Two pushed gets that are *semantically* the same query must memoize under
the same key, even when the session spelled them differently: predicates
listed in another order, an ``IN`` set enumerated differently, a one-member
``IN`` written as ``=``.  The fingerprint normalises all of that:

* joins are sorted by ``(table, fact_fk, dim_key)``;
* predicates are normalised (``EQ`` folds into a one-member ``IN``, ``IN``
  member lists sort by ``repr``) and then sorted by ``(table, column, ...)``;
* group-by columns and aggregates are sorted by alias.

The fingerprint deliberately *drops the textual order* of group-by columns
and aggregates, because order only affects result layout, not content; the
cache entry keeps the original query so an exact hit can verify the layout
matches, and order-permuted requests fall through to the (cheap) derivation
path, which re-groups at result size.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..core.query import Predicate, PredicateOp
from ..engine.query import (
    AggregateQuery,
    ColumnPredicate,
    DrillAcrossQuery,
    PivotQuery,
)

Fingerprint = Tuple
"""An opaque, hashable fingerprint value."""

CacheableQuery = Union[AggregateQuery, DrillAcrossQuery, PivotQuery]
"""Every pushed query shape the cache memoizes.

Aggregate queries additionally participate in derivation reuse; the
composite drill-across/pivot shapes are exact-reuse only (their
aggregate *sides* still derive individually, since the executor routes
them back through ``execute_aggregate``)."""


def normalize_predicate(predicate: Predicate) -> Tuple:
    """The canonical ``(op, values)`` form of a level predicate.

    Equality folds into a one-member ``IN`` and ``IN`` member lists sort by
    ``repr`` (the same tie-break :meth:`Predicate.isin` uses), so
    ``l = 'a'``, ``l IN {'a'}`` and differently-ordered ``IN`` sets all
    produce the same form.  Ranges stay as-is: their bounds are ordered by
    construction.
    """
    if predicate.op in (PredicateOp.EQ, PredicateOp.IN):
        members = tuple(sorted(set(predicate.values), key=repr))
        return ("in", members)
    return ("between", tuple(predicate.values))


def _predicate_key(column_predicate: ColumnPredicate) -> Tuple:
    return (
        column_predicate.table,
        column_predicate.column,
        normalize_predicate(column_predicate.predicate),
    )


def fingerprint_query(query: CacheableQuery) -> Fingerprint:
    """The stable canonical fingerprint of a pushed query.

    Composite queries (drill-across, pivot) fingerprint structurally over
    their aggregate parts plus their own parameters; their parameter
    order is kept significant where it fixes the output column layout.
    """
    if isinstance(query, DrillAcrossQuery):
        return (
            "drill_across",
            fingerprint_query(query.left),
            fingerprint_query(query.right),
            query.join_on,
            tuple(sorted(query.renames.items())),
            query.outer,
            query.multi,
        )
    if isinstance(query, PivotQuery):
        return (
            "pivot",
            fingerprint_query(query.base),
            query.pivot_alias,
            query.reference,
            tuple(
                (member, tuple(renames.items()))
                for member, renames in query.members.items()
            ),
            query.require_all,
        )
    joins = tuple(
        sorted((join.table, join.fact_fk, join.dim_key) for join in query.joins)
    )
    where = tuple(sorted((_predicate_key(cp) for cp in query.where), key=repr))
    group_by = tuple(
        sorted((gb.alias, gb.table, gb.column) for gb in query.group_by)
    )
    aggregates = tuple(
        sorted((agg.alias, agg.op, agg.column) for agg in query.aggregates)
    )
    return ("aggregate", query.fact, joins, where, group_by, aggregates)
