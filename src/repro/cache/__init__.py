"""Semantic result cache for interactive assess sessions.

Assess sessions re-query the same detailed cube over and over — the
target cube recurs across statements, sibling and past benchmarks hit
the same fact table at related group-by sets — yet each pushed get would
otherwise re-scan the fact table.  This package memoizes aggregate
results and reuses them two ways:

* **exact reuse** — canonical query fingerprints
  (:mod:`~repro.cache.fingerprint`) make spelled-differently-but-equal
  queries share one cache slot;
* **derivation reuse** — a query answerable from a cached *finer* result
  is re-aggregated from it (:mod:`~repro.cache.derive`), so drilling
  from ``month × product`` up to ``year`` never touches the fact table.

Wiring: :class:`~repro.olap.engine.MultidimensionalEngine` owns a
:class:`SemanticResultCache`, executes through a
:class:`CachingEngineExecutor`, annotates every query it builds with
:class:`QueryMeta`, and invalidates by table on catalog changes.  See
``docs/performance.md`` for the design rationale and the ``repro cache``
CLI subcommand for live statistics.
"""

from .derive import QueryMeta, can_derive, derive_result, predicate_subsumes
from .executor import CachingEngineExecutor
from .fingerprint import fingerprint_query, normalize_predicate
from .store import CacheEntry, CacheStats, SemanticResultCache

__all__ = [
    "CacheEntry",
    "CacheStats",
    "CachingEngineExecutor",
    "QueryMeta",
    "SemanticResultCache",
    "can_derive",
    "derive_result",
    "fingerprint_query",
    "normalize_predicate",
    "predicate_subsumes",
]
