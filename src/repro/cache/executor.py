"""The caching engine executor: the cache's seat in the execution path.

:class:`CachingEngineExecutor` subclasses the vectorised
:class:`~repro.engine.executor.EngineExecutor` and intercepts every
pushed query shape:

* ``execute_aggregate`` — the choke point all *gets* flow through,
  including the two inner aggregates of a drill-across, the base
  aggregate of a pivot, and view construction in ``materialize()``.
  Aggregate results participate in both exact and derivation reuse.
* ``execute_drill_across`` / ``execute_pivot`` — the composite JOP/POP
  queries.  Their results are memoized for exact reuse, because on
  repeated statements the join/pivot post-processing dominates once the
  aggregate sides are warm.  A cold composite still routes its sides
  through ``execute_aggregate`` (method dispatch lands back here), so
  the sides are individually cached and derivable either way.

The executor stays a drop-in replacement: with the cache disabled
(``cache.enabled = False``) every call falls straight through to the
superclass, which the experiment runner uses to keep the paper's cold
timings honest.
"""

from __future__ import annotations

from typing import Optional

from ..engine.catalog import Catalog
from ..engine.executor import EngineExecutor, ResultSet
from ..engine.query import AggregateQuery, DrillAcrossQuery, PivotQuery
from ..obs.metrics import MetricsRegistry
from .store import SemanticResultCache


class CachingEngineExecutor(EngineExecutor):
    """An engine executor that consults a semantic result cache."""

    def __init__(
        self,
        catalog: Catalog,
        cache: SemanticResultCache,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(catalog, metrics)
        self.cache = cache

    def execute_aggregate(self, query: AggregateQuery) -> ResultSet:
        if not self.cache.enabled:
            return super().execute_aggregate(query)
        cached = self.cache.fetch(query)
        if cached is not None:
            return cached
        result = super().execute_aggregate(query)
        self.cache.store(query, result)
        return result

    def execute_drill_across(self, query: DrillAcrossQuery) -> ResultSet:
        if not self.cache.enabled:
            return super().execute_drill_across(query)
        cached = self.cache.fetch(query)
        if cached is not None:
            return cached
        result = super().execute_drill_across(query)
        self.cache.store(query, result)
        return result

    def execute_pivot(self, query: PivotQuery) -> ResultSet:
        if not self.cache.enabled:
            return super().execute_pivot(query)
        cached = self.cache.fetch(query)
        if cached is not None:
            return cached
        result = super().execute_pivot(query)
        self.cache.store(query, result)
        return result
