"""Build assessable cubes from flat (denormalized) data.

Real analyses rarely start from a ready star schema.  This module turns a
flat table — one row per event, with level and measure columns side by
side, e.g. a CSV export — into everything an
:class:`~repro.olap.MultidimensionalEngine` needs:

* :func:`table_from_csv` loads a CSV file into a columnar
  :class:`~repro.engine.table.Table` with type inference;
* :func:`star_from_flat` normalises a flat table into a star schema — one
  dimension table per declared hierarchy (distinct level combinations +
  dense surrogate keys), a fact table of FK + measure columns — and returns
  the registered cube, ready for assess statements.

Example::

    flat = table_from_csv("sales.csv")
    engine = MultidimensionalEngine(Catalog())
    star_from_flat(
        engine, "SALES", flat,
        hierarchies={"Product": ["product", "type"], "Store": ["store", "country"]},
        measures={"quantity": "sum", "price": "avg"},
    )
    AssessSession(engine).assess("with SALES by type assess quantity labels quartiles")
"""

from __future__ import annotations

import csv
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..core.errors import EngineError, SchemaError
from ..core.hierarchy import Hierarchy, Level
from ..core.schema import CubeSchema, Measure
from ..engine.star import DimensionBinding, StarSchema
from ..engine.table import Table
from ..olap.engine import MultidimensionalEngine
from ..olap.metadata import hydrate_hierarchies


def table_from_csv(path: str, name: str = "", delimiter: str = ",") -> Table:
    """Load a CSV file (with header row) into a columnar table.

    Column types are inferred: a column whose every non-empty value parses
    as a number becomes float64; everything else stays a string column.
    Empty numeric cells become NaN; empty string cells become ``""``.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise EngineError(f"CSV file {path!r} is empty") from None
        rows = list(reader)
    if not header:
        raise EngineError(f"CSV file {path!r} has no header columns")
    columns: Dict[str, List[str]] = {column: [] for column in header}
    for line_number, row in enumerate(rows, start=2):
        if len(row) != len(header):
            raise EngineError(
                f"CSV file {path!r} line {line_number}: expected "
                f"{len(header)} fields, found {len(row)}"
            )
        for column, value in zip(header, row):
            columns[column].append(value)
    table_name = name or _basename_stem(path)
    return Table(
        table_name,
        {column: _infer_column(values) for column, values in columns.items()},
    )


def _basename_stem(path: str) -> str:
    import os

    stem, _ = os.path.splitext(os.path.basename(path))
    return stem or "csv_table"


def _infer_column(values: Sequence[str]) -> np.ndarray:
    numeric: List[float] = []
    for value in values:
        text = value.strip()
        if not text:
            numeric.append(float("nan"))
            continue
        try:
            numeric.append(float(text))
        except ValueError:
            array = np.empty(len(values), dtype=object)
            array[:] = values
            return array
    return np.asarray(numeric, dtype=np.float64)


def star_from_flat(
    engine: MultidimensionalEngine,
    cube_name: str,
    flat: Table,
    hierarchies: Mapping[str, Sequence[str]],
    measures: Mapping[str, str],
    hydrate: bool = True,
) -> Tuple[CubeSchema, StarSchema]:
    """Normalise a flat table into a star schema and register the cube.

    ``hierarchies`` maps hierarchy names to their level columns, finest
    first; every listed column must exist in ``flat``.  ``measures`` maps
    measure columns to aggregation operators.  Each hierarchy becomes a
    dimension table holding the distinct level combinations (validated for
    functional dependency: one parent per member), keyed by dense surrogate
    keys the fact table references.

    Returns ``(cube_schema, star_schema)``; the cube is registered on the
    engine under ``cube_name`` and (optionally) its hierarchies hydrated.
    """
    for hierarchy_name, levels in hierarchies.items():
        if not levels:
            raise SchemaError(f"hierarchy {hierarchy_name!r} needs at least one level")
        for level in levels:
            if not flat.has_column(level):
                raise EngineError(
                    f"flat table {flat.name!r} has no column {level!r} "
                    f"(hierarchy {hierarchy_name!r})"
                )
    for measure_name in measures:
        if not flat.has_column(measure_name):
            raise EngineError(
                f"flat table {flat.name!r} has no measure column {measure_name!r}"
            )

    n_rows = len(flat)
    fact_columns: Dict[str, np.ndarray] = {}
    bindings: List[DimensionBinding] = []

    for hierarchy_name, levels in hierarchies.items():
        level_columns = [flat.column(level) for level in levels]
        keys: Dict[Tuple, int] = {}
        fk = np.empty(n_rows, dtype=np.int64)
        for row in range(n_rows):
            key = tuple(column[row] for column in level_columns)
            slot = keys.get(key)
            if slot is None:
                slot = len(keys)
                keys[key] = slot
            fk[row] = slot

        _check_functional_dependencies(hierarchy_name, levels, keys)

        prefix = hierarchy_name.lower()
        dim_name = f"{cube_name.lower()}_{prefix}_dim"
        dim_columns: Dict[str, np.ndarray] = {
            f"{prefix}_key": np.arange(len(keys), dtype=np.int64)
        }
        ordered_keys = sorted(keys.items(), key=lambda item: item[1])
        for position, level in enumerate(levels):
            column = np.empty(len(keys), dtype=object)
            for key, slot in ordered_keys:
                column[slot] = key[position]
            dim_columns[f"{prefix}_{level}"] = column
        engine.catalog.register(Table(dim_name, dim_columns))

        fk_column = f"{prefix}_fk"
        fact_columns[fk_column] = fk
        bindings.append(
            DimensionBinding(
                hierarchy_name,
                dim_name,
                fk_column,
                f"{prefix}_key",
                {level: f"{prefix}_{level}" for level in levels},
            )
        )

    measure_columns: Dict[str, str] = {}
    for measure_name in measures:
        column = flat.column(measure_name)
        if column.dtype == object:
            raise EngineError(
                f"measure column {measure_name!r} is not numeric"
            )
        fact_columns[measure_name] = column.astype(np.float64, copy=False)
        measure_columns[measure_name] = measure_name

    fact_name = f"{cube_name.lower()}_fact"
    engine.catalog.register(Table(fact_name, fact_columns))

    schema = CubeSchema(
        cube_name,
        [
            Hierarchy(name, [Level(level) for level in levels])
            for name, levels in hierarchies.items()
        ],
        [Measure(name, op) for name, op in measures.items()],
    )
    star = StarSchema(
        name=cube_name,
        fact_table=fact_name,
        dimensions=bindings,
        measure_columns=measure_columns,
    )
    engine.register_cube(cube_name, schema, star)
    if hydrate:
        hydrate_hierarchies(schema, star, engine.catalog)
    return schema, star


def _check_functional_dependencies(
    hierarchy_name: str, levels: Sequence[str], keys: Dict[Tuple, int]
) -> None:
    """Each finer member must have exactly one ancestor combination."""
    for depth in range(len(levels) - 1):
        parent_of: Dict = {}
        for key in keys:
            child, parent = key[depth], key[depth + 1]
            known = parent_of.get(child)
            if known is None:
                parent_of[child] = parent
            elif known != parent:
                raise SchemaError(
                    f"hierarchy {hierarchy_name!r} is not functional: member "
                    f"{child!r} of level {levels[depth]!r} has parents "
                    f"{known!r} and {parent!r}"
                )
