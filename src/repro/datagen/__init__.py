"""Data generation: the paper's SALES example, SSB-style stars, random
cubes, and flat-file ingestion."""

from .flat import star_from_flat, table_from_csv
from .random_cube import (
    brute_force_rollup,
    random_detailed_cube,
    random_hierarchy,
    random_schema,
)
from .sales import build_sales_catalog, sales_engine, sales_schema
from .ssb import (
    budget_schema,
    build_budget_table,
    build_ssb_catalog,
    dimension_cardinalities,
    ssb_engine,
    ssb_engine_from_catalog,
    ssb_schema,
    ssb_star,
)

__all__ = [
    "brute_force_rollup",
    "budget_schema",
    "build_budget_table",
    "build_sales_catalog",
    "build_ssb_catalog",
    "dimension_cardinalities",
    "random_detailed_cube",
    "random_hierarchy",
    "random_schema",
    "sales_engine",
    "sales_schema",
    "star_from_flat",
    "ssb_engine",
    "ssb_engine_from_catalog",
    "ssb_schema",
    "ssb_star",
    "table_from_csv",
]
