"""A seeded, vectorised Star Schema Benchmark (SSB) style generator.

The paper's experiments (Section 6) run on SSB cubes at scale factors
1/10/100 (6·10⁶ … 6·10⁸ fact rows) stored in Oracle.  This module generates
the same star layout — LINEORDER fact plus CUSTOMER / SUPPLIER / PART / DATE
dimensions, with the four hierarchies the paper uses::

    date ⪰ month ⪰ year
    customer ⪰ c_city ⪰ c_nation ⪰ c_region
    supplier ⪰ s_city ⪰ s_nation ⪰ s_region
    part ⪰ brand ⪰ category ⪰ mfgr

at any fact cardinality.  The benchmark harness uses a scaled-down ladder
that preserves SSB's 1:10:100 ratios (see DESIGN.md §2); dimension
cardinalities scale with the fact table the way dbgen's do (customers ≈
rows/200, suppliers ≈ rows/3000, parts ≈ rows/30 capped at 200k).

Generation is fully vectorised (NumPy) and deterministic given the seed.
:func:`build_budget_table` additionally derives the external-benchmark cube
(expected revenue by month and category) used by the External intention.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.groupby import GroupBySet
from ..core.hierarchy import Hierarchy, Level
from ..core.query import CubeQuery
from ..core.schema import CubeSchema, Measure
from ..engine.catalog import Catalog
from ..engine.columns import DEFAULT_ZONE_ROWS
from ..engine.persist import PartitionedStoreWriter
from ..engine.star import DimensionBinding, StarSchema
from ..engine.table import Table
from ..olap.engine import MultidimensionalEngine

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS_PER_REGION = 5
CITIES_PER_NATION = 10
YEARS = [str(year) for year in range(1992, 1999)]
DAYS_PER_MONTH = 28  # regular synthetic calendar

_NATION_NAMES = [
    "ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE",
    "ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES",
    "CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM",
    "FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM",
    "EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA",
]


def ssb_schema() -> CubeSchema:
    """The SSB cube schema with the paper's four hierarchies."""
    h_date = Hierarchy("Date", [Level("date"), Level("month"), Level("year")])
    h_customer = Hierarchy(
        "Customer",
        [Level("customer"), Level("c_city"), Level("c_nation"), Level("c_region")],
    )
    h_supplier = Hierarchy(
        "Supplier",
        [Level("supplier"), Level("s_city"), Level("s_nation"), Level("s_region")],
    )
    h_part = Hierarchy(
        "Part", [Level("part"), Level("brand"), Level("category"), Level("mfgr")]
    )
    measures = [
        Measure("quantity", "sum"),
        Measure("extendedprice", "sum"),
        Measure("revenue", "sum"),
        Measure("supplycost", "sum"),
        Measure("discount", "avg"),
    ]
    return CubeSchema("SSB", [h_date, h_customer, h_supplier, h_part], measures)


def _nations_and_cities() -> Tuple[List[str], List[str], List[str], List[str]]:
    """Flattened (city, nation-of-city, nation, region-of-nation) lists."""
    nations, nation_regions = [], []
    for region_index, region in enumerate(REGIONS):
        for i in range(NATIONS_PER_REGION):
            nations.append(_NATION_NAMES[region_index * NATIONS_PER_REGION + i])
            nation_regions.append(region)
    cities, city_nations = [], []
    for nation in nations:
        stem = nation.replace(" ", "")[:9].ljust(9, "_")
        for i in range(CITIES_PER_NATION):
            cities.append(f"{stem}{i}")
            city_nations.append(nation)
    return cities, city_nations, nations, nation_regions


def _date_dimension() -> Table:
    dates, months, years = [], [], []
    for year in YEARS:
        for month_number in range(1, 13):
            month = f"{year}-{month_number:02d}"
            for day in range(1, DAYS_PER_MONTH + 1):
                dates.append(f"{month}-{day:02d}")
                months.append(month)
                years.append(year)
    return Table(
        "ssb_date",
        {
            "d_datekey": np.arange(len(dates), dtype=np.int64),
            "d_date": np.array(dates, dtype=object),
            "d_month": np.array(months, dtype=object),
            "d_year": np.array(years, dtype=object),
        },
    )


def _geo_dimension(
    name: str, prefix: str, count: int, rng: np.random.Generator
) -> Table:
    cities, city_nations, nations, nation_regions = _nations_and_cities()
    nation_region = dict(zip(nations, nation_regions))
    city_index = rng.integers(0, len(cities), count)
    city_column = np.array(cities, dtype=object)[city_index]
    nation_column = np.array(city_nations, dtype=object)[city_index]
    region_column = np.array(
        [nation_region[nation] for nation in nation_column], dtype=object
    )
    entity = np.array(
        [f"{prefix}#{i:09d}" for i in range(count)], dtype=object
    )
    return Table(
        name,
        {
            f"{prefix[0].lower()}_key": np.arange(count, dtype=np.int64),
            f"{prefix[0].lower()}_name": entity,
            f"{prefix[0].lower()}_city": city_column,
            f"{prefix[0].lower()}_nation": nation_column,
            f"{prefix[0].lower()}_region": region_column,
        },
    )


def _part_dimension(count: int, rng: np.random.Generator) -> Table:
    mfgr_index = rng.integers(1, 6, count)
    category_index = rng.integers(1, 6, count)
    brand_index = rng.integers(1, 41, count)
    mfgr = np.array([f"MFGR#{m}" for m in mfgr_index], dtype=object)
    category = np.array(
        [f"MFGR#{m}{c}" for m, c in zip(mfgr_index, category_index)], dtype=object
    )
    brand = np.array(
        [
            f"MFGR#{m}{c}{b:02d}"
            for m, c, b in zip(mfgr_index, category_index, brand_index)
        ],
        dtype=object,
    )
    name = np.array([f"Part#{i:09d}" for i in range(count)], dtype=object)
    price = np.round(rng.uniform(90.0, 2_000.0, count), 2)
    return Table(
        "ssb_part",
        {
            "p_partkey": np.arange(count, dtype=np.int64),
            "p_name": name,
            "p_brand1": brand,
            "p_category": category,
            "p_mfgr": mfgr,
            "p_price": price,
        },
    )


def dimension_cardinalities(lineorder_rows: int) -> Tuple[int, int, int]:
    """dbgen-like dimension sizes for a given fact cardinality.

    Returns ``(customers, suppliers, parts)``.
    """
    customers = max(200, lineorder_rows // 200)
    suppliers = max(50, lineorder_rows // 3000)
    parts = min(200_000, max(280, lineorder_rows // 30))
    return customers, suppliers, parts


def build_ssb_catalog(
    lineorder_rows: int = 60_000,
    seed: int = 7,
    catalog=None,
) -> Tuple[Catalog, CubeSchema, StarSchema]:
    """Generate the SSB star schema into a catalog.

    Returns ``(catalog, cube_schema, star_schema)``.
    """
    rng = np.random.default_rng(seed)
    catalog = catalog if catalog is not None else Catalog()

    date_dim = catalog.register(_date_dimension())
    customers, suppliers, parts = dimension_cardinalities(lineorder_rows)
    customer_dim = catalog.register(_geo_dimension("ssb_customer", "Customer", customers, rng))
    supplier_dim = catalog.register(_geo_dimension("ssb_supplier", "Supplier", suppliers, rng))
    part_dim = catalog.register(_part_dimension(parts, rng))

    lo_datekey = rng.integers(0, len(date_dim), lineorder_rows)
    lo_custkey = rng.integers(0, customers, lineorder_rows)
    lo_suppkey = rng.integers(0, suppliers, lineorder_rows)
    lo_partkey = rng.integers(0, parts, lineorder_rows)

    quantity = rng.integers(1, 51, lineorder_rows).astype(np.float64)
    discount = rng.integers(0, 11, lineorder_rows).astype(np.float64)
    part_price = part_dim.column("p_price")[lo_partkey]
    extendedprice = np.round(quantity * part_price, 2)
    revenue = np.round(extendedprice * (100.0 - discount) / 100.0, 2)
    supplycost = np.round(0.6 * part_price * quantity * rng.uniform(0.9, 1.1, lineorder_rows), 2)

    catalog.register(
        Table(
            "ssb_lineorder",
            {
                "lo_datekey": lo_datekey.astype(np.int64),
                "lo_custkey": lo_custkey.astype(np.int64),
                "lo_suppkey": lo_suppkey.astype(np.int64),
                "lo_partkey": lo_partkey.astype(np.int64),
                "lo_quantity": quantity,
                "lo_extendedprice": extendedprice,
                "lo_discount": discount,
                "lo_revenue": revenue,
                "lo_supplycost": supplycost,
            },
        )
    )

    schema, star = ssb_star()
    return catalog, schema, star


DEFAULT_PARTITION_ROWS = 1 << 23
"""Fact rows per store partition for out-of-core generation (128 zones)."""


def _fact_partition(
    chunk_index: int,
    rows: int,
    day_lo: int,
    day_hi: int,
    seed: int,
    part_price: np.ndarray,
    customers: int,
    suppliers: int,
) -> Table:
    """Generate one datekey-range partition of the LINEORDER fact.

    Deterministic per ``(seed, chunk_index)`` and independent of every
    other chunk, so partitions can be generated (and re-generated) one at
    a time without holding the fact in RAM.  Datekeys are drawn from the
    partition's day range and sorted, which makes the whole fact globally
    clustered by ``lo_datekey`` — partitions cover ascending, disjoint day
    ranges.  Foreign keys are int32 (the ladder's cardinalities all fit),
    measures match :func:`build_ssb_catalog`'s formulas.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, 104_729, chunk_index])
    )
    parts = len(part_price)
    lo_datekey = np.sort(rng.integers(day_lo, day_hi, rows)).astype(np.int32)
    lo_custkey = rng.integers(0, customers, rows).astype(np.int32)
    lo_suppkey = rng.integers(0, suppliers, rows).astype(np.int32)
    lo_partkey = rng.integers(0, parts, rows).astype(np.int32)
    quantity = rng.integers(1, 51, rows).astype(np.float64)
    discount = rng.integers(0, 11, rows).astype(np.float64)
    price = part_price[lo_partkey]
    extendedprice = np.round(quantity * price, 2)
    revenue = np.round(extendedprice * (100.0 - discount) / 100.0, 2)
    supplycost = np.round(
        0.6 * price * quantity * rng.uniform(0.9, 1.1, rows), 2
    )
    return Table(
        "ssb_lineorder",
        {
            "lo_datekey": lo_datekey,
            "lo_custkey": lo_custkey,
            "lo_suppkey": lo_suppkey,
            "lo_partkey": lo_partkey,
            "lo_quantity": quantity,
            "lo_extendedprice": extendedprice,
            "lo_discount": discount,
            "lo_revenue": revenue,
            "lo_supplycost": supplycost,
        },
    )


def build_ssb_store(
    path: str,
    lineorder_rows: int,
    seed: int = 7,
    *,
    zone_rows: int = DEFAULT_ZONE_ROWS,
    partition_rows: Optional[int] = None,
    with_budget: bool = True,
    noise: float = 0.1,
    progress: Optional[Callable[[str], None]] = None,
) -> str:
    """Generate an SSB column store partition by partition, out of core.

    The in-RAM :func:`build_ssb_catalog` materialises the whole fact before
    anything hits disk — a dead end past a few hundred million rows.  This
    builder writes a *partitioned* v2 store instead: dimensions first, then
    the fact in ``partition_rows``-row chunks (each a multiple of
    ``zone_rows``, so the loader can stitch per-partition zone maps into
    global ones), each chunk encoded and flushed before the next exists.
    Peak RAM is the dimensions plus one partition, independent of scale —
    this is the SF100 rung of the ladder (6·10⁸ rows, the paper's largest).

    The BUDGET external cube is accumulated chunk by chunk during
    generation (a dense month×category revenue tally) instead of queried
    afterwards, so building it costs no extra pass over the fact.

    Returns ``path``.  ``load_catalog`` + :func:`ssb_engine_from_catalog`
    reopen the store with the fact served through lazily-opened
    per-partition columns.
    """
    say = progress if progress is not None else (lambda message: None)
    if partition_rows is None:
        partition_rows = DEFAULT_PARTITION_ROWS
    # Every partition but the last must be zone-aligned (loader contract).
    partition_rows = max(zone_rows, (partition_rows // zone_rows) * zone_rows)

    rng = np.random.default_rng(seed)
    date_dim = _date_dimension()
    customers, suppliers, parts = dimension_cardinalities(lineorder_rows)
    customer_dim = _geo_dimension("ssb_customer", "Customer", customers, rng)
    supplier_dim = _geo_dimension("ssb_supplier", "Supplier", suppliers, rng)
    part_dim = _part_dimension(parts, rng)
    part_price = part_dim.column("p_price")
    days = len(date_dim)

    writer = PartitionedStoreWriter(path, zone_rows=zone_rows)
    for dimension in (date_dim, customer_dim, supplier_dim, part_dim):
        writer.add_table(dimension)
        say(f"dimension {dimension.name}: {len(dimension):,} rows")

    n_chunks = max(1, -(-lineorder_rows // partition_rows))
    day_edges = np.linspace(0, days, n_chunks + 1).astype(np.int64)
    # Budget tally at the External intention's (month, part) group-by
    # (experiments.statements.BUDGET_LEVELS): revenue summed into a dense
    # month x part grid.  Part names are zero-padded, so their sorted
    # order is the part-key order and the grid unravels into the same
    # (month, part) coordinate order an engine query would produce.
    months = np.unique(date_dim.column("d_month").astype(str))
    part_names = part_dim.column("p_name")
    budget_sums = np.zeros(len(months) * parts, dtype=np.float64)
    budget_counts = np.zeros(len(months) * parts, dtype=np.int64)

    writer.begin_partitioned("ssb_lineorder", clustered_by="lo_datekey")
    done = 0
    for chunk_index in range(n_chunks):
        rows = min(partition_rows, lineorder_rows - done)
        day_lo = int(day_edges[chunk_index])
        day_hi = max(int(day_edges[chunk_index + 1]), day_lo + 1)
        chunk = _fact_partition(
            chunk_index, rows, day_lo, day_hi, seed,
            part_price, customers, suppliers,
        )
        if with_budget:
            cell = (
                chunk.column("lo_datekey").astype(np.int64) // DAYS_PER_MONTH
            ) * parts + chunk.column("lo_partkey")
            budget_sums += np.bincount(
                cell, weights=chunk.column("lo_revenue"),
                minlength=len(budget_sums),
            )
            budget_counts += np.bincount(cell, minlength=len(budget_counts))
        writer.append_partition(chunk)
        done += rows
        say(f"partition {chunk_index + 1}/{n_chunks}: "
            f"{done:,}/{lineorder_rows:,} rows")

    if with_budget:
        occupied = np.flatnonzero(budget_counts)
        noise_rng = np.random.default_rng(11)
        expected = budget_sums[occupied] * noise_rng.normal(
            1.0, noise, len(occupied)
        )
        writer.add_table(
            Table(
                "ssb_budget_budget",
                {
                    "b_month": months[occupied // parts].astype(object),
                    "b_part": part_names[occupied % parts],
                    "b_expected_revenue": np.round(expected, 2),
                },
            )
        )
        say(f"budget cube: {len(occupied):,} cells")
    return writer.finish()


def ssb_star() -> Tuple[CubeSchema, StarSchema]:
    """The SSB cube schema and its star binding over the standard tables.

    The binding refers to tables by name only, so it applies equally to a
    freshly generated catalog and to one reloaded from a saved column
    store (:func:`repro.engine.persist.load_catalog`).
    """
    schema = ssb_schema()
    star = StarSchema(
        name="SSB",
        fact_table="ssb_lineorder",
        dimensions=[
            DimensionBinding("Date", "ssb_date", "lo_datekey", "d_datekey",
                             {"date": "d_date", "month": "d_month", "year": "d_year"}),
            DimensionBinding("Customer", "ssb_customer", "lo_custkey", "c_key",
                             {"customer": "c_name", "c_city": "c_city",
                              "c_nation": "c_nation", "c_region": "c_region"}),
            DimensionBinding("Supplier", "ssb_supplier", "lo_suppkey", "s_key",
                             {"supplier": "s_name", "s_city": "s_city",
                              "s_nation": "s_nation", "s_region": "s_region"}),
            DimensionBinding("Part", "ssb_part", "lo_partkey", "p_partkey",
                             {"part": "p_name", "brand": "p_brand1",
                              "category": "p_category", "mfgr": "p_mfgr"}),
        ],
        measure_columns={
            "quantity": "lo_quantity",
            "extendedprice": "lo_extendedprice",
            "revenue": "lo_revenue",
            "supplycost": "lo_supplycost",
            "discount": "lo_discount",
        },
    )
    return schema, star


def budget_schema(levels: Tuple[str, ...] = ("month", "category"),
                  name: str = "BUDGET") -> CubeSchema:
    """The external BUDGET cube: expected revenue at some SSB group-by.

    Reconciled with the SSB cube (Section 3.1's external-benchmark
    assumption): its level names coincide with SSB's, making the two cubes
    joinable at that group-by.  Each level becomes a single-level hierarchy
    named after the SSB hierarchy it comes from.
    """
    reference = ssb_schema()
    hierarchies = [
        Hierarchy(reference.hierarchy_of_level(level).name, [Level(level)])
        for level in levels
    ]
    return CubeSchema(name, hierarchies, [Measure("expected_revenue", "sum")])


def build_budget_table(
    engine: MultidimensionalEngine,
    seed: int = 11,
    noise: float = 0.1,
    levels: Tuple[str, ...] = ("month", "category"),
    name: str = "BUDGET",
) -> Tuple[CubeSchema, StarSchema]:
    """Derive a BUDGET external cube from SSB data and register it.

    Aggregates actual revenue at the given group-by and perturbs it with
    multiplicative Gaussian noise — the "predetermined goals" an external
    benchmark represents.  Stored as a single-table star with degenerate
    levels.
    """
    rng = np.random.default_rng(seed)
    ssb = engine.cube("SSB")
    query = CubeQuery(
        "SSB",
        GroupBySet(ssb.schema, levels),
        (),
        ("revenue",),
    )
    actual = engine.get(query)
    expected = actual.measure("revenue") * rng.normal(1.0, noise, len(actual))
    fact_name = f"ssb_budget_{name.lower()}"
    columns = {f"b_{level}": actual.coords[level] for level in actual.group_by.levels}
    columns["b_expected_revenue"] = np.round(expected, 2)
    engine.catalog.register(Table(fact_name, columns), replace=True)
    schema = budget_schema(tuple(actual.group_by.levels), name)
    star = StarSchema(
        name=name,
        fact_table=fact_name,
        dimensions=[],
        measure_columns={"expected_revenue": "b_expected_revenue"},
        degenerate_levels={
            level: f"b_{level}" for level in actual.group_by.levels
        },
    )
    engine.register_cube(name, schema, star)
    return schema, star


def ssb_engine(
    lineorder_rows: int = 60_000,
    seed: int = 7,
    with_budget: bool = True,
) -> MultidimensionalEngine:
    """A ready-to-query engine holding the SSB cube (and BUDGET, optionally).

    Hierarchy part-of maps are *not* hydrated here — the engine-level
    rewrites never need them, and skipping them keeps large-scale generation
    fast.  Call :func:`repro.olap.hydrate_hierarchies` explicitly if a test
    needs in-memory roll-ups.
    """
    catalog, schema, star = build_ssb_catalog(lineorder_rows=lineorder_rows, seed=seed)
    engine = MultidimensionalEngine(catalog)
    engine.register_cube("SSB", schema, star)
    if with_budget:
        build_budget_table(engine)
    return engine


def ssb_engine_from_catalog(catalog: Catalog) -> MultidimensionalEngine:
    """An engine over an already-populated SSB catalog (e.g. a reloaded
    column store from :func:`repro.engine.persist.load_catalog`).

    Re-registers the SSB cube from its table names and, when budget fact
    tables (``ssb_budget_*``) are present, rebuilds their degenerate
    external cubes so saved catalogs answer the same four intentions.
    """
    engine = MultidimensionalEngine(catalog)
    schema, star = ssb_star()
    engine.register_cube("SSB", schema, star)
    prefix = "ssb_budget_"
    for table_name in catalog.table_names():
        if not table_name.startswith(prefix):
            continue
        table = catalog.table(table_name)
        levels = tuple(
            column[len("b_"):] for column in table.column_names
            if column != "b_expected_revenue"
        )
        cube_name = table_name[len(prefix):].upper()
        budget = budget_schema(levels, cube_name)
        budget_star = StarSchema(
            name=cube_name,
            fact_table=table_name,
            dimensions=[],
            measure_columns={"expected_revenue": "b_expected_revenue"},
            degenerate_levels={level: f"b_{level}" for level in levels},
        )
        engine.register_cube(cube_name, budget, budget_star)
    return engine
