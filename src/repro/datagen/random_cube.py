"""Random cube generation for property-based tests.

Builds small random schemas, hierarchies with consistent part-of orders, and
sparse cubes with arbitrary measures.  Used by the hypothesis test suites to
check invariants (roll-up correctness, join symmetry, labeling partitioning)
over many random instances.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.cube import Cube
from ..core.groupby import GroupBySet
from ..core.hierarchy import Hierarchy, Level
from ..core.schema import CubeSchema, Measure


def random_hierarchy(
    rng: np.random.Generator,
    name: str,
    depth: int,
    fanout: int = 3,
    top_members: int = 2,
) -> Hierarchy:
    """A random linear hierarchy with a consistent part-of order.

    Built top-down: the coarsest level has ``top_members`` members, each
    finer level splits every member into 1..``fanout`` children.
    """
    level_names = [f"{name.lower()}_l{i}" for i in range(depth)]
    levels = [Level(level_name) for level_name in level_names]
    members_by_depth: List[List[str]] = [[] for _ in range(depth)]
    members_by_depth[depth - 1] = [
        f"{level_names[depth - 1]}_m{i}" for i in range(top_members)
    ]
    parent_maps: List[Dict[str, str]] = [dict() for _ in range(depth - 1)]
    for d in range(depth - 2, -1, -1):
        counter = 0
        for parent in members_by_depth[d + 1]:
            for _ in range(int(rng.integers(1, fanout + 1))):
                child = f"{level_names[d]}_m{counter}"
                counter += 1
                members_by_depth[d].append(child)
                parent_maps[d][child] = parent
    return Hierarchy(name, levels, parent_maps)


def random_schema(
    rng: np.random.Generator,
    n_hierarchies: int = 2,
    max_depth: int = 3,
    n_measures: int = 2,
) -> CubeSchema:
    """A random cube schema with ``n_hierarchies`` hierarchies."""
    hierarchies = []
    for i in range(n_hierarchies):
        depth = int(rng.integers(1, max_depth + 1))
        hierarchies.append(random_hierarchy(rng, f"H{i}", depth))
    measures = [Measure(f"m{i}", "sum") for i in range(n_measures)]
    return CubeSchema("RANDOM", hierarchies, measures)


def random_detailed_cube(
    rng: np.random.Generator,
    schema: CubeSchema,
    density: float = 0.5,
) -> Cube:
    """A sparse detailed cube over a schema's finest group-by set.

    Each possible coordinate of ``G0`` is kept with probability ``density``;
    measure values are uniform in [0, 100).
    """
    group_by = GroupBySet(schema, schema.finest_group_by())
    member_lists = []
    for level_name in group_by.levels:
        hierarchy = schema.hierarchy_of_level(level_name)
        members = sorted(hierarchy.members_of(level_name))
        if not members:
            members = [f"{level_name}_only"]
        member_lists.append(members)

    coordinates: List[Tuple] = []
    stack: List[Tuple] = [()]
    for members in member_lists:
        stack = [prefix + (member,) for prefix in stack for member in members]
    for coordinate in stack:
        if rng.random() < density:
            coordinates.append(coordinate)
    if not coordinates and stack:
        coordinates.append(stack[0])

    coords = {
        level: [coordinate[i] for coordinate in coordinates]
        for i, level in enumerate(group_by.levels)
    }
    measures = {
        measure.name: rng.uniform(0, 100, len(coordinates))
        for measure in schema.measures
    }
    return Cube(schema, group_by, coords, measures)


def brute_force_rollup(
    cube: Cube, target: GroupBySet, measure_name: str
) -> Dict[Tuple, float]:
    """Oracle: aggregate a cube's measure to a coarser group-by cell-by-cell.

    Only supports sum measures; used to validate both the engine's group-by
    kernel and the OLAP get against an obviously correct implementation.
    """
    totals: Dict[Tuple, float] = {}
    values = cube.measure(measure_name)
    for row, coordinate in enumerate(cube.coordinates()):
        rolled = cube.group_by.rup(coordinate, target)
        totals[rolled] = totals.get(rolled, 0.0) + float(values[row])
    return totals
