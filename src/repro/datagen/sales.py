"""The paper's running-example SALES cube (Example 2.2), as a star schema.

A small, deterministic, FoodMart-flavoured dataset with the exact
hierarchies of the paper::

    date ⪰ month ⪰ year
    customer ⪰ gender
    product ⪰ type ⪰ category
    store ⪰ city ⪰ country

and measures ``quantity``, ``storeSales``, ``storeCost`` (all summed).  The
members used by the paper's examples are guaranteed to exist: fresh-fruit
products Apple/Pear/Lemon, the product ``milk``, countries Italy/France/
Spain, the store ``SmartMart``, and months 1997-01 … 1997-12.

Every example and many tests run against this cube, so generation is seeded
and fully reproducible.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.hierarchy import Hierarchy, Level
from ..core.schema import CubeSchema, Measure
from ..engine.catalog import Catalog
from ..engine.star import DimensionBinding, StarSchema
from ..engine.table import Table
from ..olap.engine import MultidimensionalEngine
from ..olap.metadata import hydrate_hierarchies

PRODUCTS = [
    # (product, type, category)
    ("Apple", "Fresh Fruit", "Fruit"),
    ("Pear", "Fresh Fruit", "Fruit"),
    ("Lemon", "Fresh Fruit", "Fruit"),
    ("Banana", "Fresh Fruit", "Fruit"),
    ("Dried Apricot", "Dried Fruit", "Fruit"),
    ("Raisins", "Dried Fruit", "Fruit"),
    ("milk", "Milk", "Drinks"),
    ("yogurt", "Dairy", "Food"),
    ("ice-cream", "Frozen", "Food"),
    ("Cheddar", "Cheese", "Food"),
    ("Orange Juice", "Juice", "Drinks"),
    ("Cola", "Soda", "Drinks"),
]

STORES = [
    # (store, city, country)
    ("SmartMart", "Bologna", "Italy"),
    ("FreshCorner", "Roma", "Italy"),
    ("MiniMarket", "Milano", "Italy"),
    ("Carrefive", "Paris", "France"),
    ("PetitPrix", "Lyon", "France"),
    ("BonMarche", "Blois", "France"),
    ("ElMercado", "Madrid", "Spain"),
    ("LaTienda", "Sevilla", "Spain"),
]

CUSTOMER_FIRST = ["Eric", "Anna", "Marco", "Julie", "Sofia", "Pavlos",
                  "Matteo", "Claire", "Luis", "Elena"]
CUSTOMER_LAST = ["Long", "Rossi", "Dupont", "Garcia", "Bianchi",
                 "Papas", "Martin", "Costa"]

YEARS = ("1996", "1997")
DAYS_PER_MONTH = 28  # keep the calendar simple and regular


def sales_schema() -> CubeSchema:
    """The SALES cube schema of Example 2.2."""
    h_date = Hierarchy("Date", [Level("date"), Level("month"), Level("year")])
    h_customer = Hierarchy("Customer", [Level("customer"), Level("gender")])
    h_product = Hierarchy("Product", [Level("product"), Level("type"), Level("category")])
    h_store = Hierarchy("Store", [Level("store"), Level("city"), Level("country")])
    measures = [
        Measure("quantity", "sum"),
        Measure("storeSales", "sum"),
        Measure("storeCost", "sum"),
    ]
    return CubeSchema("SALES", [h_date, h_customer, h_product, h_store], measures)


def _date_dimension() -> Table:
    dates, months, years = [], [], []
    for year in YEARS:
        for month_number in range(1, 13):
            month = f"{year}-{month_number:02d}"
            for day in range(1, DAYS_PER_MONTH + 1):
                dates.append(f"{month}-{day:02d}")
                months.append(month)
                years.append(year)
    return Table(
        "sales_date",
        {
            "dkey": np.arange(len(dates), dtype=np.int64),
            "d_date": np.array(dates, dtype=object),
            "d_month": np.array(months, dtype=object),
            "d_year": np.array(years, dtype=object),
        },
    )


def _customer_dimension(rng: np.random.Generator, count: int) -> Table:
    names, genders = [], []
    for i in range(count):
        first = CUSTOMER_FIRST[i % len(CUSTOMER_FIRST)]
        last = CUSTOMER_LAST[(i // len(CUSTOMER_FIRST)) % len(CUSTOMER_LAST)]
        suffix = i // (len(CUSTOMER_FIRST) * len(CUSTOMER_LAST))
        name = f"{first} {last}" if suffix == 0 else f"{first} {last} {suffix}"
        names.append(name)
        genders.append("M" if rng.random() < 0.5 else "F")
    return Table(
        "sales_customer",
        {
            "ckey": np.arange(count, dtype=np.int64),
            "c_name": np.array(names, dtype=object),
            "c_gender": np.array(genders, dtype=object),
        },
    )


def _product_dimension() -> Table:
    return Table(
        "sales_product",
        {
            "pkey": np.arange(len(PRODUCTS), dtype=np.int64),
            "p_name": np.array([p[0] for p in PRODUCTS], dtype=object),
            "p_type": np.array([p[1] for p in PRODUCTS], dtype=object),
            "p_category": np.array([p[2] for p in PRODUCTS], dtype=object),
        },
    )


COUNTRY_POPULATION = {"Italy": 59_000_000, "France": 68_000_000,
                      "Spain": 48_000_000}
"""Population per country — the descriptive level property of the paper's
future-work per-capita example."""


def _store_dimension() -> Table:
    return Table(
        "sales_store",
        {
            "skey": np.arange(len(STORES), dtype=np.int64),
            "s_name": np.array([s[0] for s in STORES], dtype=object),
            "s_city": np.array([s[1] for s in STORES], dtype=object),
            "s_country": np.array([s[2] for s in STORES], dtype=object),
            "s_population": np.array(
                [COUNTRY_POPULATION[s[2]] for s in STORES], dtype=np.int64
            ),
        },
    )


def build_sales_catalog(
    n_rows: int = 20_000, seed: int = 42, catalog=None
) -> Tuple[Catalog, CubeSchema, StarSchema]:
    """Generate the SALES star schema into a catalog.

    Returns ``(catalog, cube_schema, star_schema)``.  Fact rows are uniform
    over dates/customers/stores and skewed over products (fresh fruit is
    popular), with per-product base prices so that profit
    (``storeSales - storeCost``) is positive on average.
    """
    rng = np.random.default_rng(seed)
    catalog = catalog if catalog is not None else Catalog()

    date_dim = catalog.register(_date_dimension())
    customer_dim = catalog.register(_customer_dimension(rng, count=200))
    product_dim = catalog.register(_product_dimension())
    store_dim = catalog.register(_store_dimension())

    n_products = len(PRODUCTS)
    product_weights = np.linspace(2.0, 1.0, n_products)
    product_weights /= product_weights.sum()

    dkeys = rng.integers(0, len(date_dim), n_rows)
    ckeys = rng.integers(0, len(customer_dim), n_rows)
    pkeys = rng.choice(n_products, size=n_rows, p=product_weights)
    skeys = rng.integers(0, len(store_dim), n_rows)

    quantity = rng.integers(1, 11, n_rows).astype(np.float64)
    base_price = 1.5 + 0.5 * pkeys.astype(np.float64)
    store_sales = np.round(quantity * base_price * rng.uniform(0.9, 1.1, n_rows), 2)
    store_cost = np.round(store_sales * rng.uniform(0.5, 0.8, n_rows), 2)

    catalog.register(
        Table(
            "sales_fact",
            {
                "dkey": dkeys.astype(np.int64),
                "ckey": ckeys.astype(np.int64),
                "pkey": pkeys.astype(np.int64),
                "skey": skeys.astype(np.int64),
                "quantity": quantity,
                "storeSales": store_sales,
                "storeCost": store_cost,
            },
        )
    )

    schema = sales_schema()
    star = StarSchema(
        name="SALES",
        fact_table="sales_fact",
        dimensions=[
            DimensionBinding("Date", "sales_date", "dkey", "dkey",
                             {"date": "d_date", "month": "d_month", "year": "d_year"}),
            DimensionBinding("Customer", "sales_customer", "ckey", "ckey",
                             {"customer": "c_name", "gender": "c_gender"}),
            DimensionBinding("Product", "sales_product", "pkey", "pkey",
                             {"product": "p_name", "type": "p_type",
                              "category": "p_category"}),
            DimensionBinding("Store", "sales_store", "skey", "skey",
                             {"store": "s_name", "city": "s_city",
                              "country": "s_country"},
                             properties={"population": ("country", "s_population")}),
        ],
        measure_columns={
            "quantity": "quantity",
            "storeSales": "storeSales",
            "storeCost": "storeCost",
        },
    )
    return catalog, schema, star


def sales_engine(n_rows: int = 20_000, seed: int = 42) -> MultidimensionalEngine:
    """A ready-to-query multidimensional engine holding the SALES cube."""
    catalog, schema, star = build_sales_catalog(n_rows=n_rows, seed=seed)
    engine = MultidimensionalEngine(catalog)
    engine.register_cube("SALES", schema, star)
    hydrate_hierarchies(schema, star, catalog)
    return engine
