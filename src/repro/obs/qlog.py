"""The persistent query log: one JSONL record per executed statement.

The in-process tracer and metrics registry (PR 4) vanish on exit; the
query log is the durable tier.  When a session is created with
``telemetry=`` (or ``REPRO_TELEMETRY_DIR`` is set), every executed
statement appends one JSON record — canonical statement fingerprint,
plan provenance, per-phase timings, engine/cache/batch/parallel/spill
counter deltas, rows in/out, peak RSS — to an append-only segment file
in the telemetry directory.  ``repro history`` and the regression
watchdog (:mod:`repro.obs.watchdog`) aggregate those records across
runs, which is what turns one process's counters into a workload
history.

Durability and concurrency model:

* records are written with a **single** ``os.write`` on an
  ``O_APPEND`` descriptor, so concurrent sessions — including separate
  processes — appending to the same log never produce torn records
  (POSIX appends of one ``write`` call are atomic with respect to each
  other);
* the log **rotates by segment**: writes go to the highest-numbered
  ``queries-NNNNNNNN.jsonl`` file and a new segment is started (with
  ``O_CREAT | O_EXCL``, so two writers cannot both create it) once the
  current one exceeds ``max_bytes``; old segments beyond ``keep`` are
  pruned;
* readers (:func:`iter_records`) scan the segments oldest-first and,
  by default, skip unparseable lines rather than failing — a crashed
  writer must not take the history down with it.

The record schema is versioned (``"v": 1``) and validated by
``tools/check_qlog_schema.py``; see ``docs/observability.md`` for the
field-by-field description.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional

QLOG_SCHEMA_VERSION = 1
"""Bump when a record field changes meaning; the validator pins it."""

SEGMENT_PREFIX = "queries-"
SEGMENT_SUFFIX = ".jsonl"

DEFAULT_MAX_BYTES = 16 * 1024 * 1024
DEFAULT_KEEP = 8

#: Record keys that must always be present (the validator's contract).
REQUIRED_FIELDS = (
    "v", "ts", "session", "seq", "fingerprint", "cube", "measure",
    "group_by", "benchmark", "plan", "status", "phases", "total_s",
    "rows_in", "rows_out", "cells_out", "counters", "peak_rss_kb",
)


def statement_fingerprint(statement) -> str:
    """The canonical fingerprint of an assess statement.

    Built from the statement's *semantic* content — cube, sorted
    group-by levels, measure, normalised predicates, benchmark, using
    expression, labeling — so the same intention spelled with
    reordered predicates or group-by levels aggregates under one key in
    the history, exactly like the pushed-query fingerprints of
    :mod:`repro.cache.fingerprint` do for the result cache.
    """
    from ..cache.fingerprint import normalize_predicate

    parts = (
        "v1",
        statement.source,
        "|".join(sorted(statement.group_by.levels)),
        statement.measure,
        repr(tuple(sorted(
            (predicate.level, normalize_predicate(predicate))
            for predicate in statement.predicates
        ))),
        statement.benchmark.render(),
        statement.using.render(),
        statement.labels.render(),
        "star" if statement.star else "",
    )
    digest = hashlib.sha1("\x1f".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


class QueryLogError(ValueError):
    """A malformed query-log record or directory."""


class QueryLog:
    """An append-only, size-rotated JSONL log of executed statements.

    One instance per session (several instances may share a directory;
    appends stay atomic).  All methods are thread-safe.
    """

    def __init__(
        self,
        directory,
        max_bytes: int = DEFAULT_MAX_BYTES,
        keep: int = DEFAULT_KEEP,
    ):
        if max_bytes <= 0:
            raise QueryLogError("max_bytes must be positive")
        if keep < 1:
            raise QueryLogError("keep must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.keep = keep
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._segment: Optional[Path] = None

    # ------------------------------------------------------------------
    def append(self, record: Dict[str, object]) -> None:
        """Serialize and append one record (a single atomic write)."""
        line = json.dumps(
            record, separators=(",", ":"), sort_keys=True, default=_jsonable
        ).encode("utf-8") + b"\n"
        with self._lock:
            fd = self._ensure_segment(len(line))
            os.write(fd, line)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None
                self._segment = None

    def __enter__(self) -> "QueryLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _ensure_segment(self, incoming: int) -> int:
        """The fd to append to, rotating first if the segment is full.

        Called under the lock.  Sizes are checked with ``fstat`` on the
        open descriptor, so concurrent writers sharing a segment all
        observe its true size and rotate at (about) the same boundary —
        ``O_CREAT | O_EXCL`` ensures only one of them creates the next
        segment; the others simply open it.
        """
        if self._fd is None:
            self._open_segment(self._latest_segment())
        assert self._fd is not None and self._segment is not None
        if os.fstat(self._fd).st_size + incoming > self.max_bytes:
            next_index = _segment_index(self._segment) + 1
            os.close(self._fd)
            self._fd = None
            self._open_segment(self._segment_path(next_index), create=True)
            self._prune()
        return self._fd

    def _open_segment(self, path: Path, create: bool = False) -> None:
        flags = os.O_WRONLY | os.O_APPEND | os.O_CREAT
        if create:
            try:
                self._fd = os.open(path, flags | os.O_EXCL, 0o644)
            except FileExistsError:
                # Another writer rotated first; append to their segment.
                self._fd = os.open(path, flags, 0o644)
        else:
            self._fd = os.open(path, flags, 0o644)
        self._segment = path

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"

    def _latest_segment(self) -> Path:
        existing = _segments(self.directory)
        if existing:
            return existing[-1]
        return self._segment_path(1)

    def _prune(self) -> None:
        segments = _segments(self.directory)
        for stale in segments[: max(len(segments) - self.keep, 0)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - racing writers
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryLog({str(self.directory)!r})"


def _jsonable(value):
    """JSON fallback: numpy scalars and Paths appear in counter dicts."""
    if hasattr(value, "item"):
        return value.item()
    return str(value)


def _segments(directory: Path) -> List[Path]:
    return sorted(
        child for child in directory.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}")
        if child.is_file()
    )


def _segment_index(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        return 1


def iter_records(
    directory, strict: bool = False
) -> Iterator[Dict[str, object]]:
    """Yield every record in a telemetry directory, oldest first.

    ``strict=True`` raises :class:`QueryLogError` on an unparseable
    line; the default skips it (a record torn by a crashed writer must
    not poison the whole history).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise QueryLogError(f"not a telemetry directory: {directory}")
    for segment in _segments(directory):
        with open(segment, "rb") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    if strict:
                        raise QueryLogError(
                            f"{segment.name}:{number}: unparseable record"
                        )
                    continue
                if isinstance(record, dict):
                    yield record
                elif strict:
                    raise QueryLogError(
                        f"{segment.name}:{number}: record is not an object"
                    )


def validate_record(record: object, where: str = "record") -> None:
    """Structurally validate one query-log record; raises on violation."""
    if not isinstance(record, dict):
        raise QueryLogError(f"{where}: must be an object")
    if record.get("v") != QLOG_SCHEMA_VERSION:
        raise QueryLogError(
            f"{where}: unsupported schema version {record.get('v')!r}"
        )
    missing = [field for field in REQUIRED_FIELDS if field not in record]
    if missing:
        raise QueryLogError(f"{where}: missing fields {missing}")
    _expect(record, where, "ts", (int, float))
    _expect(record, where, "session", str)
    _expect(record, where, "seq", int)
    _expect(record, where, "fingerprint", str)
    _expect(record, where, "cube", str)
    _expect(record, where, "measure", str)
    _expect(record, where, "benchmark", str)
    _expect(record, where, "plan", str)
    _expect(record, where, "total_s", (int, float))
    _expect(record, where, "rows_in", int)
    _expect(record, where, "rows_out", int)
    _expect(record, where, "cells_out", int)
    _expect(record, where, "peak_rss_kb", int)
    if record["status"] not in ("ok", "error"):
        raise QueryLogError(f"{where}: status must be 'ok' or 'error'")
    if record["status"] == "error" and not isinstance(
        record.get("error"), str
    ):
        raise QueryLogError(f"{where}: error records need an 'error' string")
    group_by = record["group_by"]
    if not isinstance(group_by, list) or not all(
        isinstance(level, str) for level in group_by
    ):
        raise QueryLogError(f"{where}: group_by must be a string array")
    phases = record["phases"]
    if not isinstance(phases, dict) or not all(
        isinstance(k, str) and isinstance(v, (int, float)) and v >= 0
        for k, v in phases.items()
    ):
        raise QueryLogError(
            f"{where}: phases must map step names to non-negative seconds"
        )
    counters = record["counters"]
    if not isinstance(counters, dict) or not all(
        isinstance(k, str) and isinstance(v, int)
        for k, v in counters.items()
    ):
        raise QueryLogError(
            f"{where}: counters must map metric names to integers"
        )
    if record["total_s"] < 0:
        raise QueryLogError(f"{where}: total_s must be non-negative")


def _expect(record: Dict[str, object], where: str, key: str, types) -> None:
    value = record[key]
    if not isinstance(value, types) or isinstance(value, bool):
        raise QueryLogError(
            f"{where}: {key!r} must be {types}, got {type(value).__name__}"
        )


def counters_delta(
    before: Dict[str, int], after: Dict[str, int]
) -> Dict[str, int]:
    """Non-zero counter increments between two registry snapshots."""
    delta: Dict[str, int] = {}
    for name, value in after.items():
        change = value - before.get(name, 0)
        if change:
            delta[name] = change
    return delta


def build_record(
    statement,
    *,
    session_id: str,
    seq: int,
    plan_name: str,
    status: str,
    total_s: float,
    phases: Optional[Dict[str, float]] = None,
    rows_out: int = 0,
    cells_out: int = 0,
    counters: Optional[Dict[str, int]] = None,
    error: Optional[str] = None,
    batch: Optional[str] = None,
    parallelism: int = 1,
    memory_budget: Optional[int] = None,
    profiled: bool = False,
    ts: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble one schema-v1 record for an executed statement."""
    from .rss import peak_rss_kb

    counters = dict(counters or {})
    record: Dict[str, object] = {
        "v": QLOG_SCHEMA_VERSION,
        "ts": time.time() if ts is None else ts,
        "session": session_id,
        "seq": seq,
        "fingerprint": statement_fingerprint(statement),
        "cube": statement.source,
        "measure": statement.measure,
        "group_by": list(statement.group_by.levels),
        "benchmark": statement.benchmark.render(),
        "plan": plan_name,
        "status": status,
        "phases": {
            step: round(seconds, 9)
            for step, seconds in (phases or {}).items()
        },
        "total_s": round(total_s, 9),
        "rows_in": int(counters.get("engine.rows_scanned", 0)),
        "rows_out": int(rows_out),
        "cells_out": int(cells_out),
        "counters": counters,
        "peak_rss_kb": peak_rss_kb(),
        "parallelism": int(parallelism),
    }
    if memory_budget is not None:
        record["memory_budget"] = int(memory_budget)
    if error is not None:
        record["error"] = error
    if batch is not None:
        record["batch"] = batch
    if profiled:
        record["profiled"] = True
    return record
