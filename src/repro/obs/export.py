"""Trace export: the span-tree JSON schema and Chrome ``trace_event``.

The JSON document (``trace_to_json``) is the stable interchange format
of ``repro trace --json`` and the one CI validates:

.. code-block:: text

    {
      "version": 1,
      "spans": [            # top-level spans, one per statement/batch
        {
          "name": str,
          "start_us": number,      # relative to the first span's start
          "duration_us": number,
          "attrs": {str: scalar},  # row counts, outcomes, node ids, ...
          "children": [<span>, ...]
        },
        ...
      ]
    }

:func:`validate_trace` is a hand-rolled structural checker (the repo is
zero-dependency, so no jsonschema); it raises :class:`TraceFormatError`
with a JSON-pointer-ish path on the first violation.

``trace_to_chrome`` flattens the same tree into the Chrome / Perfetto
``trace_event`` array format (``chrome://tracing``, https://ui.perfetto.dev):
one complete ``"ph": "X"`` event per span, nesting reconstructed from
timestamps on a single thread track.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .tracer import Span, Tracer

_SCALARS = (str, int, float, bool, type(None))


class TraceFormatError(ValueError):
    """A trace document violates the span-tree schema."""


def _first_start(roots: Sequence[Span]) -> float:
    return min((span.start for span in roots), default=0.0)


def span_to_dict(span: Span, epoch: float) -> Dict[str, object]:
    """One span (and its subtree) as a JSON-ready dict."""
    return {
        "name": span.name,
        "start_us": round((span.start - epoch) * 1e6, 3),
        "duration_us": round(span.duration * 1e6, 3),
        "attrs": {
            key: (value if isinstance(value, _SCALARS) else repr(value))
            for key, value in span.attrs.items()
        },
        "children": [span_to_dict(child, epoch) for child in span.children],
    }


def trace_to_json(tracer: Tracer) -> Dict[str, object]:
    """The whole trace as the versioned JSON document."""
    epoch = _first_start(tracer.roots)
    return {
        "version": 1,
        "spans": [span_to_dict(span, epoch) for span in tracer.roots],
    }


def trace_to_chrome(tracer: Tracer) -> List[Dict[str, object]]:
    """The trace as a Chrome ``trace_event`` array (complete events)."""
    epoch = _first_start(tracer.roots)
    events: List[Dict[str, object]] = []

    def emit(span: Span) -> None:
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": round((span.start - epoch) * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "args": {
                key: (value if isinstance(value, _SCALARS) else repr(value))
                for key, value in span.attrs.items()
            },
        })
        for child in span.children:
            emit(child)

    for root in tracer.roots:
        emit(root)
    return events


def validate_trace(document: object) -> None:
    """Structurally validate a trace JSON document; raises on violation."""
    if not isinstance(document, dict):
        raise TraceFormatError("trace document must be an object")
    if document.get("version") != 1:
        raise TraceFormatError(
            f"unsupported trace version {document.get('version')!r}"
        )
    spans = document.get("spans")
    if not isinstance(spans, list):
        raise TraceFormatError("'spans' must be an array")
    for index, span in enumerate(spans):
        _validate_span(span, f"spans[{index}]")


def _validate_span(span: object, path: str) -> None:
    if not isinstance(span, dict):
        raise TraceFormatError(f"{path}: span must be an object")
    unknown = set(span) - {"name", "start_us", "duration_us", "attrs", "children"}
    if unknown:
        raise TraceFormatError(f"{path}: unknown keys {sorted(unknown)}")
    name = span.get("name")
    if not isinstance(name, str) or not name:
        raise TraceFormatError(f"{path}: 'name' must be a non-empty string")
    for key in ("start_us", "duration_us"):
        value = span.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TraceFormatError(f"{path}: {key!r} must be a number")
        if value < 0:
            raise TraceFormatError(f"{path}: {key!r} must be non-negative")
    attrs = span.get("attrs")
    if not isinstance(attrs, dict):
        raise TraceFormatError(f"{path}: 'attrs' must be an object")
    for key, value in attrs.items():
        if not isinstance(key, str):
            raise TraceFormatError(f"{path}: attr keys must be strings")
        if not isinstance(value, _SCALARS):
            raise TraceFormatError(
                f"{path}: attr {key!r} must be a scalar, got "
                f"{type(value).__name__}"
            )
    children = span.get("children")
    if not isinstance(children, list):
        raise TraceFormatError(f"{path}: 'children' must be an array")
    for index, child in enumerate(children):
        _validate_span(child, f"{path}.children[{index}]")


def render_span_tree(tracer: Tracer, min_us: float = 0.0) -> str:
    """Human-readable indented rendering of the trace (the CLI default)."""
    lines: List[str] = []

    def render(span: Span, indent: int) -> None:
        attrs = ", ".join(
            f"{key}={value}" for key, value in span.attrs.items()
            if key != "node_id"
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{'  ' * indent}{span.name:<18} {1000 * span.duration:8.3f} ms"
            f"{suffix}"
        )
        for child in span.children:
            render(child, indent + 1)

    for root in tracer.roots:
        render(root, 0)
    return "\n".join(lines)


def summarize_spans(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    """Aggregate the trace by span name: call count and total/self ms.

    Self time excludes child spans, so the per-name self totals add up
    to (at most) the traced wall clock — the view ``harness.py --trace``
    prints after each experiment.
    """
    summary: Dict[str, Dict[str, float]] = {}

    def visit(span: Span) -> None:
        bucket = summary.setdefault(
            span.name, {"count": 0, "total_ms": 0.0, "self_ms": 0.0}
        )
        bucket["count"] += 1
        bucket["total_ms"] += 1000 * span.duration
        bucket["self_ms"] += 1000 * span.self_time
        for child in span.children:
            visit(child)

    for root in tracer.roots:
        visit(root)
    return summary


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ----------------------------------------------------------------------
def _prom_name(name: str, namespace: str = "repro") -> str:
    """A metric name sanitized to Prometheus's [a-zA-Z0-9_:] alphabet."""
    import re

    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return f"{namespace}_{cleaned}"


def _prom_value(value: float) -> str:
    import math

    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if not float(value).is_integer() else str(int(value))


def to_prometheus(metrics=None, hub=None, namespace: str = "repro") -> str:
    """The metrics registry (+ optional telemetry hub) as Prometheus text.

    * every **counter** exports as ``<ns>_<name>_total`` (dots become
      underscores: ``engine.scans`` → ``repro_engine_scans_total``);
    * every registry **running-stat histogram** (the tracer-fed
      ``<span>.seconds`` entries) exports its count/sum/min/max as
      gauges;
    * every hub **log-bucketed latency histogram** exports as a real
      Prometheus histogram (cumulative ``le`` buckets + ``_count`` +
      ``_sum``) plus convenience p50/p95/p99 gauges.

    With no arguments it exports the process-wide :data:`METRICS`
    roll-up — the "scrape the process" default.
    """
    from .metrics import METRICS

    registry = METRICS if metrics is None else metrics
    lines: List[str] = []
    snapshot = registry.snapshot()

    for name in sorted(snapshot["counters"]):
        family = _prom_name(name, namespace) + "_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {snapshot['counters'][name]}")

    for name in sorted(snapshot["histograms"]):
        bucket = snapshot["histograms"][name]
        family = _prom_name(name, namespace)
        lines.append(f"# TYPE {family}_count gauge")
        lines.append(f"{family}_count {int(bucket.get('count', 0))}")
        lines.append(f"# TYPE {family}_sum gauge")
        lines.append(f"{family}_sum {_prom_value(bucket.get('total', 0.0))}")
        for stat in ("min", "max"):
            value = bucket.get(stat)
            if value is not None and abs(value) != float("inf"):
                lines.append(f"# TYPE {family}_{stat} gauge")
                lines.append(f"{family}_{stat} {_prom_value(value)}")

    if hub is not None:
        lines.extend(_hub_to_prometheus(hub, namespace))
    return "\n".join(lines) + ("\n" if lines else "")


def _hub_to_prometheus(hub, namespace: str) -> List[str]:
    lines: List[str] = []
    snapshot = hub.snapshot()
    for name in sorted(snapshot["histograms"]):
        histogram = hub.histogram(name)
        if histogram is None:  # pragma: no cover - racing reset
            continue
        family = _prom_name(name, namespace)
        lines.append(f"# TYPE {family} histogram")
        for upper, cumulative in histogram.cumulative_buckets():
            lines.append(
                f'{family}_bucket{{le="{_prom_value(upper)}"}} {cumulative}'
            )
        lines.append(f"{family}_count {histogram.count}")
        lines.append(f"{family}_sum {_prom_value(histogram.total)}")
        summary = snapshot["histograms"][name]
        for quantile in ("p50", "p95", "p99"):
            lines.append(f"# TYPE {family}_{quantile} gauge")
            lines.append(f"{family}_{quantile} {_prom_value(summary[quantile])}")
    for name in sorted(snapshot["series"]):
        if name in snapshot["histograms"]:
            continue  # latency series already exported as a histogram
        family = _prom_name(name, namespace)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_prom_value(snapshot['series'][name]['last'])}")
    return lines


def render_span_summary(summary: Dict[str, Dict[str, float]]) -> str:
    """The span summary as an aligned table, busiest (self time) first."""
    lines = [f"{'span':<22} {'count':>7} {'total ms':>12} {'self ms':>12}"]
    for name, bucket in sorted(
        summary.items(), key=lambda item: -item[1]["self_ms"]
    ):
        lines.append(
            f"{name:<22} {bucket['count']:>7,} {bucket['total_ms']:>12.1f} "
            f"{bucket['self_ms']:>12.1f}"
        )
    return "\n".join(lines)
