"""Session telemetry: the bundle a session writes its history through.

A :class:`Telemetry` object owns the three per-session pieces of the
persistent telemetry tier and is what :class:`repro.api.AssessSession`
drives when constructed with ``telemetry=`` (or when
``REPRO_TELEMETRY_DIR`` is set):

* the durable **query log** (:class:`repro.obs.qlog.QueryLog`) — one
  JSONL record per executed statement;
* the in-memory **time-series hub**
  (:class:`repro.obs.timeseries.TelemetryHub`) — log-bucketed latency
  histograms (``query.seconds``, ``phase.<step>.seconds``) and recent
  rows-out points, exported by
  :func:`repro.obs.export.to_prometheus`;
* optionally the **sampling profiler**
  (:class:`repro.obs.profiler.SamplingProfiler`), enabled by
  ``REPRO_TELEMETRY_PROFILE`` (or ``profile_interval=``), whose
  collapsed stacks land in ``profile-<session>.collapsed`` next to the
  query log on close.

Recording is strictly additive — it never changes what executes — and
every hook in the session is guarded by ``if telemetry is None`` so a
session without telemetry pays one attribute load per statement
(benchmarked in ``benchmarks/bench_telemetry_overhead.py``).
"""

from __future__ import annotations

import atexit
import os
import threading
from pathlib import Path
from typing import Dict, Optional

from .qlog import QueryLog, build_record, counters_delta
from .timeseries import TelemetryHub

ENV_DIR = "REPRO_TELEMETRY_DIR"
ENV_PROFILE = "REPRO_TELEMETRY_PROFILE"


class Telemetry:
    """Everything one session needs to persist its workload history."""

    def __init__(
        self,
        directory,
        max_bytes: Optional[int] = None,
        keep: Optional[int] = None,
        profile_interval: Optional[float] = None,
        session_id: Optional[str] = None,
    ):
        kwargs = {}
        if max_bytes is not None:
            kwargs["max_bytes"] = max_bytes
        if keep is not None:
            kwargs["keep"] = keep
        self.directory = Path(directory)
        self.log = QueryLog(self.directory, **kwargs)
        self.hub = TelemetryHub()
        self.session_id = session_id or os.urandom(6).hex()
        self._seq = 0
        self._registered_sessions = 0
        self._lock = threading.Lock()
        self.profiler = None
        if profile_interval is not None:
            from .profiler import SamplingProfiler

            self.profiler = SamplingProfiler(interval=profile_interval)
            self.profiler.start()
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "Optional[Telemetry]":
        """A telemetry bundle per ``REPRO_TELEMETRY_DIR``, or ``None``."""
        directory = os.environ.get(ENV_DIR, "").strip()
        if not directory:
            return None
        from .profiler import profile_env_interval

        return cls(directory, profile_interval=profile_env_interval())

    @classmethod
    def resolve(cls, telemetry) -> "Optional[Telemetry]":
        """Coerce a session's ``telemetry=`` argument.

        ``None`` falls back to the environment; a path-like starts a
        bundle in that directory; a :class:`Telemetry` passes through
        (so several sessions can share one log and hub).
        """
        if telemetry is None:
            return cls.from_env()
        if isinstance(telemetry, Telemetry):
            return telemetry
        return cls(telemetry)

    # ------------------------------------------------------------------
    def register_session(self) -> str:
        """A unique session label for one user of this (shared) bundle.

        The first registrant keeps the bundle's bare ``session_id`` (the
        common single-session case records exactly as before); every
        further registrant gets ``<session_id>-<n>``.  Sessions sharing
        a bundle — e.g. a server tenant's pool — pass the label back via
        ``record_statement(session_label=...)`` so their query-log
        records stay attributable.
        """
        with self._lock:
            self._registered_sessions += 1
            n = self._registered_sessions
        if n == 1:
            return self.session_id
        return f"{self.session_id}-{n}"

    def record_statement(
        self,
        statement,
        *,
        plan_name: str,
        status: str,
        total_s: float,
        phases: Optional[Dict[str, float]] = None,
        rows_out: int = 0,
        cells_out: int = 0,
        counters_before: Optional[Dict[str, int]] = None,
        counters_after: Optional[Dict[str, int]] = None,
        error: Optional[str] = None,
        batch: Optional[str] = None,
        parallelism: int = 1,
        memory_budget: Optional[int] = None,
        session_label: Optional[str] = None,
    ) -> Dict[str, object]:
        """Build, persist, and time-series one statement record."""
        with self._lock:
            self._seq += 1
            seq = self._seq
        counters = counters_delta(counters_before or {}, counters_after or {})
        record = build_record(
            statement,
            session_id=session_label or self.session_id,
            seq=seq,
            plan_name=plan_name,
            status=status,
            total_s=total_s,
            phases=phases,
            rows_out=rows_out,
            cells_out=cells_out,
            counters=counters,
            error=error,
            batch=batch,
            parallelism=parallelism,
            memory_budget=memory_budget,
            profiled=self.profiler is not None,
        )
        self.log.append(record)
        ts = float(record["ts"])
        if status == "ok":
            self.hub.observe_latency("query.seconds", total_s, ts=ts)
            for step, seconds in (phases or {}).items():
                self.hub.observe_latency(
                    f"phase.{step}.seconds", seconds, ts=ts
                )
            self.hub.record_point("query.rows_out", rows_out, ts=ts)
        else:
            self.hub.record_point("query.errors", 1.0, ts=ts)
        return record

    # ------------------------------------------------------------------
    def profile_path(self) -> Path:
        return self.directory / f"profile-{self.session_id}.collapsed"

    def close(self) -> None:
        """Stop the profiler (writing its stacks) and close the log."""
        if self._closed:
            return
        self._closed = True
        if self.profiler is not None:
            self.profiler.stop()
            if self.profiler.samples:
                try:
                    self.profiler.write(self.profile_path())
                except OSError:  # pragma: no cover - dir vanished
                    pass
        self.log.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry({str(self.directory)!r}, "
            f"session={self.session_id!r}, seq={self._seq})"
        )
