"""In-memory time series: ring buffers and log-bucketed histograms.

The metrics registry (:mod:`repro.obs.metrics`) keeps monotonic
counters and min/max/total running stats — enough for "what happened",
not for "how is latency distributed" or "what happened lately".  This
module adds the two fixed-memory structures a long-running server
needs:

* :class:`RingBuffer` — the last N (timestamp, value) points of a
  metric, overwritten in place, for "recent history" sparklines and
  rate computation;
* :class:`LogHistogram` — latency observations bucketed on a
  geometric grid (constant *relative* resolution, like HDR histograms
  and Prometheus native histograms), from which p50/p95/p99 are read
  in O(buckets) with bounded relative error;
* :class:`TelemetryHub` — the per-session registry of both, fed by the
  query-log hook on every executed statement and exported by
  :func:`repro.obs.export.to_prometheus`.

Everything here is bounded-memory by construction: a hub never grows
with the number of queries, only with the number of distinct metric
names.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional, Tuple

DEFAULT_CAPACITY = 1024

# Latency grid: 10 µs lowest bucket, ~19% per step (2**0.25), 96 steps
# → covers 10 µs .. ~76 s with <= ~9% relative quantile error.
DEFAULT_LOWEST = 1e-5
DEFAULT_GROWTH = 2 ** 0.25
DEFAULT_BUCKETS = 96


class RingBuffer:
    """A fixed-capacity ring of (timestamp, value) points."""

    __slots__ = ("capacity", "_points", "_next", "_count")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._points: List[Tuple[float, float]] = [(0.0, 0.0)] * capacity
        self._next = 0
        self._count = 0

    def push(self, value: float, ts: Optional[float] = None) -> None:
        self._points[self._next] = (
            time.time() if ts is None else ts, float(value)
        )
        self._next = (self._next + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    def __len__(self) -> int:
        return self._count

    def points(self) -> List[Tuple[float, float]]:
        """The retained points, oldest first."""
        if self._count < self.capacity:
            return list(self._points[: self._count])
        return list(self._points[self._next:]) + list(self._points[: self._next])

    def values(self) -> List[float]:
        return [value for _, value in self.points()]

    def last(self) -> Optional[Tuple[float, float]]:
        if not self._count:
            return None
        return self._points[(self._next - 1) % self.capacity]


class LogHistogram:
    """Latency histogram on a geometric bucket grid.

    Bucket ``i`` covers ``(lowest * growth**(i-1), lowest * growth**i]``;
    bucket 0 covers ``[0, lowest]`` and the last bucket is an overflow.
    Quantiles interpolate linearly inside the containing bucket, so the
    estimate's relative error is bounded by the bucket width (~9% at
    the default growth) — property-tested against a numpy oracle in
    ``tests/test_telemetry.py``.
    """

    __slots__ = ("lowest", "growth", "_log_growth", "counts", "count",
                 "total", "min", "max")

    def __init__(
        self,
        lowest: float = DEFAULT_LOWEST,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ):
        if lowest <= 0 or growth <= 1 or buckets < 2:
            raise ValueError("need lowest > 0, growth > 1, buckets >= 2")
        self.lowest = lowest
        self.growth = growth
        self._log_growth = math.log(growth)
        self.counts = [0] * (buckets + 1)  # +1 = overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0 or math.isnan(value):
            value = 0.0
        self.counts[self._index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def _index(self, value: float) -> int:
        if value <= self.lowest:
            return 0
        index = int(math.ceil(math.log(value / self.lowest) / self._log_growth))
        return min(index, len(self.counts) - 1)

    def upper_bound(self, index: int) -> float:
        """The inclusive upper boundary of a bucket (inf for overflow)."""
        if index >= len(self.counts) - 1:
            return math.inf
        return self.lowest * self.growth ** index

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The q-quantile estimate (q in [0, 1]); 0.0 when empty."""
        if not self.count:
            return 0.0
        if q <= 0:
            return self.min
        if q >= 1:
            return self.max
        rank = q * self.count
        seen = 0.0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                low = 0.0 if index == 0 else self.upper_bound(index - 1)
                high = self.upper_bound(index)
                if math.isinf(high):  # overflow bucket: best effort
                    high = max(self.max, low)
                low = max(low, self.min)
                high = min(high, self.max)
                if high <= low:
                    return high
                fraction = (rank - seen) / bucket_count
                return low + fraction * (high - low)
            seen += bucket_count
        return self.max  # pragma: no cover - ranks always land above

    def percentiles(self) -> Dict[str, float]:
        """The snapshot dict every exporter reads: p50/p95/p99 + stats."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": 0.0 if math.isinf(self.min) else self.min,
            "max": 0.0 if math.isinf(self.max) else self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, Prometheus-style.

        Only buckets up to the highest non-empty one are emitted (plus
        the +Inf overflow), so an idle histogram exports compactly.
        """
        pairs: List[Tuple[float, int]] = []
        cumulative = 0
        highest = max(
            (i for i, c in enumerate(self.counts) if c), default=-1
        )
        for index in range(highest + 1):
            cumulative += self.counts[index]
            pairs.append((self.upper_bound(index), cumulative))
        if not pairs or not math.isinf(pairs[-1][0]):
            pairs.append((math.inf, self.count))
        return pairs


class TelemetryHub:
    """Per-session time-series registry: histograms + recent points.

    Thread-safe (several session threads may record at once).  The
    query-log hook feeds it one latency observation per statement
    (``query.seconds``), one per plan phase
    (``phase.<step>.seconds``), and a ``query.rows_out`` series; any
    component may add more.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._histograms: Dict[str, LogHistogram] = {}
        self._series: Dict[str, RingBuffer] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe_latency(
        self, name: str, seconds: float, ts: Optional[float] = None
    ) -> None:
        """Record one latency sample into histogram + recent series."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LogHistogram()
            histogram.observe(seconds)
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = RingBuffer(self.capacity)
            series.push(seconds, ts=ts)

    def record_point(
        self, name: str, value: float, ts: Optional[float] = None
    ) -> None:
        """Record one plain time-series point (no histogram)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = RingBuffer(self.capacity)
            series.push(value, ts=ts)

    # ------------------------------------------------------------------
    def histogram(self, name: str) -> Optional[LogHistogram]:
        with self._lock:
            return self._histograms.get(name)

    def series(self, name: str) -> Optional[RingBuffer]:
        with self._lock:
            return self._series.get(name)

    def percentiles(self, name: str) -> Dict[str, float]:
        """p50/p95/p99 snapshot of one latency metric (zeros if unseen)."""
        with self._lock:
            histogram = self._histograms.get(name)
        if histogram is None:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return histogram.percentiles()

    def snapshot(self) -> Dict[str, object]:
        """Every histogram's percentile summary + every series' tail."""
        with self._lock:
            histogram_names = list(self._histograms)
            series_items = {
                name: ring.last() for name, ring in self._series.items()
            }
        return {
            "histograms": {
                name: self.percentiles(name) for name in histogram_names
            },
            "series": {
                name: {"last_ts": point[0], "last": point[1]}
                for name, point in series_items.items()
                if point is not None
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TelemetryHub(histograms={len(self._histograms)}, "
            f"series={len(self._series)})"
        )
