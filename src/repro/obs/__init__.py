"""Observability: tracing spans, metrics, and EXPLAIN ANALYZE.

Zero-dependency instrumentation threaded through every execution layer
(algebra operators, engine kernels, the semantic cache, and batch
execution).  See ``docs/observability.md`` for the full tour.

Quick start::

    from repro.obs import tracing, render_span_tree

    with tracing() as tracer:
        session.assess(text)
    print(render_span_tree(tracer))

Tracing is off by default (:data:`~repro.obs.tracer.NULL_TRACER` is
installed) and instrumented call sites guard attribute computation
behind ``tracer.enabled``, so the disabled overhead is a branch per
operator — benchmarked under 2% in
``benchmarks/bench_obs_overhead.py``.

Only :mod:`~repro.obs.tracer` and :mod:`~repro.obs.metrics` load
eagerly — they are imported by the execution layers themselves, so this
package must stay import-cycle-free; the analyze/export helpers (which
depend on the algebra layer) resolve lazily on first attribute access.
"""

from .metrics import METRICS, MetricsRegistry
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, active, install, tracing

_LAZY = {
    "ExplainAnalyzeReport": "analyze",
    "annotate_estimates": "analyze",
    "explain_analyze": "analyze",
    "trace_diagnostics": "analyze",
    "TraceFormatError": "export",
    "render_span_summary": "export",
    "render_span_tree": "export",
    "summarize_spans": "export",
    "to_prometheus": "export",
    "trace_to_chrome": "export",
    "trace_to_json": "export",
    "validate_trace": "export",
    # Persistent telemetry (see docs/observability.md "Persistent
    # telemetry"): all lazy — only sessions that enable telemetry pay
    # the imports.
    "QueryLog": "qlog",
    "QueryLogError": "qlog",
    "iter_records": "qlog",
    "statement_fingerprint": "qlog",
    "validate_record": "qlog",
    "LogHistogram": "timeseries",
    "RingBuffer": "timeseries",
    "TelemetryHub": "timeseries",
    "SamplingProfiler": "profiler",
    "profiling": "profiler",
    "Telemetry": "telemetry",
    "Advisory": "watchdog",
    "FingerprintStats": "watchdog",
    "aggregate_history": "watchdog",
    "load_history": "watchdog",
    "watch": "watchdog",
    "peak_rss_bytes": "rss",
    "peak_rss_kb": "rss",
}

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "active",
    "install",
    "tracing",
] + sorted(_LAZY)


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)
