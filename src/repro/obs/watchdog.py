"""The regression watchdog: workload history aggregation + advisories.

Reads the persistent query log (:mod:`repro.obs.qlog`), folds it into
per-fingerprint statistics (run counts, exact p50/p95/p99 latency,
cache/spill/parallel behaviour), compares against a stored baseline,
and emits runtime ``ASSESS41x`` advisories:

* ``ASSESS410`` — a query's p95 latency regressed past
  ``slow_factor``× its baseline (the "someone made it slow" alarm);
* ``ASSESS411`` — cache-miss storm: a query that used to be served
  from the semantic cache now mostly misses (invalidation churn or an
  evicted working set);
* ``ASSESS412`` — spill pressure: most runs of a query go through the
  bounded-memory spill tier (the budget is undersized for the
  workload);
* ``ASSESS413`` — parallel-fallback storm: the float-exactness gate
  keeps declining the parallel merge, so a configured parallelism is
  not actually being used.

The percentiles here are *exact* (numpy over the recorded latencies),
unlike the bounded-error log-bucketed estimates the live
:class:`~repro.obs.timeseries.TelemetryHub` serves — history files are
small enough to afford exactness, and the acceptance tests pin the
values against numpy directly.

``repro history`` is the CLI face of this module; the advisory catalog
lives in ``docs/observability.md`` and the codes in
``docs/language.md``.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional

from .qlog import iter_records

BASELINE_VERSION = 1
BASELINE_FILENAME = "baseline.json"

DEFAULT_SLOW_FACTOR = 3.0
DEFAULT_MIN_RUNS = 2
STORM_FRACTION = 0.5  # "most runs" threshold for 412/413
CACHE_DROP = 0.5      # 411: hit rate fell below half the baseline rate


class Advisory(NamedTuple):
    """One watchdog finding, mirroring a static diagnostic's shape."""

    code: str
    fingerprint: str
    message: str

    def render(self) -> str:
        from ..analysis.codes import ALL_CODES

        severity = ALL_CODES[self.code].severity
        return f"{severity}: {self.code} [{self.fingerprint}] {self.message}"


class FingerprintStats:
    """Aggregated history of one statement fingerprint."""

    __slots__ = (
        "fingerprint", "cube", "measure", "group_by", "benchmark", "plans",
        "runs", "errors", "latencies", "rows_in", "rows_out", "cells_out",
        "cache_hits", "cache_misses", "cache_derivations", "engine_scans",
        "spill_runs", "spills", "parallel_runs", "fallback_runs",
        "fallbacks", "first_ts", "last_ts", "phase_totals",
    )

    def __init__(self, fingerprint: str):
        self.fingerprint = fingerprint
        self.cube = ""
        self.measure = ""
        self.group_by: List[str] = []
        self.benchmark = ""
        self.plans: Dict[str, int] = {}
        self.runs = 0
        self.errors = 0
        self.latencies: List[float] = []
        self.rows_in = 0
        self.rows_out = 0
        self.cells_out = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_derivations = 0
        self.engine_scans = 0
        self.spill_runs = 0
        self.spills = 0
        self.parallel_runs = 0
        self.fallback_runs = 0
        self.fallbacks = 0
        self.first_ts = math.inf
        self.last_ts = 0.0
        self.phase_totals: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def add(self, record: Dict[str, object]) -> None:
        self.cube = str(record.get("cube", self.cube))
        self.measure = str(record.get("measure", self.measure))
        group_by = record.get("group_by")
        if isinstance(group_by, list):
            self.group_by = [str(level) for level in group_by]
        self.benchmark = str(record.get("benchmark", self.benchmark))
        plan = str(record.get("plan", ""))
        self.plans[plan] = self.plans.get(plan, 0) + 1
        self.runs += 1
        ts = float(record.get("ts", 0.0))
        self.first_ts = min(self.first_ts, ts)
        self.last_ts = max(self.last_ts, ts)
        if record.get("status") == "error":
            self.errors += 1
            return  # failed runs carry no meaningful timings
        self.latencies.append(float(record.get("total_s", 0.0)))
        self.rows_in += int(record.get("rows_in", 0))
        self.rows_out += int(record.get("rows_out", 0))
        self.cells_out += int(record.get("cells_out", 0))
        phases = record.get("phases")
        if isinstance(phases, dict):
            for step, seconds in phases.items():
                self.phase_totals[step] = (
                    self.phase_totals.get(step, 0.0) + float(seconds)
                )
        counters = record.get("counters")
        counters = counters if isinstance(counters, dict) else {}
        self.cache_hits += int(counters.get("cache.hits", 0))
        self.cache_misses += int(counters.get("cache.misses", 0))
        self.cache_derivations += int(counters.get("cache.derivations", 0))
        self.engine_scans += int(counters.get("engine.scans", 0))
        if int(counters.get("engine.spill.spills", 0)) > 0:
            self.spill_runs += 1
        self.spills += int(counters.get("engine.spill.spills", 0))
        if int(record.get("parallelism", 1)) > 1:
            self.parallel_runs += 1
            if int(counters.get("engine.parallel.fallbacks", 0)) > 0:
                self.fallback_runs += 1
        self.fallbacks += int(counters.get("engine.parallel.fallbacks", 0))

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Exact latency percentile (numpy 'linear' interpolation)."""
        if not self.latencies:
            return 0.0
        import numpy as np

        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def cache_hit_rate(self) -> float:
        """Served-without-a-scan rate: (hits + derivations) / lookups."""
        lookups = self.cache_hits + self.cache_derivations + self.cache_misses
        if not lookups:
            return 0.0
        return (self.cache_hits + self.cache_derivations) / lookups

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_derivations + self.cache_misses

    def to_json(self) -> Dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "cube": self.cube,
            "measure": self.measure,
            "group_by": self.group_by,
            "benchmark": self.benchmark,
            "plans": dict(self.plans),
            "runs": self.runs,
            "errors": self.errors,
            "p50_s": self.p50,
            "p95_s": self.p95,
            "p99_s": self.p99,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "cells_out": self.cells_out,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_lookups": self.cache_lookups,
            "engine_scans": self.engine_scans,
            "spill_runs": self.spill_runs,
            "spills": self.spills,
            "parallel_runs": self.parallel_runs,
            "fallback_runs": self.fallback_runs,
            "phase_totals_s": {
                step: round(seconds, 9)
                for step, seconds in sorted(self.phase_totals.items())
            },
        }


def aggregate_history(
    records: Iterable[Dict[str, object]],
) -> Dict[str, FingerprintStats]:
    """Fold query-log records into per-fingerprint statistics."""
    stats: Dict[str, FingerprintStats] = {}
    for record in records:
        fingerprint = str(record.get("fingerprint", ""))
        if not fingerprint:
            continue
        bucket = stats.get(fingerprint)
        if bucket is None:
            bucket = stats[fingerprint] = FingerprintStats(fingerprint)
        bucket.add(record)
    return stats


def load_history(directory) -> Dict[str, FingerprintStats]:
    """Aggregate every record of a telemetry directory."""
    return aggregate_history(iter_records(directory))


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def write_baseline(
    history: Dict[str, FingerprintStats], path
) -> Dict[str, object]:
    """Persist per-fingerprint reference numbers for later comparison."""
    document = {
        "version": BASELINE_VERSION,
        "written_ts": time.time(),
        "fingerprints": {
            fingerprint: {
                "p50_s": stats.p50,
                "p95_s": stats.p95,
                "runs": stats.runs,
                "cube": stats.cube,
                "measure": stats.measure,
                "cache_hit_rate": stats.cache_hit_rate,
                "cache_lookups": stats.cache_lookups,
            }
            for fingerprint, stats in history.items()
        },
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def load_baseline(path) -> Optional[Dict[str, Dict[str, float]]]:
    """The baseline's fingerprint map, or None when absent/unreadable."""
    path = Path(path)
    if not path.is_file():
        return None
    try:
        document = json.loads(path.read_text())
    except ValueError:
        return None
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
    ):
        return None
    fingerprints = document.get("fingerprints")
    return fingerprints if isinstance(fingerprints, dict) else None


# ----------------------------------------------------------------------
# Advisories
# ----------------------------------------------------------------------
def watch(
    history: Dict[str, FingerprintStats],
    baseline: Optional[Dict[str, Dict[str, float]]] = None,
    slow_factor: float = DEFAULT_SLOW_FACTOR,
    min_runs: int = DEFAULT_MIN_RUNS,
) -> List[Advisory]:
    """Run every watchdog rule over the aggregated history."""
    advisories: List[Advisory] = []
    for fingerprint in sorted(history):
        stats = history[fingerprint]
        reference = (baseline or {}).get(fingerprint)
        advisories.extend(
            _watch_one(stats, reference, slow_factor, min_runs)
        )
    return advisories


def _watch_one(
    stats: FingerprintStats,
    reference: Optional[Dict[str, float]],
    slow_factor: float,
    min_runs: int,
) -> List[Advisory]:
    found: List[Advisory] = []
    label = f"{stats.cube}.{stats.measure} by {', '.join(stats.group_by)}"
    if reference and len(stats.latencies) >= min_runs:
        base_p95 = float(reference.get("p95_s", 0.0))
        if base_p95 > 0 and stats.p95 > slow_factor * base_p95:
            found.append(Advisory(
                "ASSESS410", stats.fingerprint,
                f"{label}: p95 {1000 * stats.p95:.1f} ms is "
                f"{stats.p95 / base_p95:.1f}x the baseline "
                f"{1000 * base_p95:.1f} ms "
                f"(threshold {slow_factor:g}x)",
            ))
        base_rate = float(reference.get("cache_hit_rate", 0.0))
        base_lookups = int(reference.get("cache_lookups", 0))
        if (
            base_rate >= 0.5
            and base_lookups >= min_runs
            and stats.cache_lookups >= min_runs
            and stats.cache_hit_rate < CACHE_DROP * base_rate
        ):
            found.append(Advisory(
                "ASSESS411", stats.fingerprint,
                f"{label}: cache hit rate fell to "
                f"{100 * stats.cache_hit_rate:.0f}% from a baseline of "
                f"{100 * base_rate:.0f}% (miss storm — check "
                f"invalidation churn and the cell budget)",
            ))
    if (
        stats.runs >= min_runs
        and stats.spill_runs / max(stats.runs, 1) >= STORM_FRACTION
    ):
        found.append(Advisory(
            "ASSESS412", stats.fingerprint,
            f"{label}: {stats.spill_runs}/{stats.runs} runs spilled "
            f"({stats.spills} partition flushes) — the memory budget is "
            f"undersized for this query's grouping state",
        ))
    if (
        stats.parallel_runs >= min_runs
        and stats.fallback_runs / max(stats.parallel_runs, 1)
        >= STORM_FRACTION
    ):
        found.append(Advisory(
            "ASSESS413", stats.fingerprint,
            f"{label}: {stats.fallback_runs}/{stats.parallel_runs} "
            f"parallel runs fell back to serial (float-exactness gate) — "
            f"configured parallelism is not being used",
        ))
    return found


# ----------------------------------------------------------------------
# BENCH_*.json trajectory
# ----------------------------------------------------------------------
def bench_trajectory(root) -> List[Dict[str, object]]:
    """Summarize the repo's BENCH_*.json documents, oldest PR first.

    The bench documents are heterogeneous (each PR records its own
    experiment), so the trajectory extracts only the comparable spine:
    every numeric leaf whose key ends in ``_s`` (seconds), plus
    ``speedup``/``overhead``-ish ratios — enough for ``repro history
    --bench`` to show whether the recorded performance story moved.
    """
    rows: List[Dict[str, object]] = []
    root = Path(root)
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        metrics: Dict[str, float] = {}
        _collect_metrics(document, "", metrics)
        rows.append({
            "file": path.name,
            "benchmark": document.get("benchmark", "")
            if isinstance(document, dict) else "",
            "metrics": dict(sorted(metrics.items())[:24]),
        })
    return rows


def _collect_metrics(node, prefix: str, out: Dict[str, float]) -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            _collect_metrics(value, f"{prefix}{key}.", out)
        return
    if isinstance(node, list):
        return  # sample arrays are noise, not trajectory
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return
    leaf = prefix.rstrip(".")
    key = leaf.rsplit(".", 1)[-1]
    if key.endswith("_s") or "speedup" in key or "overhead" in key:
        out[leaf] = float(node)
