"""Execution tracing: nested spans with near-zero disabled overhead.

A :class:`Span` records one timed unit of work — an algebra operator, an
engine kernel stage, a cache lookup — with a name, wall-clock duration,
and a flat dict of attributes (row counts, fingerprints, plan node ids).
Spans nest: whatever spans open while another span is active become its
children, so one traced statement yields a tree mirroring the plan.

The module keeps exactly one *active* tracer per process.  By default it
is :data:`NULL_TRACER`, whose ``span()`` returns a shared no-op context
manager and whose ``enabled`` flag is ``False`` — instrumented call
sites guard any non-trivial attribute computation behind that flag, so
production runs pay only an attribute load and a branch per site.
Enable tracing either explicitly::

    tracer = Tracer()
    previous = install(tracer)
    try:
        session.assess(text)
    finally:
        install(previous)
    tree = tracer.roots

or with the :func:`tracing` context manager, which does the same dance::

    with tracing() as tracer:
        session.assess(text)

Tracing never changes what executes — only observes it — so traced
results are bit-identical to untraced ones (property-tested in
``tests/test_obs.py``).
"""

from __future__ import annotations

import functools
import time
from typing import Dict, List, Optional

from .metrics import MetricsRegistry


class Span:
    """One timed, attributed unit of work in the trace tree."""

    __slots__ = ("name", "attrs", "start", "duration", "children", "_tracer")

    def __init__(self, name: str, tracer: "Optional[Tracer]" = None, **attrs):
        self.name = name
        self.attrs: Dict[str, object] = attrs
        self.start = 0.0
        self.duration = 0.0
        self.children: List[Span] = []
        self._tracer = tracer

    def set(self, **attrs) -> "Span":
        """Attach attributes (row counts, outcomes, ...) to the span."""
        self.attrs.update(attrs)
        return self

    @property
    def self_time(self) -> float:
        """Duration minus the children's durations (exclusive time)."""
        return self.duration - sum(child.duration for child in self.children)

    def find(self, name: str) -> "List[Span]":
        """All descendant spans (self included) with a given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def walk(self):
        """Yield self and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    # -- context manager protocol (driven by the owning tracer) --------
    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.start
        if self._tracer is not None:
            self._tracer._pop(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, {1000 * self.duration:.3f} ms, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Collects spans into trees; optionally feeds timing histograms.

    ``roots`` holds the top-level spans (one per traced statement or
    batch).  When constructed with a :class:`MetricsRegistry`, every
    closed span records its duration into the ``<name>.seconds``
    histogram — the "kernel timings" of the metrics catalog.
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.roots: List[Span] = []
        self.metrics = metrics
        self._stack: List[Span] = []

    def span(self, name: str, **attrs) -> Span:
        """Open a span; use as a context manager (``with tracer.span(...)``)."""
        span = Span(name, tracer=self, **attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def event(self, name: str, **attrs) -> Span:
        """A zero-duration marker span (cache hit, CSE serve, ...)."""
        span = Span(name, tracer=None, **attrs)
        span.start = time.perf_counter()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits defensively (exceptions unwinding
        # through several spans): pop up to and including the span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self.metrics is not None:
            self.metrics.observe(f"{span.name}.seconds", span.duration)

    def wrap(self, name: str, **attrs):
        """Decorator form: trace every call of a function as one span."""

        def decorate(func):
            @functools.wraps(func)
            def traced(*args, **kwargs):
                with self.span(name, **attrs):
                    return func(*args, **kwargs)

            return traced

        return decorate

    def clear(self) -> None:
        self.roots = []
        self._stack = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(roots={len(self.roots)}, depth={len(self._stack)})"


class _NullSpan:
    """The shared do-nothing span the disabled tracer hands out."""

    __slots__ = ()
    name = ""
    attrs: Dict[str, object] = {}
    start = 0.0
    duration = 0.0
    children: List[Span] = []

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class NullTracer:
    """The disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    roots: List[Span] = []
    metrics = None

    __slots__ = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def wrap(self, name: str, **attrs):
        def decorate(func):
            return func

        return decorate

    def clear(self) -> None:
        return None


_NULL_SPAN = _NullSpan()
NULL_TRACER = NullTracer()

_ACTIVE = NULL_TRACER


def active():
    """The process's active tracer (the shared no-op one by default)."""
    return _ACTIVE


def install(tracer) -> object:
    """Swap the active tracer; returns the previous one for restoring."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


class tracing:
    """``with tracing() as tracer:`` — enable tracing for a block."""

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.tracer = tracer if tracer is not None else Tracer(metrics=metrics)
        self._previous: object = None

    def __enter__(self) -> Tracer:
        self._previous = install(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        install(self._previous)
