"""Peak-RSS readings with the platform unit quirk normalised away.

``resource.getrusage(...).ru_maxrss`` is the process's high-water
resident set size, but its unit is platform-defined: Linux reports
**kilobytes**, macOS reports **bytes** (and the BSDs kilobytes again).
Every consumer that wants a comparable figure — the benchmark harness,
the storage/spill benchmarks, the query log — must apply the same
correction, so it lives here once instead of being hand-rolled at each
call site.

On platforms without the ``resource`` module (Windows), both helpers
return 0 rather than raising: peak RSS is a nice-to-have annotation,
never a load-bearing measurement.
"""

from __future__ import annotations

import sys

try:  # pragma: no cover - resource exists on every POSIX platform
    import resource
except ImportError:  # pragma: no cover - Windows
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> int:
    """The process's peak resident set size in bytes (0 if unknown)."""
    if resource is None:  # pragma: no cover - Windows
        return 0
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # macOS reports bytes directly
        return int(raw)
    return int(raw) * 1024  # Linux/BSD report kilobytes


def peak_rss_kb() -> int:
    """The process's peak resident set size in kilobytes (0 if unknown).

    This is the unit the ``BENCH_*.json`` documents record
    (``peak_rss_kb``), so benchmarks report identical figures on Linux
    and macOS.
    """
    return peak_rss_bytes() // 1024
