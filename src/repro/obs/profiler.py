"""A low-overhead sampling profiler emitting collapsed stacks.

The tracer (PR 4) tells you *which operator* was slow; the sampling
profiler tells you *which frames inside it*.  A background thread wakes
every ``interval`` seconds, snapshots the Python stacks of the profiled
threads via ``sys._current_frames()`` (no signals — works off the main
thread and never interrupts a running opcode), and accumulates them as
collapsed stacks: one ``frame;frame;frame count`` line per distinct
stack, the interchange format of Brendan Gregg's ``flamegraph.pl``,
``inferno``, and speedscope.

Span attribution: when the active tracer is recording, each sample is
prefixed with the innermost open span's name (``op.get;...``,
``engine.scan;...``), so hot frames aggregate *under the operator that
ran them* in the flame graph — the bridge between the span tree and
the interpreter stack.

Sampling only *observes* the interpreter — it never touches the data
path — so results with the profiler on are bit-identical to results
with it off (asserted in ``tests/test_telemetry.py``).  Overhead is
proportional to sampling rate and stack depth; the default 5 ms
interval costs a few percent (recorded honestly in
``benchmarks/bench_telemetry_overhead.py``), which is why the profiler
is strictly opt-in (``profiling(...)`` or ``REPRO_TELEMETRY_PROFILE``).
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from typing import Iterable, List, Optional, Tuple

from .tracer import active as _active_tracer

DEFAULT_INTERVAL = 0.005  # 5 ms ≈ 200 samples/s

#: Frames from these modules are the profiler/tracer machinery itself —
#: dropped from samples so flame graphs show only workload frames.
_SELF_MODULES = ("repro/obs/profiler",)


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = code.co_filename
    # Compact module-ish path: last two components, extension dropped.
    parts = filename.replace("\\", "/").rsplit("/", 2)[-2:]
    module = "/".join(parts)
    if module.endswith(".py"):
        module = module[:-3]
    return f"{module}:{code.co_name}"


class SamplingProfiler:
    """Samples thread stacks on a timer into collapsed-stack counts."""

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        threads: Optional[Iterable[int]] = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        # None = profile every thread except the sampler itself;
        # otherwise a fixed set of thread idents.
        self._thread_ids = set(threads) if threads is not None else None
        self.stacks: Counter = Counter()
        self.samples = 0
        self._sampler: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._sampler is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._sampler = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._sampler.start()
        return self

    def stop(self) -> "SamplingProfiler":
        sampler = self._sampler
        if sampler is None:
            return self
        self._stop.set()
        sampler.join(timeout=5.0)
        self._sampler = None
        return self

    @property
    def running(self) -> bool:
        return self._sampler is not None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample(own_ident)

    def _sample(self, own_ident: int) -> None:
        span_prefix = self._span_prefix()
        frames = sys._current_frames()
        try:
            for ident, frame in frames.items():
                if ident == own_ident:
                    continue
                if (
                    self._thread_ids is not None
                    and ident not in self._thread_ids
                ):
                    continue
                stack = self._collapse(frame)
                if not stack:
                    continue
                if span_prefix:
                    stack = (span_prefix,) + stack
                self.stacks[stack] += 1
                self.samples += 1
        finally:
            del frames  # drop frame references promptly

    @staticmethod
    def _span_prefix() -> str:
        """The innermost open span's name, if a tracer is recording.

        Best-effort: the span stack belongs to the session thread and
        may mutate mid-read; any inconsistency just mislabels one
        sample, so errors are swallowed.
        """
        tracer = _active_tracer()
        if not tracer.enabled:
            return ""
        try:
            stack = tracer._stack
            return stack[-1].name if stack else ""
        except Exception:  # pragma: no cover - benign race
            return ""

    @staticmethod
    def _collapse(frame) -> Tuple[str, ...]:
        labels: List[str] = []
        while frame is not None:
            label = _frame_label(frame)
            if not any(marker in label for marker in _SELF_MODULES):
                labels.append(label)
            frame = frame.f_back
        labels.reverse()  # collapsed stacks read root -> leaf
        return tuple(labels)

    # ------------------------------------------------------------------
    def collapsed(self, min_count: int = 1) -> str:
        """The accumulated samples as collapsed-stack lines.

        One ``root;...;leaf count`` line per distinct stack, sorted by
        count descending — feed directly to ``flamegraph.pl`` or paste
        into speedscope.
        """
        lines = [
            f"{';'.join(stack)} {count}"
            for stack, count in self.stacks.most_common()
            if count >= min_count
        ]
        return "\n".join(lines)

    def hot_frames(self, k: int = 10) -> List[Tuple[str, int]]:
        """The k leaf frames with the most samples (the 'self time' view)."""
        leaves: Counter = Counter()
        for stack, count in self.stacks.items():
            leaves[stack[-1]] += count
        return leaves.most_common(k)

    def write(self, path) -> str:
        """Write the collapsed stacks to a file; returns the path."""
        text = self.collapsed()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")
        return str(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SamplingProfiler(interval={self.interval}, "
            f"samples={self.samples}, stacks={len(self.stacks)})"
        )


class profiling:
    """``with profiling() as profiler:`` — sample for the block.

    By default only the calling thread is profiled (the usual "profile
    this statement" case); pass ``all_threads=True`` to sample every
    thread, e.g. to see morsel-parallel workers.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        all_threads: bool = False,
    ):
        threads = None if all_threads else (threading.get_ident(),)
        self.profiler = SamplingProfiler(interval=interval, threads=threads)

    def __enter__(self) -> SamplingProfiler:
        return self.profiler.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.profiler.stop()


def profile_env_interval(
    value: Optional[str] = None,
) -> Optional[float]:
    """Parse ``REPRO_TELEMETRY_PROFILE``: unset/0/off → None, else an
    interval in milliseconds ('1' means the default interval)."""
    import os

    if value is None:
        value = os.environ.get("REPRO_TELEMETRY_PROFILE", "")
    value = value.strip().lower()
    if value in ("", "0", "off", "false", "no"):
        return None
    if value in ("1", "on", "true", "yes"):
        return DEFAULT_INTERVAL
    try:
        millis = float(value)
    except ValueError:
        return DEFAULT_INTERVAL
    return max(millis / 1000.0, 1e-4)
