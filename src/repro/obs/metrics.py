"""The metrics registry: process-wide counters and histograms.

A :class:`MetricsRegistry` is a flat namespace of named **counters**
(monotonic integers, always cheap to bump) and **histograms** (running
count/total/min/max of observed values, used for operator timings).
Registries form a tree: a child registry created with ``parent=``
propagates every increment and observation upward, optionally under a
``prefix`` — so a per-cache registry records ``hits`` locally while the
engine-wide parent sees the same bump as ``cache.hits``, and the global
:data:`METRICS` singleton aggregates across every engine in the process.

This layering is what lets :meth:`AssessSession.cache_stats` stay
per-session accurate (each engine owns its counters) while
``MetricsRegistry.snapshot()`` on :data:`METRICS` still answers "what
has this process done so far".

Counters are always on — a bump is one dict operation.  Histograms are
fed by the tracer (span exit times), so they only accumulate while
tracing is enabled; see :mod:`repro.obs.tracer`.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class MetricsRegistry:
    """Named counters and histograms with optional upward propagation.

    Thread-safe: each registry guards its own maps with a lock (bumps may
    arrive from several session threads at once; read-modify-write on a
    dict entry is not atomic).  Parent propagation happens *outside* the
    child's lock — each registry only ever holds its own — so the tree
    cannot deadlock, at the cost of parent/child snapshots not being a
    single atomic cut (fine for monotonic counters).
    """

    __slots__ = ("parent", "prefix", "_counters", "_histograms", "_lock")

    def __init__(
        self, parent: "Optional[MetricsRegistry]" = None, prefix: str = ""
    ):
        self.parent = parent
        # The name under which our metrics appear in the parent:
        # "" keeps names unchanged, "cache" maps "hits" -> "cache.hits".
        self.prefix = f"{prefix}." if prefix and not prefix.endswith(".") else prefix
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Dict[str, float]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Bump a counter (created at zero on first touch)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value
        if self.parent is not None:
            self.parent.inc(self.prefix + name, value)

    def get(self, name: str) -> int:
        """Current value of a counter (zero if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation (e.g. a span duration in seconds)."""
        with self._lock:
            bucket = self._histograms.get(name)
            if bucket is None:
                bucket = {"count": 0, "total": 0.0, "min": float("inf"),
                          "max": float("-inf")}
                self._histograms[name] = bucket
            bucket["count"] += 1
            bucket["total"] += value
            if value < bucket["min"]:
                bucket["min"] = value
            if value > bucket["max"]:
                bucket["max"] = value
        if self.parent is not None:
            self.parent.observe(self.prefix + name, value)

    def histogram(self, name: str) -> Dict[str, float]:
        """A copy of one histogram's running stats (empty dict if unseen)."""
        with self._lock:
            return dict(self._histograms.get(name, {}))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """All counters and histograms of *this* registry, as plain dicts."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "histograms": {
                    name: dict(bucket) for name, bucket in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Zero this registry's counters and drop its histograms.

        Local only: parents keep their aggregates (a child reset must not
        silently rewrite another component's history).
        """
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)})"
        )


METRICS = MetricsRegistry()
"""The process-wide registry every engine-scoped registry reports into."""
