"""EXPLAIN ANALYZE: execute with tracing, annotate the plan tree.

:func:`explain_analyze` is the engine room behind
:meth:`AssessSession.explain_analyze` and the ``repro trace`` CLI
subcommand.  It executes one statement (or a batch) under a freshly
installed :class:`~repro.obs.tracer.Tracer`, estimates every plan with
the cost model, and correlates the two: every operator span carries the
``id()`` of its plan node (stable while the plan object is alive), so
each tree node can be annotated with

* the cost model's **estimated** output rows and cost charge,
* the **actual** output rows, cells, and inclusive wall time,
* its **provenance** — ``scan`` (cold engine pass), ``cache-hit`` /
  ``cache-derive`` (semantic result cache), ``memo`` (batch CSE), or
  ``fused`` (answered from a shared fused scan).

The get children folded into a pushed join/pivot never execute as their
own algebra operators; their actuals come from the ``engine.side`` spans
the engine opens around each composite side (``side=left/right/base``).
A composite served whole from the result cache has no sides to time —
those nodes are annotated honestly as not re-executed.

:func:`annotate_estimates` renders estimates alone (no execution); it
backs the enriched :meth:`AssessSession.explain`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.cost import CostEstimate, estimate_plan_cost
from ..algebra.plan import GetNode, JoinNode, PivotNode, Plan, PlanNode
from ..core.diagnostics import DiagnosticBag, Severity
from .export import trace_to_chrome, trace_to_json
from .tracer import Span, Tracer, install


def annotate_estimates(plan: Plan, estimate: CostEstimate) -> str:
    """The plan tree with per-node cost-model annotations appended."""
    lines = [f"Plan {plan.name}  (estimated cost {estimate.total:,.0f})"]

    def render(node: PlanNode, indent: int) -> None:
        rows = estimate.node_rows.get(id(node))
        cost = estimate.node_costs.get(id(node))
        parts = []
        if rows is not None:
            parts.append(f"est rows≈{rows:,.0f}")
        if cost is not None:
            parts.append(f"est cost≈{cost:,.0f}")
        suffix = f"  [{', '.join(parts)}]" if parts else ""
        lines.append(("  " * indent) + node.describe() + suffix)
        for child in node.children:
            render(child, indent + 1)

    render(plan.root, 1)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Unregistered-cube diagnostic (ASSESS401)
# ----------------------------------------------------------------------
def trace_diagnostics(session, statements: Sequence[object]) -> DiagnosticBag:
    """Pre-flight check for tracing: every cube must be registered.

    Statement *texts* are raw-parsed (no schema needed) so the check can
    run before semantic binding would abort; already-bound
    ``AssessStatement`` objects are checked by their ``source``.  Reports
    ``ASSESS401`` per offending statement.
    """
    from ..core.statement import AssessStatement
    from ..parser.parser import parse_raw

    bag = DiagnosticBag()
    for statement in statements:
        source, span = None, None
        if isinstance(statement, AssessStatement):
            source = statement.source
        else:
            try:
                raw = parse_raw(str(statement))
            except Exception:
                continue  # the parse diagnostics belong to the analyzer
            source, span = raw.source, raw.source_span
        if source is not None and not session.engine.has_cube(source):
            registered = ", ".join(session.engine.cube_names()) or "none"
            bag.report(
                "ASSESS401", Severity.ERROR,
                f"tracing requested on unregistered cube {source!r}",
                span,
                hint=f"registered cubes: {registered}",
                source="trace",
            )
    return bag


# ----------------------------------------------------------------------
# Node annotation
# ----------------------------------------------------------------------
class NodeAnnotation:
    """Everything EXPLAIN ANALYZE knows about one plan node."""

    __slots__ = ("node", "depth", "est_rows", "est_cost", "actual_rows",
                 "actual_cells", "seconds", "provenance", "folded", "executed")

    def __init__(self, node: PlanNode, depth: int):
        self.node = node
        self.depth = depth
        self.est_rows: Optional[float] = None
        self.est_cost: Optional[float] = None
        self.actual_rows: Optional[int] = None
        self.actual_cells: Optional[int] = None
        self.seconds: Optional[float] = None
        self.provenance: Optional[str] = None
        self.folded = False       # get consumed by a pushed join/pivot
        self.executed = True      # False: composite cache hit skipped it

    def to_dict(self) -> Dict[str, object]:
        return {
            "operator": type(self.node).__name__,
            "describe": self.node.describe(),
            "depth": self.depth,
            "step": self.node.step,
            "est_rows": self.est_rows,
            "est_cost": self.est_cost,
            "actual_rows": self.actual_rows,
            "actual_cells": self.actual_cells,
            "seconds": self.seconds,
            "provenance": self.provenance,
            "folded": self.folded,
            "executed": self.executed,
        }


def _provenance_of(span: Span) -> Optional[str]:
    """How a span's subtree obtained its result, most specific first."""
    names = {}
    for descendant in span.walk():
        names.setdefault(descendant.name, descendant)
    if "batch.cse-hit" in names:
        return "memo"
    if "batch.fused-serve" in names:
        return "fused"
    lookup = names.get("cache.lookup")
    if lookup is not None:
        outcome = lookup.attrs.get("outcome")
        if outcome == "hit":
            return "cache-hit"
        if outcome == "derive":
            return "cache-derive"
    if "engine.fused-scan" in names:
        return "fused-scan"
    if "engine.scan" in names:
        return "scan"
    return None


def _annotate_plan(
    plan: Plan, estimate: CostEstimate, node_spans: Dict[int, Span]
) -> List[NodeAnnotation]:
    annotations: List[NodeAnnotation] = []

    def visit(node: PlanNode, depth: int) -> None:
        annotation = NodeAnnotation(node, depth)
        annotation.est_rows = estimate.node_rows.get(id(node))
        annotation.est_cost = estimate.node_costs.get(id(node))
        span = node_spans.get(id(node))
        if span is not None:
            annotation.actual_rows = span.attrs.get("rows_out")
            annotation.actual_cells = span.attrs.get("cells_out")
            annotation.seconds = span.duration
            annotation.provenance = _provenance_of(span)
        annotations.append(annotation)

        # Folded composite sides: actuals from the engine.side spans.
        sides: Dict[str, PlanNode] = {}
        if isinstance(node, JoinNode) and node.pushed:
            sides = {"left": node.left, "right": node.right}
        elif isinstance(node, PivotNode) and node.pushed:
            sides = {"base": node.child}
        if sides:
            side_spans = span.find("engine.side") if span is not None else []
            by_side = {s.attrs.get("side"): s for s in side_spans}
            for side, child in sides.items():
                folded = NodeAnnotation(child, depth + 1)
                folded.folded = True
                folded.est_rows = estimate.node_rows.get(id(child))
                folded.est_cost = estimate.node_costs.get(id(child))
                side_span = by_side.get(side)
                if side_span is not None:
                    folded.actual_rows = side_span.attrs.get("rows_out")
                    folded.seconds = side_span.duration
                    folded.provenance = _provenance_of(side_span)
                else:
                    folded.executed = False
                annotations.append(folded)
            return  # children fully covered by the folded annotations
        for child in node.children:
            visit(child, depth + 1)

    visit(plan.root, 0)
    return annotations


def _collect_node_spans(roots: Sequence[Span]) -> Dict[int, Span]:
    """Map plan-node id -> first span recorded for it."""
    spans: Dict[int, Span] = {}
    for root in roots:
        for span in root.walk():
            node_id = span.attrs.get("node_id")
            if node_id is not None and node_id not in spans:
                spans[node_id] = span
    return spans


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
class ExplainAnalyzeReport:
    """The outcome of one EXPLAIN ANALYZE run (single statement or batch)."""

    def __init__(
        self,
        plans: Sequence[Plan],
        estimates: Sequence[CostEstimate],
        annotations: Sequence[List[NodeAnnotation]],
        results: Sequence[object],
        tracer: Tracer,
        seconds: Sequence[float],
        batch_report=None,
    ):
        self.plans = list(plans)
        self.estimates = list(estimates)
        self.annotations = list(annotations)
        self.results = list(results)
        self.tracer = tracer
        self.seconds = list(seconds)
        self.batch_report = batch_report

    @property
    def result(self):
        """The (first) statement's assess result."""
        return self.results[0]

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        blocks: List[str] = []
        for index, (plan, estimate, nodes, seconds) in enumerate(
            zip(self.plans, self.estimates, self.annotations, self.seconds)
        ):
            header = f"Plan {plan.name}"
            if len(self.plans) > 1:
                header = f"[statement {index + 1}] {header}"
            blocks.append(
                f"{header}  (estimated cost {estimate.total:,.0f}, "
                f"actual {1000 * seconds:.2f} ms)"
            )
            for annotation in nodes:
                blocks.append(self._render_node(annotation))
            blocks.append("")
        if self.batch_report is not None:
            blocks.append(self.batch_report.render())
            blocks.append("")
        return "\n".join(blocks).rstrip() + "\n"

    @staticmethod
    def _render_node(annotation: NodeAnnotation) -> str:
        parts: List[str] = []
        if annotation.est_rows is not None:
            parts.append(f"est rows≈{annotation.est_rows:,.0f}")
        if not annotation.executed:
            parts.append("not re-executed (composite served from cache)")
        elif annotation.actual_rows is not None:
            actual = f"rows={annotation.actual_rows}"
            if annotation.seconds is not None:
                actual += f", {1000 * annotation.seconds:.3f} ms"
            parts.append(actual)
        if annotation.provenance:
            parts.append(f"via {annotation.provenance}")
        if annotation.folded:
            parts.append("folded")
        suffix = f"  [{' | '.join(parts)}]" if parts else ""
        return ("  " * (annotation.depth + 1)) + annotation.node.describe() + suffix

    # -- machine-readable forms ---------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "statements": [
                {
                    "plan": plan.name,
                    "estimated_cost": estimate.total,
                    "seconds": seconds,
                    "nodes": [a.to_dict() for a in nodes],
                }
                for plan, estimate, nodes, seconds in zip(
                    self.plans, self.estimates, self.annotations, self.seconds
                )
            ],
            "batch_report": (
                self.batch_report.to_dict() if self.batch_report else None
            ),
            "trace": trace_to_json(self.tracer),
        }

    def to_chrome(self) -> List[Dict[str, object]]:
        return trace_to_chrome(self.tracer)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def explain_analyze(
    session, statements: Sequence[object], plan: str = "best"
) -> ExplainAnalyzeReport:
    """Execute with tracing and build the annotated report.

    ``statements`` is a list; one element means single-statement mode
    (plain execution), several mean batch mode (``execute_many``, so the
    trace shows CSE and fusion provenance).  Raises
    :class:`~repro.core.errors.ExecutionError` on an unregistered cube
    (diagnostic ``ASSESS401``).
    """
    import time

    from ..core.errors import ExecutionError

    bag = trace_diagnostics(session, statements)
    if bag.has_errors:
        rendered = "; ".join(d.render() for d in bag.sorted())
        raise ExecutionError(rendered)

    tracer = Tracer(metrics=session.engine.metrics)
    previous = install(tracer)
    try:
        if len(statements) > 1:
            # Batch mode: plans are chosen inside run_batch, so estimates
            # are computed afterwards (for a cold session they are
            # identical to planning-time estimates).
            batch = session.execute_many(list(statements), plan=plan)
            plans = batch.plans
            results = list(batch.results)
            seconds = list(batch.seconds)
            batch_report = batch.report
            estimates = [
                estimate_plan_cost(built, session.engine) for built in plans
            ]
        else:
            resolved = session._resolve(statements[0])
            session._substitute_named_spec(resolved)
            built = session.plan(resolved, plan)
            # Estimate before executing, so the numbers reflect the cache
            # state the planner saw — not the one execution leaves behind.
            estimates = [estimate_plan_cost(built, session.engine)]
            with tracer.span("statement", index=0, plan=built.name):
                start = time.perf_counter()
                result = session._executor.execute(built, resolved)
                elapsed = time.perf_counter() - start
            plans = [built]
            results = [result]
            seconds = [elapsed]
            batch_report = None
    finally:
        install(previous)

    node_spans = _collect_node_spans(tracer.roots)
    annotations = [
        _annotate_plan(built, estimate, node_spans)
        for built, estimate in zip(plans, estimates)
    ]
    return ExplainAnalyzeReport(
        plans, estimates, annotations, results, tracer, seconds, batch_report
    )
