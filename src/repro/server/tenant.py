"""Tenants: isolated engines, session pools, and admission control.

Each tenant owns the full single-user stack — catalog, engine,
semantic cache (with its own cell budget), parallel config, memory
budget, telemetry bundle — plus a fixed pool of
:class:`~repro.api.AssessSession` objects.  The pool bounds the
tenant's concurrent executions; the admission queue bounds how many
requests may *wait* for a session.  Beyond that bound requests are
rejected immediately (HTTP 429 upstream), and a request whose deadline
lapses while queued fails with :class:`DeadlineExceeded` (504).

Because tenants share no catalog, cache, or metrics registry, tenant
A's warm fingerprints can never serve tenant B — the concurrency suite
asserts the counters prove it.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List

from ..api import AssessSession
from .config import AdmissionConfig, TenantConfig


class AdmissionRejected(Exception):
    """The tenant's wait queue is full — retry later (429)."""

    def __init__(self, tenant_id: str, retry_after_s: float):
        super().__init__(
            f"tenant {tenant_id!r} is at capacity "
            f"(retry after {retry_after_s:g}s)"
        )
        self.tenant_id = tenant_id
        self.retry_after_s = retry_after_s


class DeadlineExceeded(Exception):
    """The per-request deadline lapsed (while queued or executing)."""

    def __init__(self, message: str = "request deadline exceeded"):
        super().__init__(message)


class Deadline:
    """A per-request budget in seconds, checked at execution checkpoints."""

    __slots__ = ("seconds", "_expires")

    def __init__(self, seconds: float):
        self.seconds = float(seconds)
        self._expires = time.monotonic() + self.seconds

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(self._expires - time.monotonic(), 0.0)

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self._expires

    def check(self, where: str = "execution") -> None:
        """Raise :class:`DeadlineExceeded` once the budget is spent."""
        if self.expired:
            raise DeadlineExceeded(
                f"deadline of {self.seconds:g}s exceeded during {where}"
            )


def build_engine(config: TenantConfig):
    """The tenant's isolated engine, per its config.

    ``store`` loads a saved column store (memory-mapped, so SF-scale
    tenants serve out of core); otherwise one of the demo cubes is
    generated — ``ssb`` with the BUDGET external cube so all four
    experiment intentions answer.
    """
    if config.store is not None:
        from ..datagen.ssb import ssb_engine_from_catalog
        from ..engine.persist import load_catalog

        return ssb_engine_from_catalog(load_catalog(config.store))
    if config.cube == "ssb":
        from ..experiments.statements import prepare_engine

        return prepare_engine(config.rows or 60_000, seed=config.seed)
    from ..datagen.sales import sales_engine

    return sales_engine(n_rows=config.rows or 20_000, seed=config.seed)


class Tenant:
    """One tenant: engine + session pool + admission bookkeeping."""

    def __init__(self, config: TenantConfig, admission: AdmissionConfig):
        self.config = config
        self.admission = admission
        self.tenant_id = config.tenant_id
        self.engine = build_engine(config)
        if config.cache_cells is not None:
            self.engine.result_cache.cell_budget = config.cache_cells
        if config.memory_budget is not None:
            self.engine.set_memory_budget(config.memory_budget)
        self.telemetry = None
        if config.telemetry_dir is not None:
            from ..obs.telemetry import Telemetry

            self.telemetry = Telemetry(config.telemetry_dir)
        self.pool_size = config.pool_size
        self._pool: "queue.Queue[AssessSession]" = queue.Queue()
        self._sessions: List[AssessSession] = []
        for _ in range(self.pool_size):
            session = AssessSession(
                self.engine,
                parallelism=config.parallelism,
                telemetry=self.telemetry,
            )
            self._sessions.append(session)
            self._pool.put(session)
        self._lock = threading.Lock()
        self._waiting = 0
        self._counters: Dict[str, int] = {
            "admitted": 0,
            "completed": 0,
            "errors": 0,
            "rejected_queue_full": 0,
            "rejected_deadline": 0,
        }

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def acquire(self, deadline: Deadline) -> AssessSession:
        """Check a session out of the pool, honoring queue bound + deadline.

        A free session admits immediately.  Otherwise the request joins
        the bounded wait queue: beyond ``admission.max_queue`` waiters
        it is rejected outright (:class:`AdmissionRejected` → 429), and
        a queued request whose deadline lapses before a session frees
        up fails with :class:`DeadlineExceeded` (504).
        """
        try:
            session = self._pool.get_nowait()
        except queue.Empty:
            session = self._acquire_queued(deadline)
        with self._lock:
            self._counters["admitted"] += 1
        return session

    def _acquire_queued(self, deadline: Deadline) -> AssessSession:
        with self._lock:
            if self._waiting >= self.admission.max_queue:
                self._counters["rejected_queue_full"] += 1
                raise AdmissionRejected(
                    self.tenant_id, self.admission.retry_after_s
                )
            self._waiting += 1
        try:
            timeout = deadline.remaining()
            if timeout <= 0.0:
                with self._lock:
                    self._counters["rejected_deadline"] += 1
                raise DeadlineExceeded(
                    f"deadline spent before tenant {self.tenant_id!r} "
                    "had a free session"
                )
            try:
                return self._pool.get(timeout=timeout)
            except queue.Empty:
                with self._lock:
                    self._counters["rejected_deadline"] += 1
                raise DeadlineExceeded(
                    f"no session free within {deadline.seconds:g}s "
                    f"for tenant {self.tenant_id!r}"
                ) from None
        finally:
            with self._lock:
                self._waiting -= 1

    def release(self, session: AssessSession, ok: bool = True) -> None:
        """Return a session to the pool (always — sessions are stateless
        between requests; the engine-level cache is the shared state)."""
        with self._lock:
            self._counters["completed" if ok else "errors"] += 1
        self._pool.put(session)

    def available(self) -> int:
        """Sessions currently free (approximate under concurrency)."""
        return self._pool.qsize()

    @property
    def waiting(self) -> int:
        with self._lock:
            return self._waiting

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def admission_stats(self) -> Dict[str, int]:
        with self._lock:
            stats = dict(self._counters)
        stats["max_queue"] = self.admission.max_queue
        stats["waiting"] = self.waiting
        return stats

    def stats(self) -> Dict[str, object]:
        """The ``/v1/tenants/<id>/stats`` document body."""
        sessions = self._sessions
        document: Dict[str, object] = {
            "tenant": self.tenant_id,
            "cube": self.config.cube if self.config.store is None
            else self.config.store,
            "pool": {
                "size": self.pool_size,
                "available": self.available(),
                "in_use": self.pool_size - self.available(),
            },
            "admission": self.admission_stats(),
            "cache": sessions[0].cache_stats(),
            "counters": dict(
                sorted(self.engine.metrics.snapshot()["counters"].items())
            ),
            "parallelism": sessions[0].parallelism,
            "memory_budget": self.engine.memory_budget,
        }
        if self.telemetry is not None:
            document["telemetry"] = self._telemetry_stats()
        return document

    def _telemetry_stats(self) -> Dict[str, object]:
        """Query-log aggregates + watchdog advisories for this tenant."""
        from ..obs.qlog import QueryLogError, iter_records
        from ..obs.watchdog import aggregate_history, watch

        telemetry = self.telemetry
        assert telemetry is not None
        try:
            records = list(iter_records(telemetry.directory))
        except QueryLogError:
            records = []
        history = aggregate_history(records)
        advisories = watch(history, baseline=None)
        return {
            "directory": str(telemetry.directory),
            "records": len(records),
            "fingerprints": len(history),
            "sessions": sorted({
                str(record.get("session", "")) for record in records
            }),
            "advisories": [
                {
                    "code": advisory.code,
                    "fingerprint": advisory.fingerprint,
                    "message": advisory.message,
                }
                for advisory in advisories
            ],
        }

    def close(self) -> None:
        """Flush telemetry (profiler stacks included) on server shutdown."""
        if self.telemetry is not None:
            self.telemetry.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tenant({self.tenant_id!r}, pool={self.pool_size}, "
            f"available={self.available()})"
        )
