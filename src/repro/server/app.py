"""The HTTP serving layer: routing, envelopes, deadlines, shutdown.

:class:`ReproServer` wraps a stdlib ``ThreadingHTTPServer`` (one
thread per connection, no new dependencies) around a tenant map.  The
request life cycle for ``POST /v1/query``:

1. **drain gate** — a draining server answers 503 immediately;
2. **routing + body** — malformed JSON or an unknown tenant never
   touches a session (400/404);
3. **admission** — a pooled session is checked out under the bounded
   queue (429 + ``Retry-After`` on saturation, 504 if the deadline
   lapses while queued);
4. **lint** — the statement runs through the static analyzer; error
   diagnostics (ASSESSxxx) come back as a 422 envelope;
5. **execution** — runs on a worker thread so the per-request deadline
   is enforced as a hard response timeout (504); the worker returns
   the session to the pool when it finishes either way, so a timed-out
   request can never leak or corrupt a pooled session;
6. **response** — the serialized result (``repro.server.wire``), bit-
   identical to direct :class:`~repro.api.AssessSession` execution.

Error envelope (every non-200)::

    {"schema_version": 1,
     "error": {"status": 422, "code": "lint_failed",
               "message": "...", "diagnostics": [...]}}

Graceful shutdown (:meth:`ReproServer.shutdown`) flips the drain gate,
waits for in-flight requests *and* their workers to finish, stops the
listener, and closes every tenant's telemetry bundle — which is why
the fault suite can assert a mid-request shutdown leaves no torn
query-log records.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from .config import VALID_PLANS, ServerConfig
from .tenant import AdmissionRejected, Deadline, DeadlineExceeded, Tenant
from .wire import (
    SCHEMA_VERSION,
    serialize_batch,
    serialize_diagnostics,
    serialize_result,
)

MAX_BODY_BYTES = 4 * 1024 * 1024


class _HTTPServer(ThreadingHTTPServer):
    # The stdlib listen backlog is 5; a 16-client burst overflows it
    # and dropped SYNs surface as connection resets / 1s retransmit
    # stalls.  Admission control is the bounded queue — the TCP layer
    # must not be the (silent, lossy) one.
    request_queue_size = 128


class RequestError(Exception):
    """A request that maps to a non-200 JSON envelope."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        diagnostics: Optional[List[Dict[str, object]]] = None,
        retry_after_s: Optional[float] = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.diagnostics = diagnostics
        self.retry_after_s = retry_after_s

    def envelope(self) -> Dict[str, object]:
        error: Dict[str, object] = {
            "status": self.status,
            "code": self.code,
            "message": self.message,
        }
        if self.diagnostics is not None:
            error["diagnostics"] = self.diagnostics
        if self.retry_after_s is not None:
            error["retry_after_s"] = self.retry_after_s
        return {"schema_version": SCHEMA_VERSION, "error": error}


class LintFailure(RequestError):
    """A statement the static analyzer rejected (ASSESSxxx errors)."""

    def __init__(self, bag, statement_index: Optional[int] = None):
        diagnostics = serialize_diagnostics(bag)
        codes = sorted({
            d["code"] for d in diagnostics if str(d["severity"]) == "error"
        })
        where = (
            "statement" if statement_index is None
            else f"statement {statement_index}"
        )
        super().__init__(
            422, "lint_failed",
            f"{where} failed static analysis ({', '.join(codes)})",
            diagnostics=diagnostics,
        )


class ReproServer:
    """A multi-tenant assess server over one :class:`ServerConfig`."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.tenants: Dict[str, Tenant] = {
            tenant_id: Tenant(tenant_config, config.admission)
            for tenant_id, tenant_config in config.tenants.items()
        }
        self.started_at = time.time()
        # Fault-injection hook (test/bench only): called inside the
        # execution worker, before the statement runs — a sleeping hook
        # simulates a slow tenant without touching engine code.
        self.before_execute = None
        self._state_lock = threading.Lock()
        self._drained = threading.Condition(self._state_lock)
        self._in_flight = 0
        self._executing = 0
        self._draining = False
        self._requests_total = 0
        self._responses: Dict[int, int] = {}
        handler = _make_handler(self)
        self.httpd = _HTTPServer((config.host, config.port), handler)
        self.httpd.daemon_threads = True
        self.host, self.port = self.httpd.server_address[:2]
        self._serve_thread: Optional[threading.Thread] = None
        self._serving = False

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Serve in a background thread (the test/bench entry point)."""
        self._serving = True
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._serving = True
        self.httpd.serve_forever()

    def shutdown(self, grace_s: Optional[float] = None) -> bool:
        """Drain in-flight queries, stop the listener, close tenants.

        New requests are answered 503 the moment draining starts.
        Returns ``True`` when every in-flight request and execution
        worker finished within the grace period.
        """
        if grace_s is None:
            grace_s = self.config.admission.shutdown_grace_s
        with self._drained:
            self._draining = True
            drained = self._drained.wait_for(
                lambda: self._in_flight == 0 and self._executing == 0,
                timeout=grace_s,
            )
        if self._serving:
            # httpd.shutdown() blocks on the serve loop acknowledging;
            # with no loop ever started (--check) it would hang forever.
            self.httpd.shutdown()
            self._serving = False
        self.httpd.server_close()
        for tenant in self.tenants.values():
            tenant.close()
        return drained

    # ------------------------------------------------------------------
    # Request bookkeeping (handler-thread side)
    # ------------------------------------------------------------------
    def _enter_request(self) -> None:
        with self._state_lock:
            if self._draining:
                raise RequestError(
                    503, "shutting_down", "server is draining; not accepting "
                    "new requests",
                )
            self._in_flight += 1
            self._requests_total += 1

    def _exit_request(self, status: int) -> None:
        with self._drained:
            self._in_flight -= 1
            self._responses[status] = self._responses.get(status, 0) + 1
            self._drained.notify_all()

    # ------------------------------------------------------------------
    # Deadline-bounded execution
    # ------------------------------------------------------------------
    def _resolve_deadline(self, payload: Dict[str, object]) -> Deadline:
        admission = self.config.admission
        requested = payload.get("deadline_s")
        if requested is None:
            return Deadline(admission.deadline_s)
        if not isinstance(requested, (int, float)) or isinstance(requested, bool) \
                or requested <= 0:
            raise RequestError(
                400, "bad_request", "'deadline_s' must be a positive number"
            )
        return Deadline(min(float(requested), admission.deadline_s))

    def _execute(self, tenant: Tenant, deadline: Deadline, work):
        """Run ``work(session)`` on a worker thread under the deadline.

        The worker owns the session: it returns it to the pool in its
        ``finally``, so a 504ed request's session rejoins the pool clean
        once the (still running) execution completes.  The worker also
        counts toward the drain gate — shutdown waits for it, which
        keeps telemetry appends ahead of ``tenant.close()``.
        """
        session = tenant.acquire(deadline)
        with self._state_lock:
            self._executing += 1
        box: Dict[str, object] = {}
        done = threading.Event()

        def run() -> None:
            ok = False
            try:
                if self.before_execute is not None:
                    self.before_execute(tenant.tenant_id)
                deadline.check("admission")
                box["value"] = work(session)
                ok = True
            except BaseException as error:  # noqa: BLE001 - re-raised below
                box["error"] = error
            finally:
                tenant.release(session, ok=ok)
                with self._drained:
                    self._executing -= 1
                    self._drained.notify_all()
                done.set()

        worker = threading.Thread(target=run, name="repro-exec", daemon=True)
        worker.start()
        if not done.wait(timeout=deadline.remaining() + 0.001):
            raise DeadlineExceeded(
                f"execution exceeded the {deadline.seconds:g}s deadline "
                f"(tenant {tenant.tenant_id!r})"
            )
        error = box.get("error")
        if error is not None:
            raise error  # type: ignore[misc]
        return box["value"]

    # ------------------------------------------------------------------
    # Shared request plumbing
    # ------------------------------------------------------------------
    def _tenant(self, payload: Dict[str, object]) -> Tenant:
        tenant_id = payload.get("tenant")
        if not isinstance(tenant_id, str) or not tenant_id:
            raise RequestError(
                400, "bad_request", "'tenant' must be a non-empty string"
            )
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            raise RequestError(
                404, "unknown_tenant",
                f"unknown tenant {tenant_id!r} "
                f"(configured: {', '.join(sorted(self.tenants))})",
            )
        return tenant

    @staticmethod
    def _plan(payload: Dict[str, object]) -> str:
        plan = payload.get("plan", "best")
        if plan not in VALID_PLANS:
            raise RequestError(
                400, "bad_request",
                f"'plan' must be one of {list(VALID_PLANS)}, got {plan!r}",
            )
        return str(plan)

    @staticmethod
    def _statement(payload: Dict[str, object], key: str = "statement") -> str:
        statement = payload.get(key)
        if not isinstance(statement, str) or not statement.strip():
            raise RequestError(
                400, "bad_request", f"'{key}' must be a non-empty string"
            )
        return statement

    @staticmethod
    def _lint(session, statement: str, index: Optional[int] = None) -> None:
        bag = session.analyze(statement)
        if bag.has_errors:
            raise LintFailure(bag, statement_index=index)

    # ------------------------------------------------------------------
    # Endpoint bodies (return (status, document) or (status, text, mime))
    # ------------------------------------------------------------------
    def handle_query(self, payload: Dict[str, object]) -> Dict[str, object]:
        tenant = self._tenant(payload)
        plan = self._plan(payload)
        statement = self._statement(payload)
        deadline = self._resolve_deadline(payload)
        start = time.perf_counter()

        def work(session):
            self._lint(session, statement)
            deadline.check("planning")
            result = session.assess(statement, plan=plan)
            return serialize_result(result)

        document = self._execute(tenant, deadline, work)
        document.update(
            schema_version=SCHEMA_VERSION,
            tenant=tenant.tenant_id,
            elapsed_s=round(time.perf_counter() - start, 9),
        )
        return document

    def handle_batch(self, payload: Dict[str, object]) -> Dict[str, object]:
        tenant = self._tenant(payload)
        plan = self._plan(payload)
        statements = payload.get("statements")
        if (
            not isinstance(statements, list)
            or not statements
            or not all(isinstance(s, str) and s.strip() for s in statements)
        ):
            raise RequestError(
                400, "bad_request",
                "'statements' must be a non-empty array of statement strings",
            )
        deadline = self._resolve_deadline(payload)
        start = time.perf_counter()

        def work(session):
            for index, statement in enumerate(statements):
                self._lint(session, statement, index=index)
            deadline.check("planning")
            batch = session.execute_many(list(statements), plan=plan)
            return serialize_batch(batch)

        document = self._execute(tenant, deadline, work)
        document.update(
            schema_version=SCHEMA_VERSION,
            tenant=tenant.tenant_id,
            elapsed_s=round(time.perf_counter() - start, 9),
        )
        return document

    def handle_explain(self, payload: Dict[str, object]) -> Dict[str, object]:
        tenant = self._tenant(payload)
        plan = self._plan(payload)
        if plan == "auto":
            raise RequestError(
                400, "bad_request", "explain does not support plan 'auto'; "
                "pick NP, JOP, POP, or best",
            )
        statement = self._statement(payload)
        deadline = self._resolve_deadline(payload)

        def work(session):
            self._lint(session, statement)
            deadline.check("planning")
            return {
                "plans": list(session.feasible_plans(statement)),
                "explain": session.explain(statement, plan=plan),
            }

        document = self._execute(tenant, deadline, work)
        document.update(
            schema_version=SCHEMA_VERSION, tenant=tenant.tenant_id, plan=plan
        )
        return document

    def handle_health(self) -> Dict[str, object]:
        with self._state_lock:
            draining = self._draining
            in_flight = self._in_flight
            requests_total = self._requests_total
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "draining" if draining else "ok",
            "tenants": sorted(self.tenants),
            "uptime_s": round(time.time() - self.started_at, 3),
            "in_flight": in_flight,
            "requests_total": requests_total,
        }

    def handle_metrics(self) -> str:
        """Prometheus text: the process roll-up plus per-tenant families."""
        from ..obs.export import to_prometheus

        parts = [to_prometheus()]
        for tenant_id in sorted(self.tenants):
            tenant = self.tenants[tenant_id]
            hub = (
                tenant.telemetry.hub if tenant.telemetry is not None else None
            )
            parts.append(to_prometheus(
                tenant.engine.metrics, hub=hub,
                namespace=f"repro_tenant_{tenant_id}",
            ))
        return "".join(part for part in parts if part)

    def handle_tenant_stats(self, tenant_id: str) -> Dict[str, object]:
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            raise RequestError(
                404, "unknown_tenant", f"unknown tenant {tenant_id!r}"
            )
        document = tenant.stats()
        document["schema_version"] = SCHEMA_VERSION
        return document

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReproServer({self.url}, tenants={sorted(self.tenants)})"


# ----------------------------------------------------------------------
# The stdlib handler: routing and envelope writing only
# ----------------------------------------------------------------------
def _make_handler(app: ReproServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-assess/1"

        # Quiet by default: the serving loop must not spam test output.
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass

        # -- plumbing ---------------------------------------------------
        def _send_document(
            self, status: int, document: Dict[str, object],
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = json.dumps(
                document, sort_keys=True, separators=(",", ":"),
                allow_nan=False,
            ).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_text(self, status: int, text: str, mime: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", mime)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error_envelope(self, error: RequestError) -> None:
            headers = {}
            if error.retry_after_s is not None:
                headers["Retry-After"] = f"{error.retry_after_s:g}"
            self._send_document(error.status, error.envelope(), headers)

        def _read_payload(self) -> Dict[str, object]:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                raise RequestError(
                    400, "bad_request", "invalid Content-Length"
                ) from None
            if length <= 0:
                raise RequestError(
                    400, "bad_request", "request body is required"
                )
            if length > MAX_BODY_BYTES:
                raise RequestError(
                    413, "payload_too_large",
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                )
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                raise RequestError(
                    400, "bad_json", "request body is not valid JSON"
                ) from None
            if not isinstance(payload, dict):
                raise RequestError(
                    400, "bad_request", "request body must be a JSON object"
                )
            return payload

        # -- routing ----------------------------------------------------
        def _route(self, method: str) -> Tuple[int, object, Optional[str]]:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if method == "GET":
                if path == "/v1/health":
                    return 200, app.handle_health(), None
                if path == "/v1/metrics":
                    return 200, app.handle_metrics(), "text/plain; version=0.0.4"
                if path.startswith("/v1/tenants/") and path.endswith("/stats"):
                    tenant_id = path[len("/v1/tenants/"):-len("/stats")]
                    return 200, app.handle_tenant_stats(tenant_id), None
                if path in ("/v1/query", "/v1/batch", "/v1/explain"):
                    raise RequestError(
                        405, "method_not_allowed", f"{path} requires POST"
                    )
                raise RequestError(404, "not_found", f"unknown path {path!r}")
            if method == "POST":
                if path == "/v1/query":
                    return 200, app.handle_query(self._read_payload()), None
                if path == "/v1/batch":
                    return 200, app.handle_batch(self._read_payload()), None
                if path == "/v1/explain":
                    return 200, app.handle_explain(self._read_payload()), None
                if path in ("/v1/health", "/v1/metrics") or (
                    path.startswith("/v1/tenants/") and path.endswith("/stats")
                ):
                    raise RequestError(
                        405, "method_not_allowed", f"{path} requires GET"
                    )
                raise RequestError(404, "not_found", f"unknown path {path!r}")
            raise RequestError(
                405, "method_not_allowed", f"unsupported method {method}"
            )

        def _handle(self, method: str) -> None:
            status = 500
            try:
                app._enter_request()
            except RequestError as error:
                # Draining: answer without touching the in-flight gate.
                self._send_error_envelope(error)
                return
            try:
                try:
                    status, document, mime = self._route(method)
                except RequestError:
                    raise
                except AdmissionRejected as error:
                    raise RequestError(
                        429, "overloaded", str(error),
                        retry_after_s=error.retry_after_s,
                    ) from None
                except DeadlineExceeded as error:
                    raise RequestError(
                        504, "deadline_exceeded", str(error)
                    ) from None
                except Exception as error:  # noqa: BLE001 - envelope + 500
                    raise RequestError(
                        500, "internal",
                        f"{type(error).__name__}: {error}",
                    ) from error
                if mime is not None:
                    self._send_text(status, str(document), mime)
                else:
                    assert isinstance(document, dict)
                    self._send_document(status, document)
            except RequestError as error:
                status = error.status
                self._send_error_envelope(error)
            finally:
                app._exit_request(status)

        def do_GET(self) -> None:  # noqa: N802 - stdlib naming
            self._handle("GET")

        def do_POST(self) -> None:  # noqa: N802 - stdlib naming
            self._handle("POST")

        def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
            self._handle("PUT")

        def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
            self._handle("DELETE")

    return Handler


# ----------------------------------------------------------------------
# CLI entry point: ``python -m repro.cli serve``
# ----------------------------------------------------------------------
def serve_main(argv=None) -> int:
    """The ``serve`` subcommand: stand up the multi-tenant HTTP server.

    Either ``--config PATH`` (JSON; TOML on Python 3.11+) or the quick
    flags (``--tenants a,b --cube ssb --rows N``) describe the tenants;
    ``--check`` builds everything, prints the endpoint map, and exits
    without binding a socket loop (the CI smoke uses it).  SIGINT
    triggers the graceful drain.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli serve",
        description="Serve assess statements to concurrent tenants over "
        "HTTP/JSON with admission control (see docs/server.md).",
    )
    parser.add_argument("--config", metavar="PATH", default=None,
                        help="server config file (JSON; TOML on py3.11+); "
                        "overrides the quick flags below")
    parser.add_argument("--host", default=None,
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port (default: 8787; 0 = ephemeral)")
    parser.add_argument("--tenants", default="default",
                        help="comma-separated tenant ids for the quick "
                        "config (default: one tenant named 'default')")
    parser.add_argument("--cube", choices=("sales", "ssb"), default="ssb",
                        help="demo cube every quick tenant serves "
                        "(default: ssb)")
    parser.add_argument("--rows", type=int, default=None,
                        help="fact rows per quick tenant")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="serve a saved column store instead of a "
                        "generated demo cube")
    parser.add_argument("--pool-size", type=int, default=None,
                        help="sessions per tenant (default: 2)")
    parser.add_argument("--max-queue", type=int, default=None,
                        help="queued requests per tenant before 429 "
                        "(default: 8)")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="default per-request deadline in seconds "
                        "(default: 30)")
    parser.add_argument("--telemetry-dir", metavar="DIR", default=None,
                        help="per-tenant query logs under DIR/<tenant>")
    parser.add_argument("--parallelism", type=int, default=None, metavar="N",
                        help="morsel-parallel degree per tenant engine")
    parser.add_argument("--memory-bytes", type=int, default=None,
                        help="per-tenant memory budget (spill tier)")
    parser.add_argument("--check", action="store_true",
                        help="build the tenants, print the endpoint map, "
                        "and exit without serving")
    args = parser.parse_args(argv)

    import sys

    from .config import (
        AdmissionConfig,
        ServerConfigError,
        TenantConfig,
        load_config,
    )

    try:
        if args.config is not None:
            config = load_config(args.config)
        else:
            admission_kwargs = {}
            if args.max_queue is not None:
                admission_kwargs["max_queue"] = args.max_queue
            if args.deadline is not None:
                admission_kwargs["deadline_s"] = args.deadline
            tenants = []
            for tenant_id in args.tenants.split(","):
                tenant_id = tenant_id.strip()
                if not tenant_id:
                    continue
                telemetry_dir = None
                if args.telemetry_dir is not None:
                    telemetry_dir = f"{args.telemetry_dir}/{tenant_id}"
                tenants.append(TenantConfig(
                    tenant_id,
                    cube=args.cube,
                    rows=args.rows,
                    store=args.store,
                    pool_size=args.pool_size or 2,
                    parallelism=args.parallelism,
                    memory_budget=args.memory_bytes,
                    telemetry_dir=telemetry_dir,
                ))
            config = ServerConfig(
                host=args.host if args.host is not None else "127.0.0.1",
                port=args.port if args.port is not None else 8787,
                admission=AdmissionConfig(**admission_kwargs),
                tenants=tenants,
            )
        if args.config is not None and args.host is not None:
            config.host = args.host
        if args.config is not None and args.port is not None:
            config.port = args.port
        server = ReproServer(config)
    except ServerConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"repro assess server listening on {server.url}")
    for tenant_id in sorted(server.tenants):
        tenant = server.tenants[tenant_id]
        print(f"  tenant {tenant_id}: cube {tenant.config.store or tenant.config.cube}, "
              f"pool {tenant.pool_size}, "
              f"max queue {config.admission.max_queue}, "
              f"deadline {config.admission.deadline_s:g}s")
    print(f"  POST {server.url}/v1/query | /v1/batch | /v1/explain")
    print(f"  GET  {server.url}/v1/health | /v1/metrics | "
          f"/v1/tenants/<id>/stats")
    if args.check:
        server.shutdown(grace_s=0.0)
        print("--check: configuration and tenants OK, exiting")
        return 0
    try:
        server.serve_forever()  # pragma: no cover - interactive loop
    except KeyboardInterrupt:  # pragma: no cover - interactive loop
        print("draining in-flight queries ...", file=sys.stderr)
        server.shutdown()
    return 0
