"""The multi-tenant assess server: HTTP/JSON serving over the engine.

``repro serve`` stands up a zero-dependency HTTP server (stdlib
``http.server``) in the spirit of Cubes' Slicer: each *tenant* owns an
isolated catalog, engine, semantic cache, and a pool of
:class:`~repro.api.AssessSession` objects, so concurrent analysts get
the full stack — semantic cache, batched fusion, parallel morsels,
spill tier, telemetry — without sharing state across tenants.

Endpoints (all JSON, schema version 1 — see ``docs/server.md``):

* ``POST /v1/query``   — one assess statement
* ``POST /v1/batch``   — a statement batch with fused shared scans
* ``POST /v1/explain`` — the plan tree + pushed SQL, no execution
* ``GET  /v1/health``  — liveness, tenants, in-flight count
* ``GET  /v1/metrics`` — Prometheus text (global + per tenant)
* ``GET  /v1/tenants/<id>/stats`` — pool, admission, cache, watchdog

Admission control: requests wait in a bounded per-tenant queue for a
pooled session; saturation answers ``429`` with ``Retry-After``, and a
per-request deadline (``deadline_s``) is enforced while queued, at
execution checkpoints, and as a hard response timeout (``504``).
Shutdown drains in-flight queries before closing tenant telemetry.
"""

from .app import ReproServer, serve_main
from .config import (
    AdmissionConfig,
    ServerConfig,
    ServerConfigError,
    TenantConfig,
    load_config,
)
from .tenant import AdmissionRejected, Deadline, DeadlineExceeded, Tenant
from .wire import SCHEMA_VERSION, serialize_batch, serialize_result

__all__ = [
    "AdmissionConfig",
    "AdmissionRejected",
    "Deadline",
    "DeadlineExceeded",
    "ReproServer",
    "SCHEMA_VERSION",
    "ServerConfig",
    "ServerConfigError",
    "Tenant",
    "TenantConfig",
    "load_config",
    "serialize_batch",
    "serialize_result",
    "serve_main",
]
