"""Wire format: assess results and diagnostics as JSON documents.

One serializer, used by both the HTTP handlers and the test battery —
``tests/test_server_concurrency.py`` proves served responses are
bit-identical to direct :class:`~repro.api.AssessSession` execution by
serializing the direct result through these same functions and
comparing parsed JSON trees.  Floats round-trip exactly through
``json`` (``repr`` encoding); ``NaN`` is mapped to ``null`` so the
documents stay strict JSON.

The response schema is versioned (:data:`SCHEMA_VERSION`) and
structurally validated by ``tools/check_server_schema.py``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

SCHEMA_VERSION = 1
"""Bump when a response field changes meaning; the validator pins it."""


def _number(value) -> Optional[float]:
    """A contract-column value as a JSON number (NaN/None → null)."""
    if value is None:
        return None
    value = float(value)
    if math.isnan(value):
        return None
    return value


def _member(value) -> object:
    """A coordinate member as a JSON scalar (numpy scalars unwrapped)."""
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return _number(value)
    return str(value)


def _label_key(label) -> str:
    return "null" if label is None else str(label)


def serialize_result(result) -> Dict[str, object]:
    """One :class:`~repro.core.result.AssessResult` as a JSON document.

    Cells come out in the deterministic coordinate order of
    ``result.cells()``, so two executions of the same statement —
    served or direct, serial or parallel — serialize identically.
    """
    levels = list(result.cube.group_by.levels)
    cells: List[Dict[str, object]] = []
    for cell in result.cells():
        cells.append({
            "coordinate": {
                level: _member(member)
                for level, member in zip(levels, cell.coordinate)
            },
            "value": _number(cell.value),
            "benchmark": _number(cell.benchmark),
            "comparison": _number(cell.comparison),
            "label": cell.label,
        })
    return {
        "plan": result.plan_name,
        "levels": levels,
        "measure": result.measure,
        "rows": len(result),
        "cells": cells,
        "label_counts": {
            _label_key(label): count
            for label, count in sorted(
                result.label_counts().items(), key=lambda item: _label_key(item[0])
            )
        },
        "timings": {
            step: round(float(seconds), 9)
            for step, seconds in result.timings.items()
        },
    }


def serialize_batch(batch) -> Dict[str, object]:
    """A :class:`~repro.batch.BatchResult` (results + sharing report)."""
    return {
        "results": [serialize_result(result) for result in batch.results],
        "seconds": [round(float(seconds), 9) for seconds in batch.seconds],
        "sharing": {
            key: value for key, value in batch.report.to_dict().items()
        },
    }


def serialize_diagnostics(bag) -> List[Dict[str, object]]:
    """A diagnostic bag in the lint JSON layout (ASSESSxxx codes first-class)."""
    documents: List[Dict[str, object]] = []
    for diagnostic in bag.sorted():
        span = diagnostic.span
        documents.append({
            "code": diagnostic.code,
            "severity": str(diagnostic.severity),
            "message": diagnostic.message,
            "span": None if span is None else {
                "start": span.start,
                "end": span.end,
                "line": span.line,
                "column": span.column,
            },
            "hint": diagnostic.hint,
        })
    return documents
