"""Server configuration: tenants, pools, budgets, admission control.

A server config is a plain JSON (or, on Python 3.11+, TOML) document::

    {
      "host": "127.0.0.1",
      "port": 8787,
      "admission": {"max_queue": 8, "deadline_s": 30.0,
                    "retry_after_s": 1.0, "shutdown_grace_s": 10.0},
      "tenants": {
        "acme":   {"cube": "ssb", "rows": 60000, "pool_size": 2,
                   "cache_cells": 200000, "parallelism": 2,
                   "memory_budget": 268435456,
                   "telemetry_dir": "telemetry/acme"},
        "globex": {"cube": "sales", "rows": 20000, "pool_size": 2}
      }
    }

Every tenant gets its *own* catalog, engine, semantic cache, and
session pool — nothing is shared across tenants, which is what makes
the isolation guarantees of ``tests/test_server_concurrency.py`` hold
by construction.  A tenant is either one of the bundled demo cubes
(``cube: "sales" | "ssb"``, generated with ``rows``/``seed``) or a
saved column store (``store: <path>`` written by ``repro cube
--save``), so SF-scale tenants serve out of core.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

VALID_CUBES = ("sales", "ssb")
VALID_PLANS = ("NP", "JOP", "POP", "best", "auto")

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787
DEFAULT_POOL_SIZE = 2
DEFAULT_MAX_QUEUE = 8
DEFAULT_DEADLINE_S = 30.0
DEFAULT_RETRY_AFTER_S = 1.0
DEFAULT_SHUTDOWN_GRACE_S = 10.0


class ServerConfigError(ValueError):
    """A malformed or unsatisfiable server configuration."""


class TenantConfig:
    """One tenant: which cube it serves and the budgets it runs under."""

    __slots__ = (
        "tenant_id", "cube", "rows", "seed", "store", "pool_size",
        "cache_cells", "parallelism", "memory_budget", "telemetry_dir",
    )

    def __init__(
        self,
        tenant_id: str,
        cube: str = "sales",
        rows: Optional[int] = None,
        seed: int = 42,
        store: Optional[str] = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        cache_cells: Optional[int] = None,
        parallelism: Optional[int] = None,
        memory_budget: Optional[int] = None,
        telemetry_dir: Optional[str] = None,
    ):
        if not tenant_id or not tenant_id.replace("-", "").replace("_", "").isalnum():
            raise ServerConfigError(
                f"tenant id {tenant_id!r} must be non-empty and "
                "alphanumeric (dashes/underscores allowed)"
            )
        if store is None and cube not in VALID_CUBES:
            raise ServerConfigError(
                f"tenant {tenant_id!r}: cube must be one of {VALID_CUBES}, "
                f"got {cube!r}"
            )
        if pool_size < 1:
            raise ServerConfigError(
                f"tenant {tenant_id!r}: pool_size must be at least 1"
            )
        if rows is not None and rows < 1:
            raise ServerConfigError(f"tenant {tenant_id!r}: rows must be positive")
        if cache_cells is not None and cache_cells < 0:
            raise ServerConfigError(
                f"tenant {tenant_id!r}: cache_cells must be non-negative"
            )
        if memory_budget is not None and memory_budget < 1:
            raise ServerConfigError(
                f"tenant {tenant_id!r}: memory_budget must be positive"
            )
        self.tenant_id = tenant_id
        self.cube = cube
        self.rows = rows
        self.seed = seed
        self.store = store
        self.pool_size = pool_size
        self.cache_cells = cache_cells
        self.parallelism = parallelism
        self.memory_budget = memory_budget
        self.telemetry_dir = telemetry_dir

    _FIELDS = (
        "cube", "rows", "seed", "store", "pool_size", "cache_cells",
        "parallelism", "memory_budget", "telemetry_dir",
    )

    @classmethod
    def from_dict(cls, tenant_id: str, document: object) -> "TenantConfig":
        if not isinstance(document, dict):
            raise ServerConfigError(f"tenant {tenant_id!r}: must be an object")
        unknown = set(document) - set(cls._FIELDS)
        if unknown:
            raise ServerConfigError(
                f"tenant {tenant_id!r}: unknown keys {sorted(unknown)}"
            )
        return cls(tenant_id, **{k: document[k] for k in cls._FIELDS if k in document})

    def to_dict(self) -> Dict[str, object]:
        return {
            field: getattr(self, field)
            for field in self._FIELDS
            if getattr(self, field) is not None
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TenantConfig({self.tenant_id!r}, cube={self.cube!r})"


class AdmissionConfig:
    """Bounded-queue admission control and deadline defaults."""

    __slots__ = ("max_queue", "deadline_s", "retry_after_s", "shutdown_grace_s")

    def __init__(
        self,
        max_queue: int = DEFAULT_MAX_QUEUE,
        deadline_s: float = DEFAULT_DEADLINE_S,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        shutdown_grace_s: float = DEFAULT_SHUTDOWN_GRACE_S,
    ):
        if max_queue < 0:
            raise ServerConfigError("admission.max_queue must be non-negative")
        if deadline_s <= 0:
            raise ServerConfigError("admission.deadline_s must be positive")
        if retry_after_s < 0:
            raise ServerConfigError("admission.retry_after_s must be non-negative")
        if shutdown_grace_s < 0:
            raise ServerConfigError(
                "admission.shutdown_grace_s must be non-negative"
            )
        self.max_queue = max_queue
        self.deadline_s = float(deadline_s)
        self.retry_after_s = float(retry_after_s)
        self.shutdown_grace_s = float(shutdown_grace_s)

    _FIELDS = ("max_queue", "deadline_s", "retry_after_s", "shutdown_grace_s")

    @classmethod
    def from_dict(cls, document: object) -> "AdmissionConfig":
        if not isinstance(document, dict):
            raise ServerConfigError("admission: must be an object")
        unknown = set(document) - set(cls._FIELDS)
        if unknown:
            raise ServerConfigError(f"admission: unknown keys {sorted(unknown)}")
        return cls(**{k: document[k] for k in cls._FIELDS if k in document})

    def to_dict(self) -> Dict[str, float]:
        return {field: getattr(self, field) for field in self._FIELDS}


class ServerConfig:
    """The whole server: bind address, admission policy, tenants."""

    __slots__ = ("host", "port", "admission", "tenants")

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        admission: Optional[AdmissionConfig] = None,
        tenants: Optional[List[TenantConfig]] = None,
    ):
        if not 0 <= port <= 65535:
            raise ServerConfigError(f"port {port} out of range")
        self.host = host
        self.port = int(port)
        self.admission = admission or AdmissionConfig()
        self.tenants: Dict[str, TenantConfig] = {}
        for tenant in tenants or []:
            if tenant.tenant_id in self.tenants:
                raise ServerConfigError(
                    f"duplicate tenant id {tenant.tenant_id!r}"
                )
            self.tenants[tenant.tenant_id] = tenant
        if not self.tenants:
            raise ServerConfigError("at least one tenant is required")

    @classmethod
    def from_dict(cls, document: object) -> "ServerConfig":
        if not isinstance(document, dict):
            raise ServerConfigError("server config must be an object")
        unknown = set(document) - {"host", "port", "admission", "tenants"}
        if unknown:
            raise ServerConfigError(f"unknown keys {sorted(unknown)}")
        tenants_doc = document.get("tenants")
        if not isinstance(tenants_doc, dict) or not tenants_doc:
            raise ServerConfigError("'tenants' must be a non-empty object")
        return cls(
            host=document.get("host", DEFAULT_HOST),
            port=document.get("port", DEFAULT_PORT),
            admission=AdmissionConfig.from_dict(document.get("admission", {})),
            tenants=[
                TenantConfig.from_dict(tenant_id, tenant_doc)
                for tenant_id, tenant_doc in tenants_doc.items()
            ],
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "port": self.port,
            "admission": self.admission.to_dict(),
            "tenants": {
                tenant_id: tenant.to_dict()
                for tenant_id, tenant in self.tenants.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServerConfig({self.host}:{self.port}, "
            f"tenants={list(self.tenants)})"
        )


def load_config(path) -> ServerConfig:
    """Parse a server config file: JSON always, TOML on Python 3.11+.

    TOML support comes from the stdlib ``tomllib`` — no new dependency;
    on older interpreters a ``.toml`` path fails with a clear message
    (write the same document as JSON instead).
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise ServerConfigError(f"cannot read config {path}: {error}") from error
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as error:  # pragma: no cover - py<3.11 only
            raise ServerConfigError(
                "TOML configs need Python 3.11+ (stdlib tomllib); "
                "use a JSON config on this interpreter"
            ) from error
        try:
            document = tomllib.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ServerConfigError(f"invalid TOML in {path}: {error}") from error
    else:
        try:
            document = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ServerConfigError(f"invalid JSON in {path}: {error}") from error
    return ServerConfig.from_dict(document)
