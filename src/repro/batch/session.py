"""Batch orchestration: plan a statement list, merge, execute, report.

:func:`run_batch` is the engine room behind
:meth:`AssessSession.execute_many`:

1. every statement is parsed and planned (``plan="auto"`` uses the
   batch-aware cost model, which prices nodes already chosen by earlier
   statements as shared);
2. the distinct pushed aggregate queries of all plans are collected by
   canonical fingerprint — minus those the result cache would already
   answer — and handed to the fusion planner;
3. the engine's executor is swapped for a batch executor (CSE memo +
   fused scans) and each plan runs in input order through the session's
   ordinary plan executor, so results are bit-identical to sequential
   execution and carry the usual per-step timings.

The returned :class:`BatchResult` holds the per-statement
:class:`AssessResult`s in input order, per-statement wall-clock seconds
(shared work is attributed to the statement that first triggered it),
and the :class:`SharingReport`.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Sequence

from ..algebra.plan import GetNode, Plan
from ..cache.fingerprint import fingerprint_query
from ..core.result import AssessResult
from ..core.statement import AssessStatement
from ..obs.tracer import active as _active_tracer
from .executor import BatchEngineExecutor, SharingReport
from .fuse import plan_fusion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api import AssessSession, StatementLike


class BatchResult:
    """The outcome of one ``execute_many`` call."""

    __slots__ = ("results", "seconds", "report", "plans")

    def __init__(
        self,
        results: Sequence[AssessResult],
        seconds: Sequence[float],
        report: SharingReport,
        plans: Sequence[Plan] = (),
    ):
        self.results: List[AssessResult] = list(results)
        self.seconds: List[float] = list(seconds)
        self.report = report
        # The executed plan objects, input order — explain_analyze
        # correlates operator spans back to these by node identity.
        self.plans: List[Plan] = list(plans)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> AssessResult:
        return self.results[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchResult(statements={len(self.results)}, "
            f"scans={self.report.engine_scans})"
        )


def results_identical(left: AssessResult, right: AssessResult) -> bool:
    """Bit-level equality of two assess results (NaN-aware).

    Column order, coordinates, every measure column's byte pattern (so
    NaNs and signed zeros must match exactly), and labels must all agree
    — the equality :meth:`AssessSession.execute_many` promises against
    running the same statements sequentially.
    """
    import numpy as np

    a, b = left.cube, right.cube
    if tuple(a.group_by.levels) != tuple(b.group_by.levels):
        return False
    if tuple(a.measures) != tuple(b.measures) or len(a) != len(b):
        return False
    for level in a.group_by.levels:
        if a.coords[level].tolist() != b.coords[level].tolist():
            return False
    for name, column in a.measures.items():
        other = b.measures[name]
        if column.dtype != other.dtype:
            return False
        if column.dtype == np.float64:
            if column.tobytes() != other.tobytes():
                return False
        elif column.tolist() != other.tolist():
            return False
    return True


def run_batch(
    session: "AssessSession",
    statements: "Sequence[StatementLike]",
    plan: str = "best",
) -> BatchResult:
    """Plan, merge, and execute a statement batch against one session."""
    engine = session.engine
    engine.metrics.inc("batch.batches")
    engine.metrics.inc("batch.statements", len(statements))
    resolved: List[AssessStatement] = []
    for statement in statements:
        statement = session._resolve(statement)
        session._substitute_named_spec(statement)
        resolved.append(statement)

    if plan == "auto":
        from ..algebra.cost import choose_plan_batch

        plans, _ = choose_plan_batch(resolved, engine)
    else:
        plans = [session.plan(statement, plan) for statement in resolved]

    cache = engine.result_cache
    candidates = []
    seen = set()
    for built in plans:
        for query in _pushed_aggregates(built, engine):
            fingerprint = fingerprint_query(query)
            if fingerprint in seen:
                continue
            seen.add(fingerprint)
            if cache.enabled and cache.would_hit(query) is not None:
                continue  # the cache will answer it without a scan
            candidates.append(query)
    groups = plan_fusion(candidates)

    report = SharingReport(statements=len(resolved), unique_queries=len(seen))
    report.plan_names = [built.name for built in plans]
    before = cache.counters.snapshot()
    batch_executor = BatchEngineExecutor(
        engine.catalog, cache, groups, report, metrics=engine.metrics
    )
    # The batch executor inherits the session's parallel config so fused
    # scans go morsel-parallel exactly when standalone scans would.
    batch_executor.parallel = engine.executor.parallel
    original = engine.executor
    engine.executor = batch_executor
    results: List[AssessResult] = []
    seconds: List[float] = []
    tracer = _active_tracer()
    # Telemetry record hook: with a query log attached, every batch
    # statement writes its own record (batch-tagged, per-statement
    # counter deltas — statements run sequentially, so the delta between
    # consecutive snapshots is attributable).  ``None`` costs one load.
    telemetry = getattr(session, "telemetry", None)
    session_label = getattr(session, "telemetry_label", None)
    batch_id = None
    if telemetry is not None:
        import os as _os

        label = session_label or telemetry.session_id
        batch_id = f"{label}-{_os.urandom(3).hex()}"
    try:
        with tracer.span("batch", statements=len(resolved)):
            for index, (built, statement) in enumerate(zip(plans, resolved)):
                counters_before = (
                    engine.metrics.snapshot()["counters"]
                    if telemetry is not None else None
                )
                with tracer.span("statement", index=index, plan=built.name):
                    start = time.perf_counter()
                    results.append(session._executor.execute(built, statement))
                    seconds.append(time.perf_counter() - start)
                if telemetry is not None:
                    result = results[-1]
                    telemetry.record_statement(
                        statement,
                        plan_name=result.plan_name,
                        status="ok",
                        total_s=seconds[-1],
                        phases=result.timings,
                        rows_out=len(result),
                        cells_out=len(result.cube)
                        * max(len(result.cube.measures), 1),
                        counters_before=counters_before,
                        counters_after=engine.metrics.snapshot()["counters"],
                        batch=batch_id,
                        parallelism=session.parallelism,
                        memory_budget=engine.memory_budget,
                        session_label=session_label,
                    )
    finally:
        engine.executor = original
    after = cache.counters.snapshot()
    report.engine_scans = batch_executor.scan_count
    report.cache_hits = after["hits"] - before["hits"]
    report.cache_derivations = after["derivations"] - before["derivations"]
    return BatchResult(results, seconds, report, plans=plans)


def _pushed_aggregates(plan: Plan, engine):
    """Every aggregate query a plan pushes, composite sides included.

    ``plan.nodes()`` yields the get children of pushed joins/pivots too,
    and the engine builds the same :class:`AggregateQuery` for them at
    execution time, so fingerprinting these covers the whole DAG.
    """
    return [
        engine.build_aggregate_query(node.query)
        for node in plan.nodes()
        if isinstance(node, GetNode)
    ]
