"""The batch engine executor: CSE memo + fused scans over one batch.

During :meth:`AssessSession.execute_many` the engine's executor is
temporarily replaced by a :class:`BatchEngineExecutor`.  It extends the
caching executor with two batch-scoped mechanisms:

* a **memo** keyed by canonical fingerprint, so any pushed query shape
  (aggregate, drill-across, pivot) that several plans share executes
  exactly once and feeds every consuming plan — common-subexpression
  elimination across the merged plan DAG;
* the **fusion groups** planned by :mod:`repro.batch.fuse`: the first
  time any member of a group is requested, the whole group runs through
  :meth:`EngineExecutor.execute_fused` in one shared fact pass, and every
  member's result is memoized (and stored into the result cache, so the
  batch warms the session for later statements).

Both mechanisms serve shallow copies, like the result cache, and both
preserve bit-identity with sequential execution: the memo replays a
deterministic computation, and the fused path re-aggregates only under
the same exactness gates cold execution would satisfy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from typing import Optional

from ..cache.executor import CachingEngineExecutor
from ..cache.fingerprint import CacheableQuery, Fingerprint, fingerprint_query
from ..cache.store import SemanticResultCache
from ..engine.catalog import Catalog
from ..engine.executor import ResultSet
from ..engine.query import AggregateQuery, DrillAcrossQuery, PivotQuery
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import active as _active_tracer
from .fuse import FusionGroup


class SharingReport:
    """What one batch shared, fused, and actually scanned."""

    __slots__ = (
        "statements", "plan_names", "unique_queries", "shared_hits",
        "fused_groups", "fused_derived", "fused_fallbacks", "engine_scans",
        "cache_hits", "cache_derivations",
    )

    def __init__(self, statements: int = 0, unique_queries: int = 0):
        self.statements = statements
        self.plan_names: List[str] = []
        self.unique_queries = unique_queries
        self.shared_hits = 0        # memo serves (CSE across plans)
        self.fused_groups = 0       # shared scans executed
        self.fused_derived = 0      # members answered from a fused pass
        self.fused_fallbacks = 0    # members that needed their own grouping pass
        self.engine_scans = 0       # fact passes actually executed
        self.cache_hits = 0         # result-cache exact hits during the batch
        self.cache_derivations = 0  # result-cache derivations during the batch

    def to_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}

    def render(self) -> str:
        lines = [
            f"statements          {self.statements}",
            f"plans               {', '.join(self.plan_names) or '-'}",
            f"unique queries      {self.unique_queries}",
            f"shared (CSE) hits   {self.shared_hits}",
            f"fused scans         {self.fused_groups} "
            f"({self.fused_derived} derived, {self.fused_fallbacks} fallback)",
            f"engine scans        {self.engine_scans}",
            f"cache hits          {self.cache_hits} "
            f"(+{self.cache_derivations} derivations)",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SharingReport(statements={self.statements}, "
            f"scans={self.engine_scans}, shared={self.shared_hits})"
        )


class BatchEngineExecutor(CachingEngineExecutor):
    """Engine executor scoped to one statement batch."""

    def __init__(
        self,
        catalog: Catalog,
        cache: SemanticResultCache,
        groups: Sequence[FusionGroup],
        report: SharingReport,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(catalog, cache, metrics)
        self.report = report
        self._memo: Dict[Fingerprint, Tuple[CacheableQuery, ResultSet]] = {}
        self._group_of: Dict[Fingerprint, FusionGroup] = {}
        for group in groups:
            for member in group.members:
                self._group_of[member.fingerprint] = group

    # ------------------------------------------------------------------
    def execute_aggregate(self, query: AggregateQuery) -> ResultSet:
        fingerprint = fingerprint_query(query)
        served = self._from_memo(fingerprint, query)
        if served is not None:
            self._count_cse_hit()
            return served
        group = self._group_of.get(fingerprint)
        if group is not None and not group.executed:
            self._run_group(group)
            served = self._from_memo(fingerprint, query)
            if served is not None:
                # First consumption of the fused result.
                tracer = _active_tracer()
                if tracer.enabled:
                    tracer.event("batch.fused-serve", rows_out=len(served))
                return served
        result = super().execute_aggregate(query)
        self._memo[fingerprint] = (query, result)
        return result

    def execute_drill_across(self, query: DrillAcrossQuery) -> ResultSet:
        return self._composite(query, super().execute_drill_across)

    def execute_pivot(self, query: PivotQuery) -> ResultSet:
        return self._composite(query, super().execute_pivot)

    # ------------------------------------------------------------------
    def _count_cse_hit(self) -> None:
        self.report.shared_hits += 1
        self.metrics.inc("batch.cse_hits")
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.event("batch.cse-hit")

    def _composite(self, query: CacheableQuery, execute) -> ResultSet:
        fingerprint = fingerprint_query(query)
        served = self._from_memo(fingerprint, query)
        if served is not None:
            self._count_cse_hit()
            return served
        # A cold composite routes its aggregate sides back through
        # execute_aggregate (method dispatch), so the sides still share.
        result = execute(query)
        self._memo[fingerprint] = (query, result)
        return result

    def _from_memo(self, fingerprint: Fingerprint, query: CacheableQuery):
        entry = self._memo.get(fingerprint)
        if entry is not None and entry[0] == query:
            return ResultSet(dict(entry[1].columns))
        return None

    def _run_group(self, group: FusionGroup) -> None:
        queries = [member.query for member in group.members]
        residuals = [member.residual for member in group.members]
        tracer = _active_tracer()
        with tracer.span("batch.fused-group", members=len(group.members)):
            results, derived = self.execute_fused(
                queries, group.scan_where, residuals
            )
        group.executed = True
        self.report.fused_groups += 1
        self.metrics.inc("batch.fused_groups")
        for member, result, was_derived in zip(group.members, results, derived):
            self._memo[member.fingerprint] = (member.query, result)
            if was_derived:
                self.report.fused_derived += 1
            else:
                self.report.fused_fallbacks += 1
            if self.cache.enabled:
                self.cache.store(member.query, result)
