"""Fusion planning: group compatible pushed gets into shared scans.

Given the distinct :class:`AggregateQuery`s a statement batch pushes, the
planner partitions them by star (fact table + joins) and, within a
partition, assigns each query's predicate set to a *scan key* — the
smallest predicate set present in the partition that it subsumes (is a
superset of).  Queries sharing a scan key form a :class:`FusionGroup`:
the engine answers them all from one pass over the fact rows selected by
the scan key, applying each member's *residual* predicates (its
predicates beyond the scan key) on the finest-group coordinates.

Because a scan key is always some member's own complete predicate set,
the shared scan never reads more rows than that member itself requires —
fusing is never worse than the widest member's standalone execution.
Groups with a single member are discarded: a lone query gains nothing
from the fused path, so it keeps the ordinary execution (and cache)
route.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..cache.fingerprint import Fingerprint, fingerprint_query
from ..cache.fingerprint import _predicate_key as predicate_key
from ..engine.query import AggregateQuery, ColumnPredicate


class FusedMember:
    """One query of a fusion group plus its residual predicates."""

    __slots__ = ("query", "residual", "fingerprint")

    def __init__(
        self, query: AggregateQuery, residual: Sequence[ColumnPredicate]
    ):
        self.query = query
        self.residual: Tuple[ColumnPredicate, ...] = tuple(residual)
        self.fingerprint: Fingerprint = fingerprint_query(query)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FusedMember({self.query!r}, residual={list(self.residual)})"


class FusionGroup:
    """Queries answered together from one shared fact pass."""

    __slots__ = ("scan_where", "members", "executed")

    def __init__(
        self,
        scan_where: Sequence[ColumnPredicate],
        members: Sequence[FusedMember],
    ):
        self.scan_where: Tuple[ColumnPredicate, ...] = tuple(scan_where)
        self.members: List[FusedMember] = list(members)
        self.executed = False

    @property
    def fingerprints(self) -> List[Fingerprint]:
        return [member.fingerprint for member in self.members]

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FusionGroup(members={len(self.members)}, scan={list(self.scan_where)})"


def plan_fusion(queries: Sequence[AggregateQuery]) -> List[FusionGroup]:
    """Partition distinct queries into fusion groups of two or more.

    Queries are deduplicated by fingerprint first (identical gets are the
    CSE memo's job, not fusion's).  Within one star, each distinct
    predicate-key set ``W`` is assigned the smallest predicate-key set
    ``S`` present with ``S ⊆ W`` as its scan key; all queries assigned to
    the same ``S`` fuse, with residual ``W \\ S``.
    """
    unique: Dict[Fingerprint, AggregateQuery] = {}
    for query in queries:
        fingerprint = fingerprint_query(query)
        if fingerprint not in unique:
            unique[fingerprint] = query

    partitions: Dict[Tuple, List[AggregateQuery]] = {}
    for query in unique.values():
        star_key = (
            query.fact,
            tuple(sorted((j.table, j.fact_fk, j.dim_key) for j in query.joins)),
        )
        partitions.setdefault(star_key, []).append(query)

    groups: List[FusionGroup] = []
    for members in partitions.values():
        groups.extend(_fuse_partition(members))
    return groups


def _where_keys(query: AggregateQuery) -> FrozenSet[Tuple]:
    return frozenset(predicate_key(cp) for cp in query.where)


def _fuse_partition(queries: List[AggregateQuery]) -> List[FusionGroup]:
    by_where: Dict[FrozenSet[Tuple], List[AggregateQuery]] = {}
    for query in queries:
        by_where.setdefault(_where_keys(query), []).append(query)

    # Smallest key sets first; ties broken deterministically by repr.
    key_sets = sorted(
        by_where, key=lambda keys: (len(keys), repr(sorted(keys, key=repr)))
    )
    by_scan: Dict[FrozenSet[Tuple], List[AggregateQuery]] = {}
    for where_keys, where_queries in by_where.items():
        scan_keys = next(keys for keys in key_sets if keys <= where_keys)
        by_scan.setdefault(scan_keys, []).extend(where_queries)

    groups: List[FusionGroup] = []
    for scan_keys, scan_queries in by_scan.items():
        if len(scan_queries) < 2:
            continue
        representative = next(
            query for query in scan_queries if _where_keys(query) == scan_keys
        )
        members = [
            FusedMember(
                query,
                tuple(
                    cp for cp in query.where
                    if predicate_key(cp) not in scan_keys
                ),
            )
            for query in scan_queries
        ]
        groups.append(FusionGroup(representative.where, members))
    return groups
