"""Batched multi-query execution (plan-DAG merging + fused shared scans).

See ``docs/performance.md`` ("Batched execution") for the user-facing
story; the entry point is :meth:`repro.api.AssessSession.execute_many`.
"""

from .executor import BatchEngineExecutor, SharingReport
from .fuse import FusedMember, FusionGroup, plan_fusion
from .session import BatchResult, results_identical, run_batch

__all__ = [
    "BatchEngineExecutor",
    "BatchResult",
    "FusedMember",
    "FusionGroup",
    "SharingReport",
    "plan_fusion",
    "results_identical",
    "run_batch",
]
