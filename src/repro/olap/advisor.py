"""Materialized-view advisor: recommend views for a statement workload.

Ties together the cost model and the view subsystem: given the assess
statements a user (or dashboard) runs repeatedly, the advisor derives the
candidate view per distinct *get signature* — the set of levels a get needs
(group-by ∪ predicate levels) — estimates each candidate's benefit with the
:mod:`repro.algebra.cost` statistics (fact rows scanned today vs view rows
scanned after), and returns recommendations ranked by total estimated
saving across the workload.

Typical use::

    recommendations = advise_views(engine, statements)
    for r in recommendations[:2]:
        engine.materialize(r.source, r.levels)
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..algebra.cost import Statistics
from ..algebra.plan import GetNode
from ..algebra.planner import build_plan, feasible_plans
from ..core.statement import AssessStatement
from .engine import MultidimensionalEngine


class ViewRecommendation:
    """One recommended view with its estimated benefit."""

    __slots__ = ("source", "levels", "estimated_rows", "queries_covered",
                 "estimated_saving")

    def __init__(
        self,
        source: str,
        levels: Tuple[str, ...],
        estimated_rows: float,
        queries_covered: int,
        estimated_saving: float,
    ):
        self.source = source
        self.levels = levels
        self.estimated_rows = estimated_rows
        self.queries_covered = queries_covered
        self.estimated_saving = estimated_saving

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ViewRecommendation({self.source} on {list(self.levels)}, "
            f"~{self.estimated_rows:,.0f} rows, covers {self.queries_covered} "
            f"get(s), saving ~{self.estimated_saving:,.0f})"
        )


def workload_gets(
    statements: Sequence[AssessStatement], engine: MultidimensionalEngine
):
    """Every get the workload's best plans would push, across statements."""
    gets = []
    for statement in statements:
        plan_name = feasible_plans(statement)[-1]
        plan = build_plan(statement, engine, plan_name)
        for node in plan.nodes():
            if isinstance(node, GetNode):
                gets.append(node.query)
    return gets


def advise_views(
    engine: MultidimensionalEngine,
    statements: Sequence[AssessStatement],
    min_compression: float = 2.0,
    analysis=None,
) -> List[ViewRecommendation]:
    """Rank candidate views by estimated workload saving.

    A candidate is kept only when it compresses the fact table by at least
    ``min_compression`` (a view nearly as large as the fact costs storage
    without saving scans).  Savings are the summed per-get difference
    between scanning the fact table and scanning the view.

    ``analysis`` optionally carries a
    :class:`repro.analysis.flow.WorkloadReport`: gets the workload
    analyzer proved warm (served from the semantic cache without a fact
    scan) are excluded — a view cannot save a scan that never happens.
    """
    stats = Statistics(engine)
    candidates: Dict[Tuple[str, Tuple[str, ...]], Dict] = {}
    warm_fingerprints = (
        analysis.warm_fingerprints if analysis is not None else frozenset()
    )

    for query in workload_gets(statements, engine):
        if warm_fingerprints:
            from ..cache.fingerprint import fingerprint_query

            aggregate = engine.build_aggregate_query(query)
            if fingerprint_query(aggregate) in warm_fingerprints:
                continue
        source = query.source
        needed = set(query.group_by.levels) | {
            predicate.level for predicate in query.predicates
        }
        # Only levels of the source cube can be materialized for it.
        schema = engine.cube(source).schema
        if not all(schema.has_level(level) for level in needed):
            continue
        levels = tuple(sorted(needed))
        key = (source, levels)
        entry = candidates.setdefault(
            key, {"gets": 0, "scan_saving": 0.0}
        )
        entry["gets"] += 1
        fact_rows = stats.fact_rows(source)
        # view cardinality at these levels ≈ result cells of an
        # unpredicated get at this group-by
        from ..core.groupby import GroupBySet
        from ..core.query import CubeQuery

        view_query = CubeQuery(source, GroupBySet(schema, levels), (), ())
        view_rows = stats.result_cells(view_query)
        entry["view_rows"] = view_rows
        entry["scan_saving"] += max(fact_rows - view_rows, 0.0)

    recommendations = []
    for (source, levels), entry in candidates.items():
        fact_rows = stats.fact_rows(source)
        view_rows = entry["view_rows"]
        if view_rows <= 0 or fact_rows / view_rows < min_compression:
            continue
        recommendations.append(
            ViewRecommendation(
                source=source,
                levels=levels,
                estimated_rows=view_rows,
                queries_covered=entry["gets"],
                estimated_saving=entry["scan_saving"],
            )
        )
    recommendations.sort(key=lambda r: r.estimated_saving, reverse=True)
    return recommendations
