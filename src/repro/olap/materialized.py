"""Materialized aggregate views and query routing.

The paper's experimental setup notes that "materialized views were created
to improve performances" on the Oracle star schema.  This module supplies
the same capability for our engine substrate:

* :meth:`MultidimensionalEngine.materialize` (wired in
  :mod:`repro.olap.engine`) pre-aggregates a cube at a chosen group-by set
  and stores the result as a catalog table;
* query routing rewrites any later *get* whose group-by levels, predicate
  levels, and measures are all answerable from a view onto the smallest
  applicable view instead of the fact table.

Soundness rules:

* a view can answer a query iff every group-by level **and** every
  predicate level of the query is one of the view's levels (re-grouping a
  view by a subset of its columns is exactly an aggregate query over the
  view table, with no hierarchy knowledge needed);
* only distributive measures (sum/min/max/count) are materialized — their
  partial aggregates re-aggregate exactly (count re-aggregates by summing);
  avg measures silently fall back to the fact table.

Because routing happens inside the cube-query-to-SQL rewriting, the pushed
joins of JOP and pivots of POP benefit transparently, and the rendered SQL
truthfully shows the view table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.errors import EngineError
from ..core.query import CubeQuery
from ..core.schema import CubeSchema
from ..engine.executor import ResultSet
from ..engine.query import (
    Aggregate,
    AggregateQuery,
    ColumnPredicate,
    FACT,
    GroupByColumn,
)
from ..engine.table import Table

REAGGREGATION_OPS = {"sum": "sum", "min": "min", "max": "max", "count": "sum"}
"""How each distributive operator re-aggregates over partial aggregates."""


class MaterializedView:
    """A pre-aggregated cube stored as a plain catalog table.

    The table has one column per view level (named after the level) and one
    per materialized measure (named after the measure).
    """

    __slots__ = ("name", "source", "levels", "table_name", "measures", "row_count")

    def __init__(
        self,
        name: str,
        source: str,
        levels: Tuple[str, ...],
        table_name: str,
        measures: Tuple[str, ...],
        row_count: int,
    ):
        self.name = name
        self.source = source
        self.levels = levels
        self.table_name = table_name
        self.measures = measures
        self.row_count = row_count

    def covers(self, query: CubeQuery, schema: CubeSchema) -> bool:
        """Whether this view can answer a cube query exactly."""
        available = set(self.levels)
        for level in query.group_by.levels:
            if level not in available:
                return False
        for predicate in query.predicates:
            if predicate.level not in available:
                return False
        requested = query.measures or schema.measure_names()
        for measure_name in requested:
            if measure_name not in self.measures:
                return False
            if schema.measure(measure_name).op not in REAGGREGATION_OPS:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MaterializedView({self.name!r}, on={list(self.levels)}, "
            f"rows={self.row_count})"
        )


class ViewRegistry:
    """The set of materialized views of one engine, grouped by source cube."""

    def __init__(self):
        self._views: Dict[str, List[MaterializedView]] = {}
        self._by_name: Dict[str, MaterializedView] = {}

    def add(self, view: MaterializedView) -> None:
        if view.name in self._by_name:
            raise EngineError(f"materialized view {view.name!r} already exists")
        self._views.setdefault(view.source, []).append(view)
        self._by_name[view.name] = view

    def remove(self, name: str) -> MaterializedView:
        view = self._by_name.pop(name, None)
        if view is None:
            raise EngineError(f"unknown materialized view {name!r}")
        self._views[view.source].remove(view)
        return view

    def for_source(self, source: str) -> Tuple[MaterializedView, ...]:
        return tuple(self._views.get(source, ()))

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._by_name))

    def best_for(
        self, query: CubeQuery, schema: CubeSchema
    ) -> Optional[MaterializedView]:
        """The smallest view that covers a query, or ``None``."""
        candidates = [
            view
            for view in self.for_source(query.source)
            if view.covers(query, schema)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda view: view.row_count)


def build_view_table(
    name: str, levels: Sequence[str], measures: Sequence[str], result: ResultSet
) -> Table:
    """Assemble the stored table of a view from an aggregate result."""
    columns = {level: result.column(level) for level in levels}
    for measure_name in measures:
        columns[measure_name] = result.column(measure_name)
    return Table(name, columns)


def rewrite_on_view(
    query: CubeQuery, view: MaterializedView, schema: CubeSchema
) -> AggregateQuery:
    """Rewrite a cube query as an aggregate query over a view table.

    All level columns live on the view table itself (no joins); each
    measure re-aggregates with the operator of :data:`REAGGREGATION_OPS`.
    """
    group_by = tuple(
        GroupByColumn(FACT, level, level) for level in query.group_by.levels
    )
    where = tuple(
        ColumnPredicate(FACT, predicate.level, predicate)
        for predicate in query.predicates
    )
    requested = query.measures or schema.measure_names()
    aggregates = tuple(
        Aggregate(
            measure_name,
            REAGGREGATION_OPS[schema.measure(measure_name).op],
            measure_name,
        )
        for measure_name in requested
    )
    return AggregateQuery(
        fact=view.table_name,
        joins=(),
        where=where,
        group_by=group_by,
        aggregates=aggregates,
    )
