"""The multidimensional engine: cube queries → star-schema SQL.

This is our implementation of the component the paper reuses from [6]
("Towards Conversational OLAP"): it owns the multidimensional metadata —
which cube schemas are stored as which star schemas — and rewrites the
logical *get*, *drill-across* and *pivot* operations into engine queries,
wrapping results back into :class:`~repro.core.cube.Cube` objects.

It is the single point through which plans touch the DBMS substrate, so the
executor can attribute time to "get the target cube", "get the benchmark",
"get C+B" exactly as Figure 4 does.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.cube import Cube
from ..core.errors import EngineError, MemberError, SchemaError
from ..core.groupby import GroupBySet
from ..core.query import CubeQuery
from ..core.schema import CubeSchema
from ..engine.catalog import Catalog
from ..engine.executor import EngineExecutor, ResultSet
from ..engine.query import (
    Aggregate,
    AggregateQuery,
    ColumnPredicate,
    DrillAcrossQuery,
    PivotQuery,
)
from ..engine.sqlgen import render_sql
from ..engine.star import StarSchema


class RegisteredCube:
    """A detailed cube known to the engine: logical schema + physical star."""

    __slots__ = ("name", "schema", "star")

    def __init__(self, name: str, schema: CubeSchema, star: StarSchema):
        self.name = name
        self.schema = schema
        self.star = star

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisteredCube({self.name!r})"


class MultidimensionalEngine:
    """Rewrites OLAP-level operations to engine queries and executes them."""

    def __init__(self, catalog: Catalog):
        from ..cache import CachingEngineExecutor, SemanticResultCache
        from ..obs.metrics import METRICS, MetricsRegistry
        from .materialized import ViewRegistry

        self.catalog = catalog
        # Engine-scoped metrics: the cache and executor report into this
        # registry (the cache under the "cache." prefix), and it in turn
        # aggregates into the process-wide repro.obs.METRICS.
        self.metrics = MetricsRegistry(parent=METRICS)
        self.result_cache = SemanticResultCache(
            metrics=MetricsRegistry(parent=self.metrics, prefix="cache")
        )
        self.result_cache.rollup_resolver = self.member_rollup
        self.executor: EngineExecutor = CachingEngineExecutor(
            catalog, self.result_cache, metrics=self.metrics
        )
        self._cubes: Dict[str, RegisteredCube] = {}
        self._views = ViewRegistry()
        self.use_materialized_views = True
        self._rollup_maps: Dict[Tuple[str, str, str], Optional[Dict]] = {}
        catalog.add_listener(self._on_catalog_change)

    def _on_catalog_change(self, event: str, table_name: str) -> None:
        """Invalidate caches when a catalog table changes identity.

        Replacing or dropping a table makes every cached result (and
        member roll-up map) that read from it stale.  Fresh registrations
        cannot be referenced by any cached result, so they only reset the
        roll-up maps (cheap to rebuild) in case a cube binding follows.
        """
        if event in ("replace", "drop"):
            self.result_cache.invalidate_table(table_name)
        self._rollup_maps.clear()

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------
    @property
    def parallel(self):
        """The executor's parallel config (``None`` when serial)."""
        return self.executor.parallel

    def set_parallelism(
        self,
        degree,
        morsel_rows=None,
        backend: str = "thread",
        min_rows=None,
    ) -> None:
        """Enable (or disable) morsel-driven parallel execution.

        ``degree`` ≤ 1 or ``None`` turns parallelism off — the executor
        keeps its serial paths with zero overhead.  Otherwise eligible
        fact passes are split into ``morsel_rows``-row morsels, run on a
        ``backend`` worker pool and merged deterministically; results
        stay bit-identical to serial (docs/performance.md, "Parallel
        execution").  Cached results and fingerprints are unaffected —
        parallelism changes *how* a scan runs, never what it answers.
        """
        from ..parallel.config import ParallelConfig

        previous = self.executor.parallel
        if degree is None or int(degree) <= 1:
            self.executor.parallel = None
        else:
            self.executor.parallel = ParallelConfig(
                degree=int(degree),
                morsel_rows=morsel_rows,
                backend=backend,
                min_rows=min_rows,
            )
        if previous is not None and previous is not self.executor.parallel:
            previous.close()

    # ------------------------------------------------------------------
    # Bounded-memory execution
    # ------------------------------------------------------------------
    @property
    def memory_budget(self):
        """The executor's memory budget in bytes (``None`` = unbounded)."""
        return self.executor.memory_budget

    def set_memory_budget(self, budget_bytes) -> None:
        """Bound the grouping state of fact passes to ``budget_bytes``.

        Passes whose worst-case grouping state exceeds the budget run
        through the spill-to-disk partitioned aggregation tier
        (``engine/spill.py``) — bit-identical to the in-RAM path under
        the float-exactness gate, with buffered partial results spilled
        to temp files once they outgrow the budget.  ``None`` or a
        non-positive value removes the bound (the environment knobs
        ``REPRO_MEMORY_BYTES`` / ``REPRO_SPILL_BYTES`` still apply to
        newly created executors).  Like parallelism, the budget changes
        *how* a scan runs, never what it answers — cached results and
        fingerprints are unaffected.
        """
        if budget_bytes is None or int(budget_bytes) <= 0:
            self.executor.memory_budget = None
        else:
            self.executor.memory_budget = int(budget_bytes)

    # ------------------------------------------------------------------
    # Registration & lookup
    # ------------------------------------------------------------------
    def register_cube(self, name: str, schema: CubeSchema, star: StarSchema) -> RegisteredCube:
        """Register a detailed cube under a name usable in ``with`` clauses."""
        if name in self._cubes:
            raise EngineError(f"cube {name!r} is already registered")
        registered = RegisteredCube(name, schema, star)
        self._cubes[name] = registered
        return registered

    def cube(self, name: str) -> RegisteredCube:
        """Look a registered cube up by name."""
        try:
            return self._cubes[name]
        except KeyError:
            raise EngineError(
                f"unknown cube {name!r} (registered: {', '.join(sorted(self._cubes))})"
            ) from None

    def has_cube(self, name: str) -> bool:
        return name in self._cubes

    def cube_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._cubes))

    # ------------------------------------------------------------------
    # Query rewriting
    # ------------------------------------------------------------------
    def build_aggregate_query(
        self, query: CubeQuery, allow_views: bool = True
    ) -> AggregateQuery:
        """Rewrite a cube query (a logical *get*) into a star SQL query.

        When a materialized view covers the query (same-or-finer levels,
        all predicate levels stored, distributive measures only), the query
        is rewritten onto the view table instead — the routing the paper's
        Oracle setup obtained from its materialized views.
        """
        registered = self.cube(query.source)
        star = registered.star
        schema = registered.schema

        if allow_views and self.use_materialized_views:
            from .materialized import rewrite_on_view

            view = self._views.best_for(query, schema)
            if view is not None:
                return self._annotated(rewrite_on_view(query, view, schema), query)

        group_by = []
        for level_name in query.group_by.levels:
            table, column = star.column_for_level(level_name)
            group_by.append(_group_by_column(table, column, level_name))

        where = []
        for predicate in query.predicates:
            table, column = star.column_for_level(predicate.level)
            where.append(ColumnPredicate(table, column, predicate))

        measures = query.measures or schema.measure_names()
        aggregates = []
        for measure_name in measures:
            measure = schema.measure(measure_name)
            column = star.column_for_measure(measure_name)
            aggregates.append(Aggregate(column, measure.op, measure_name))

        return self._annotated(
            AggregateQuery(
                fact=star.fact_table,
                joins=star.all_joins(),
                where=where,
                group_by=group_by,
                aggregates=aggregates,
            ),
            query,
        )

    def _annotated(
        self, aggregate: AggregateQuery, query: CubeQuery
    ) -> AggregateQuery:
        """Record the cube-level semantics of a pushed query in the cache.

        The physical query carries no hierarchy knowledge; this side
        annotation is what lets the cache later decide whether a cached
        result is finer than (and so can answer) another query, and which
        base tables invalidate it.
        """
        from ..cache import QueryMeta

        star = self.cube(query.source).star
        base_tables = frozenset(
            {star.fact_table} | {binding.table for binding in star.dimensions}
        )
        self.result_cache.annotate(aggregate, QueryMeta(query, base_tables))
        return aggregate

    # ------------------------------------------------------------------
    # Execution entry points (one per pushable logical operator)
    # ------------------------------------------------------------------
    def get(self, query: CubeQuery) -> Cube:
        """Execute a *get*: the derived cube of a cube query."""
        aggregate = self.build_aggregate_query(query)
        result = self.executor.execute_aggregate(aggregate)
        return self._to_cube(result, query)

    def drill_across(
        self,
        left: CubeQuery,
        right: CubeQuery,
        join_levels: Sequence[str],
        alias: str = "benchmark",
        outer: bool = False,
        multi: bool = False,
    ) -> Cube:
        """Execute a pushed drill-across (the JOP join, Listing 4).

        Measures of the right side appear in the result cube qualified with
        ``alias`` (the statement syntax's ``benchmark.`` prefix).  With
        ``multi=True`` a fan-in partial join appends one column per match
        (``benchmark.m_1 …``), as the P2-rewritten past plan needs.
        """
        left_aggregate = self.build_aggregate_query(left)
        right_aggregate = self.build_aggregate_query(right)
        renames = {
            agg.alias: f"{alias}.{agg.alias}" for agg in right_aggregate.aggregates
        }
        query = DrillAcrossQuery(
            left_aggregate, right_aggregate, tuple(join_levels), renames,
            outer=outer, multi=multi,
        )
        result = self.executor.execute_drill_across(query)
        return self._to_cube(result, left, measure_aliases=None)

    def pivot_get(
        self,
        base: CubeQuery,
        pivot_level: str,
        reference,
        member_renames: Mapping[object, Mapping[str, str]],
        require_all: bool = True,
    ) -> Cube:
        """Execute a pushed get+pivot (the POP rewrite, Listing 5).

        ``base`` must select all the needed slices of ``pivot_level`` at
        once (the widened predicate of property P3); ``member_renames`` maps
        each non-reference member to ``{measure: new_column}``.
        """
        aggregate = self.build_aggregate_query(base)
        query = PivotQuery(aggregate, pivot_level, reference, member_renames, require_all)
        result = self.executor.execute_pivot(query)
        return self._to_cube(result, base, measure_aliases=None)

    # ------------------------------------------------------------------
    # Materialized views
    # ------------------------------------------------------------------
    def materialize(
        self,
        source: str,
        levels: Sequence[str],
        name: str = "",
    ):
        """Pre-aggregate a cube at a group-by set and register the view.

        Only distributive measures (sum/min/max/count) are stored; avg
        measures keep hitting the fact table.  Returns the
        :class:`~repro.olap.materialized.MaterializedView`.
        """
        from .materialized import MaterializedView, build_view_table

        registered = self.cube(source)
        schema = registered.schema
        group_by = GroupBySet(schema, levels)
        measures = tuple(
            measure.name
            for measure in schema.measures
            if measure.is_distributive
        )
        if not measures:
            raise EngineError(
                f"cube {source!r} has no distributive measures to materialize"
            )
        query = CubeQuery(source, group_by, (), measures)
        aggregate = self.build_aggregate_query(query, allow_views=False)
        result = self.executor.execute_aggregate(aggregate)

        view_name = name or f"mv_{source.lower()}_{'_'.join(group_by.levels)}"
        table = build_view_table(view_name, group_by.levels, measures, result)
        self.catalog.register(table)
        view = MaterializedView(
            name=view_name,
            source=source,
            levels=tuple(group_by.levels),
            table_name=view_name,
            measures=measures,
            row_count=len(table),
        )
        self._views.add(view)
        return view

    def drop_view(self, name: str) -> None:
        """Unregister a materialized view and drop its table."""
        view = self._views.remove(name)
        self.catalog.drop(view.table_name)

    def view_names(self) -> Tuple[str, ...]:
        """Names of all materialized views."""
        return self._views.names()

    # ------------------------------------------------------------------
    # SQL rendering (for Table 1 and explain())
    # ------------------------------------------------------------------
    def sql_for_get(self, query: CubeQuery) -> str:
        """The SQL text a *get* pushes to the DBMS."""
        return render_sql(self.build_aggregate_query(query))

    def sql_for_drill_across(
        self,
        left: CubeQuery,
        right: CubeQuery,
        join_levels: Sequence[str],
        alias: str = "benchmark",
        outer: bool = False,
    ) -> str:
        """The SQL text of the JOP drill-across."""
        left_aggregate = self.build_aggregate_query(left)
        right_aggregate = self.build_aggregate_query(right)
        renames = {
            agg.alias: f"bc_{agg.alias}" for agg in right_aggregate.aggregates
        }
        return render_sql(
            DrillAcrossQuery(left_aggregate, right_aggregate, tuple(join_levels),
                             renames, outer=outer)
        )

    def sql_for_pivot(
        self,
        base: CubeQuery,
        pivot_level: str,
        reference,
        member_renames: Mapping[object, Mapping[str, str]],
        require_all: bool = True,
    ) -> str:
        """The SQL text of the POP pivot."""
        aggregate = self.build_aggregate_query(base)
        return render_sql(
            PivotQuery(aggregate, pivot_level, reference, member_renames, require_all)
        )

    # ------------------------------------------------------------------
    # Level properties (§8 extension)
    # ------------------------------------------------------------------
    def property_lookup(self, source: str, property_name: str):
        """The ``(level, {member: value})`` mapping of a level property.

        Built from the dimension table holding the property; inconsistent
        values for the same member (a violated functional dependency) raise.
        """
        registered = self.cube(source)
        level, table_name, column = registered.star.property_binding(property_name)
        _, level_column = registered.star.column_for_level(level)
        table = self.catalog.table(table_name)
        members = table.column(level_column)
        values = table.column(column)
        lookup: Dict = {}
        for member, value in zip(members, values):
            known = lookup.get(member)
            if known is None:
                lookup[member] = value
            elif known != value:
                raise EngineError(
                    f"property {property_name!r} is not functionally dependent "
                    f"on level {level!r}: member {member!r} has values "
                    f"{known!r} and {value!r}"
                )
        return level, lookup

    def has_property(self, source: str, property_name: str) -> bool:
        """Whether a cube's star binds a descriptive property."""
        return self.cube(source).star.has_property(property_name)

    # ------------------------------------------------------------------
    # Member roll-up maps (used by cache derivation)
    # ------------------------------------------------------------------
    def member_rollup(self, source: str, fine: str, coarse: str) -> Optional[Dict]:
        """The ``{fine_member: coarse_member}`` map of one hierarchy.

        Built from the dimension table binding both levels (one column
        scan, cached until the catalog changes), falling back to hydrated
        hierarchy part-of maps for degenerate or cross-table levels.
        Returns ``None`` when neither source is available, which makes
        cache derivation bail out — always sound.
        """
        key = (source, fine, coarse)
        if key not in self._rollup_maps:
            self._rollup_maps[key] = self._build_rollup(source, fine, coarse)
        return self._rollup_maps[key]

    def _build_rollup(self, source: str, fine: str, coarse: str) -> Optional[Dict]:
        registered = self.cube(source)
        try:
            hierarchy = registered.schema.hierarchy_of_level(fine)
        except SchemaError:
            return None
        if not hierarchy.has_level(coarse) or not hierarchy.rolls_up_to(fine, coarse):
            return None
        star = registered.star
        fine_table, fine_column = star.column_for_level(fine)
        coarse_table, coarse_column = star.column_for_level(coarse)
        if fine_table == coarse_table and fine_table != "__fact__":
            table = self.catalog.table(fine_table)
            return dict(zip(table.column(fine_column), table.column(coarse_column)))
        members = hierarchy.members_of(fine)
        if not members:
            return None
        try:
            return {
                member: hierarchy.rollup_member(member, fine, coarse)
                for member in members
            }
        except MemberError:
            return None

    # ------------------------------------------------------------------
    # Domain helpers (used by sibling/past planning)
    # ------------------------------------------------------------------
    def ordered_members(self, source: str, level_name: str) -> List:
        """The distinct members of a level, sorted ascending.

        Past benchmarks use this ordering to find the k predecessors of the
        target time slice; member encodings must therefore sort temporally
        (ISO dates and zero-padded month strings do).
        """
        registered = self.cube(source)
        table_token, column = registered.star.column_for_level(level_name)
        if table_token == "__fact__" or table_token == registered.star.fact_table:
            table = self.catalog.table(registered.star.fact_table)
        else:
            table = self.catalog.table(table_token)
        return list(np.unique(table.column(column)))

    def predecessors(self, source: str, level_name: str, member, k: int) -> List:
        """The ``k`` members immediately preceding ``member`` in the level's
        order (fewer if the history is shorter), oldest first."""
        members = self.ordered_members(source, level_name)
        try:
            position = members.index(member)
        except ValueError:
            raise SchemaError(
                f"member {member!r} not found in level {level_name!r}"
            ) from None
        start = max(0, position - k)
        return members[start:position]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _to_cube(
        self,
        result: ResultSet,
        query: CubeQuery,
        measure_aliases: Optional[Sequence[str]] = None,
    ) -> Cube:
        registered = self.cube(query.source)
        levels = set(query.group_by.levels)
        if measure_aliases is None:
            # Every non-coordinate result column is a measure; this covers
            # drill-across renames and pivot-created columns uniformly.
            measure_aliases = [
                name for name in result.column_names if name not in levels
            ]
        coords = {level: result.column(level) for level in query.group_by.levels}
        measures = {alias: result.column(alias) for alias in measure_aliases}
        return Cube(registered.schema, query.group_by, coords, measures)


def _group_by_column(table: str, column: str, alias: str):
    from ..engine.query import GroupByColumn

    return GroupByColumn(table, column, alias)
