"""Hydration of hierarchy part-of orders from dimension tables.

Cube schemas declare the *shape* of hierarchies (levels and roll-up order);
the actual part-of mappings between members live in the dimension tables.
:func:`hydrate_hierarchies` reads them back into the
:class:`~repro.core.hierarchy.Hierarchy` objects so that in-memory roll-ups
(``rup``), ancestor benchmarks, and the brute-force oracle used in tests all
work against the same data the engine queries.
"""

from __future__ import annotations

from typing import Dict

from ..core.errors import SchemaError
from ..core.hierarchy import Hierarchy
from ..core.schema import CubeSchema
from ..engine.catalog import Catalog
from ..engine.star import StarSchema


def hydrate_hierarchies(schema: CubeSchema, star: StarSchema, catalog: Catalog) -> None:
    """Populate every hierarchy's parent maps from the dimension tables.

    For each pair of consecutive levels bound to columns of the same
    dimension table, records ``child_member → parent_member`` for every
    dimension row.  Levels not bound in the star schema (or bound as
    degenerate fact columns, which cannot carry a multi-level hierarchy)
    are skipped.
    """
    for hierarchy in schema.hierarchies:
        _hydrate_one(hierarchy, star, catalog)


def _hydrate_one(hierarchy: Hierarchy, star: StarSchema, catalog: Catalog) -> None:
    levels = hierarchy.levels
    for depth in range(len(levels) - 1):
        child, parent = levels[depth].name, levels[depth + 1].name
        if not (star.has_level(child) and star.has_level(parent)):
            continue
        child_table, child_column = star.column_for_level(child)
        parent_table, parent_column = star.column_for_level(parent)
        if child_table != parent_table or child_table == "__fact__":
            continue
        table = catalog.table(child_table)
        child_values = table.column(child_column)
        parent_values = table.column(parent_column)
        seen: Dict = {}
        for child_member, parent_member in zip(child_values, parent_values):
            known = seen.get(child_member)
            if known is not None:
                if known != parent_member:
                    raise SchemaError(
                        f"dimension {child_table!r} violates the part-of order: "
                        f"member {child_member!r} of level {child!r} has parents "
                        f"{known!r} and {parent_member!r}"
                    )
                continue
            seen[child_member] = parent_member
            hierarchy.set_parent(child, child_member, parent_member)
