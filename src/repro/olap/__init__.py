"""OLAP layer: the multidimensional engine over the relational substrate.

Implements the role the paper's prototype delegates to the engine of [6]:
multidimensional metadata plus the rewriting of logical cube operations into
star-schema SQL.
"""

from .engine import MultidimensionalEngine, RegisteredCube
from .advisor import ViewRecommendation, advise_views
from .materialized import MaterializedView, ViewRegistry
from .metadata import hydrate_hierarchies

__all__ = [
    "MaterializedView",
    "MultidimensionalEngine",
    "RegisteredCube",
    "ViewRecommendation",
    "ViewRegistry",
    "advise_views",
    "hydrate_hierarchies",
]
