"""Hand-written-code generation for the Table 1 formulation-effort metric."""

from .generator import formulation_effort, generate_equivalent_code

__all__ = ["formulation_effort", "generate_equivalent_code"]
