"""Hand-written-code generation for the formulation-effort experiment.

Table 1 of the paper compares the effort (ASCII characters, the metric of
Jain et al. [11]) of writing an assess statement against writing the
equivalent SQL + Python by hand.  This module produces that equivalent
program for any statement: the SQL the naive plan pushes to the DBMS, plus
a self-contained Python script that loads the query results and reproduces
the in-memory pipeline — pivot, prediction, comparison, transformation and
labeling — the way an analyst armed with NumPy would write it.

The generated Python inlines the definitions of every library function the
statement uses (an analyst without the assess operator has to write those
too, which is precisely the effort the experiment quantifies).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..algebra.plan import (
    AddConstantNode,
    GetNode,
    JoinNode,
    LabelNode,
    PivotNode,
    Plan,
    PredictNode,
    ProjectNode,
    RollupJoinNode,
    UsingNode,
)
from ..algebra.planner import build_naive_plan
from ..core.expression import BinaryOp, Expression, FunctionCall, Literal, MeasureRef
from ..core.labels import NamedLabeling, RangeLabeling
from ..core.statement import AssessStatement
from ..olap.engine import MultidimensionalEngine

_FUNCTION_SOURCES: Dict[str, str] = {
    "difference": (
        "def difference(a, b):\n"
        "    return a - b\n"
    ),
    "absolutedifference": (
        "def absolute_difference(a, b):\n"
        "    return np.abs(a - b)\n"
    ),
    "normalizeddifference": (
        "def normalized_difference(a, b):\n"
        "    return (a - b) / b\n"
    ),
    "ratio": (
        "def ratio(a, b):\n"
        "    return a / b\n"
    ),
    "percentage": (
        "def percentage(a, b):\n"
        "    return 100.0 * a / b\n"
    ),
    "minmaxnorm": (
        "def minmaxnorm(a):\n"
        "    minv = a.min()\n"
        "    maxv = a.max()\n"
        "    return (a - minv) / (maxv - minv)\n"
    ),
    "signedminmaxnorm": (
        "def signed_minmaxnorm(a):\n"
        "    return a / np.abs(a).max()\n"
    ),
    "zscore": (
        "def zscore(a):\n"
        "    return (a - a.mean()) / a.std()\n"
    ),
    "percoftotal": (
        "def perc_of_total(a, b):\n"
        "    return a / b.sum()\n"
    ),
    "rank": (
        "def rank(a):\n"
        "    order = np.argsort(-a)\n"
        "    out = np.empty_like(order)\n"
        "    out[order] = np.arange(1, len(a) + 1)\n"
        "    return out\n"
    ),
}

_PREDICTION_SOURCES: Dict[str, str] = {
    "linearregression": (
        "def predict_next(history):\n"
        "    # fit value = a + b*t per row via ordinary least squares and\n"
        "    # extrapolate one step past the observed window\n"
        "    n, k = history.shape\n"
        "    t = np.arange(k, dtype=float)\n"
        "    valid = ~np.isnan(history)\n"
        "    counts = valid.sum(axis=1).astype(float)\n"
        "    safe = np.where(valid, history, 0.0)\n"
        "    sum_y = safe.sum(axis=1)\n"
        "    sum_t = (valid * t).sum(axis=1)\n"
        "    sum_tt = (valid * t * t).sum(axis=1)\n"
        "    sum_ty = (safe * t).sum(axis=1)\n"
        "    denom = counts * sum_tt - sum_t ** 2\n"
        "    slope = (counts * sum_ty - sum_t * sum_y) / denom\n"
        "    intercept = (sum_y - slope * sum_t) / counts\n"
        "    prediction = intercept + slope * k\n"
        "    fallback = sum_y / counts\n"
        "    bad = (counts < 2) | ~np.isfinite(prediction)\n"
        "    return np.where(bad, fallback, prediction)\n"
    ),
    "movingaverage": (
        "def predict_next(history):\n"
        "    return np.nanmean(history, axis=1)\n"
    ),
    "naivelast": (
        "def predict_next(history):\n"
        "    n, k = history.shape\n"
        "    out = np.full(n, np.nan)\n"
        "    for col in range(k):\n"
        "        y = history[:, col]\n"
        "        out[~np.isnan(y)] = y[~np.isnan(y)]\n"
        "    return out\n"
    ),
}

_DISTRIBUTION_LABELERS = (
    "def label_by_quantiles(values, labels):\n"
    "    edges = np.quantile(values, np.linspace(0, 1, len(labels) + 1)[1:-1])\n"
    "    groups = np.searchsorted(edges, values, side='left')\n"
    "    return np.array(labels, dtype=object)[groups]\n"
)


def generate_equivalent_code(
    statement: AssessStatement, engine: MultidimensionalEngine
) -> Tuple[str, str]:
    """Return ``(sql_text, python_text)`` equivalent to a statement.

    The SQL is what the naive plan pushes (one query per get); the Python is
    the complete post-processing script.
    """
    plan = build_naive_plan(statement, engine)
    gets = [node for node in plan.nodes() if isinstance(node, GetNode)]
    sql_parts: List[str] = []
    for index, node in enumerate(gets):
        label = {"target": "target cube", "benchmark": "benchmark cube",
                 "combined": "target + benchmark"}[node.role]
        sql_parts.append(f"-- query {index + 1}: {label}")
        sql_parts.append(engine.sql_for_get(node.query) + ";")
    sql_text = "\n".join(sql_parts) + "\n"
    python_text = _generate_python(statement, plan)
    return sql_text, python_text


def formulation_effort(
    statement: AssessStatement,
    engine: MultidimensionalEngine,
    statement_text: str = "",
) -> Dict[str, int]:
    """Character counts for one statement (one Table 1 column).

    Returns ``{"sql": ..., "python": ..., "total": ..., "assess": ...}``.
    ``statement_text`` defaults to the statement's canonical rendering.
    """
    sql_text, python_text = generate_equivalent_code(statement, engine)
    assess_text = statement_text or statement.render()
    return {
        "sql": len(sql_text),
        "python": len(python_text),
        "total": len(sql_text) + len(python_text),
        "assess": len(" ".join(assess_text.split())),
    }


# ----------------------------------------------------------------------
# Python script generation
# ----------------------------------------------------------------------
def _generate_python(statement: AssessStatement, plan: Plan) -> str:
    parts: List[str] = [
        "# Hand-written equivalent of the assess statement:",
    ]
    for line in statement.render().splitlines():
        parts.append(f"#   {line}")
    parts.append("")
    parts.append("import numpy as np")
    parts.append("")
    parts.append(_DB_BOILERPLATE)
    parts.append("")

    needed = _functions_used(statement.using)
    for name in sorted(needed):
        source = _FUNCTION_SOURCES.get(name)
        if source:
            parts.append(source)

    for node in plan.nodes():
        if isinstance(node, PredictNode):
            source = _PREDICTION_SOURCES.get(
                node.method.lower(), _PREDICTION_SOURCES["linearregression"]
            )
            parts.append(source)
            break

    if isinstance(statement.labels, NamedLabeling):
        parts.append(_DISTRIBUTION_LABELERS)
    else:
        parts.append(_range_labeler_source(statement.labels))

    parts.append(_pipeline_source(statement, plan))
    return "\n".join(parts)


_DB_BOILERPLATE = (
    "def run_query(connection, sql):\n"
    "    \"\"\"Run one SQL query and return its result as named columns.\"\"\"\n"
    "    cursor = connection.cursor()\n"
    "    cursor.execute(sql)\n"
    "    names = [d[0] for d in cursor.description]\n"
    "    rows = cursor.fetchall()\n"
    "    return {name: np.array([r[i] for r in rows])\n"
    "            for i, name in enumerate(names)}\n"
)


def _functions_used(expression: Expression) -> Set[str]:
    names: Set[str] = set()

    def walk(node: Expression) -> None:
        if isinstance(node, FunctionCall):
            names.add(node.name.lower())
            for arg in node.args:
                walk(arg)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)

    walk(expression)
    return names


def _range_labeler_source(labeling: RangeLabeling) -> str:
    lines = [
        "def label_by_ranges(values):",
        "    out = np.full(len(values), None, dtype=object)",
    ]
    for rule in labeling.rules:
        interval = rule.interval
        low_op = ">=" if interval.low_closed else ">"
        high_op = "<=" if interval.high_closed else "<"
        conditions = []
        if interval.low != float("-inf"):
            conditions.append(f"(values {low_op} {interval.low!r})")
        if interval.high != float("inf"):
            conditions.append(f"(values {high_op} {interval.high!r})")
        condition = " & ".join(conditions) if conditions else "np.ones(len(values), bool)"
        lines.append(f"    out[{condition}] = {rule.label!r}")
    lines.append("    return out")
    lines.append("")
    return "\n".join(lines)


def _expression_source(expression: Expression, frame: str) -> str:
    """Render a using expression as NumPy code over a column dict."""
    if isinstance(expression, Literal):
        return expression.render()
    if isinstance(expression, MeasureRef):
        return f"{frame}[{expression.column_name!r}]"
    if isinstance(expression, BinaryOp):
        left = _expression_source(expression.left, frame)
        right = _expression_source(expression.right, frame)
        return f"({left} {expression.op} {right})"
    if isinstance(expression, FunctionCall):
        rendered = ", ".join(_expression_source(a, frame) for a in expression.args)
        name = {
            "absolutedifference": "absolute_difference",
            "normalizeddifference": "normalized_difference",
            "percoftotal": "perc_of_total",
            "minmaxnorm": "minmaxnorm",
            "signedminmaxnorm": "signed_minmaxnorm",
        }.get(expression.name.lower(), expression.name.lower())
        return f"{name}({rendered})"
    raise TypeError(f"cannot render expression {expression!r}")


def _pipeline_source(statement: AssessStatement, plan: Plan) -> str:
    """The main body: fetch, align, compare, label, print."""
    lines: List[str] = ["def main(connection, queries):"]
    gets = [node for node in plan.nodes() if isinstance(node, GetNode)]
    for index, node in enumerate(gets):
        lines.append(f"    frame{index} = run_query(connection, queries[{index}])")
    lines.append("    frame = dict(frame0)")

    has_join = any(
        isinstance(node, (JoinNode, RollupJoinNode)) for node in plan.nodes()
    )
    has_pivot = any(
        isinstance(node, PivotNode) and not node.pushed for node in plan.nodes()
    )
    has_predict = any(isinstance(node, PredictNode) for node in plan.nodes())
    levels = list(statement.group_by.levels)

    if has_pivot:
        lines.extend(
            [
                "    # pivot the benchmark slices into aligned columns",
                f"    slice_level = {_pivot_level(plan)!r}",
                "    rest = [l for l in " + repr(levels) + " if l != slice_level]",
                "    keys1 = list(zip(*(frame1[l] for l in rest)))",
                "    by_slice = {}",
                "    for i, member in enumerate(frame1[slice_level]):",
                "        by_slice.setdefault(member, {})[keys1[i]] = i",
            ]
        )
    if has_join:
        lines.extend(
            [
                "    # align benchmark cells with target cells",
                "    keys0 = list(zip(*(frame0[l] for l in " + repr(levels) + ")))",
            ]
        )
    for node in plan.nodes():
        if isinstance(node, AddConstantNode):
            lines.append(
                f"    frame[{node.column_name!r}] = np.full("
                f"len(frame[{statement.measure!r}]), {node.value!r})"
            )
            break
    if has_join and not has_predict:
        bench = plan.benchmark_column
        lines.extend(
            [
                "    index1 = {}",
                "    join_levels = " + repr(_join_levels(plan, levels)),
                "    keyed1 = list(zip(*(frame1[l] for l in join_levels)))",
                "    for i, key in enumerate(keyed1):",
                "        index1[key] = i",
                "    keyed0 = list(zip(*(frame0[l] for l in join_levels)))",
                "    matches = [index1.get(k, -1) for k in keyed0]",
                "    keep = [i for i, m in enumerate(matches) if m >= 0]",
                "    for column in list(frame):",
                "        frame[column] = frame[column][keep]",
                f"    source = frame1[{_benchmark_source_measure(statement)!r}]",
                f"    frame[{bench!r}] = source[[matches[i] for i in keep]]",
            ]
        )
    if has_predict:
        bench = plan.benchmark_column
        lines.extend(
            [
                "    # build per-cell history matrices and predict the next value",
                "    join_levels = " + repr(_join_levels(plan, levels)),
                "    past = sorted(by_slice)",
                "    keyed0 = list(zip(*(frame0[l] for l in join_levels)))",
                "    history = np.full((len(keyed0), len(past)), np.nan)",
                "    for j, member in enumerate(past):",
                "        rows = by_slice[member]",
                "        for i, key in enumerate(keyed0):",
                "            if key in rows:",
                f"                history[i, j] = frame1[{_benchmark_source_measure(statement)!r}][rows[key]]",
                "    keep = [i for i in range(len(keyed0)) if not np.isnan(history[i]).all()]",
                "    for column in list(frame):",
                "        frame[column] = frame[column][keep]",
                f"    frame[{bench!r}] = predict_next(history[keep])",
            ]
        )

    lines.append("    # comparison and labeling")
    lines.append(
        f"    frame['comparison'] = "
        f"{_expression_source(statement.using, 'frame')}"
    )
    if isinstance(statement.labels, NamedLabeling):
        labels = _named_label_vocabulary(statement.labels.name)
        lines.append(
            f"    frame['label'] = label_by_quantiles(frame['comparison'], {labels!r})"
        )
    else:
        lines.append("    frame['label'] = label_by_ranges(frame['comparison'])")
    lines.extend(
        [
            "    columns = " + repr(levels) + " + ["
            + f"{statement.measure!r}, {plan.benchmark_column!r}, 'comparison', 'label']",
            "    for row in range(len(frame['label'])):",
            "        print({c: frame[c][row] for c in columns if c in frame})",
            "",
        ]
    )
    return "\n".join(lines)


def _pivot_level(plan: Plan) -> str:
    for node in plan.nodes():
        if isinstance(node, PivotNode):
            return node.level
    return ""


def _join_levels(plan: Plan, levels: List[str]) -> List[str]:
    for node in plan.nodes():
        if isinstance(node, JoinNode):
            if node.join_levels is None:
                return levels
            return list(node.join_levels)
    return levels


def _benchmark_source_measure(statement: AssessStatement) -> str:
    return statement.benchmark_measure


def _named_label_vocabulary(name: str) -> List[str]:
    from ..functions.labeling import QUANTILE_SCHEMES

    scheme = QUANTILE_SCHEMES.get(name.lower())
    if scheme:
        return list(scheme[1])
    if name.lower().startswith("top") and name[3:].isdigit():
        k = int(name[3:])
        return [f"top-{i}" for i in range(k, 0, -1)]
    return ["low", "medium", "high"]
