"""Distribution-based labeling functions (Section 3.3.2).

These labelers avoid predefined ranges and "allow labels to adapt to the
distribution of the comparison values".  The paper sketches several schemes,
all implemented here:

* quantile splits (``quartiles``, ``quintiles``, ``deciles``) — equi-depth;
* ``top-k`` ranking splits (``top3`` … ``top10``) labeled ``top-1 … top-k``;
* equi-width histograms (``equiwidth5`` etc.);
* rounding the z-score onto a Likert-like 5-point scale (``zscoreLikert``);
* 1-D k-means clustering where "the system comes up with the optimal number
  of clusters" (``cluster``), with the cluster count chosen by a simple
  elbow criterion.

All labelers map a float column to an object column of labels; NaNs receive
``None`` (the null label of ``assess*``).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .registry import FunctionRegistry


def _empty_labels(n: int) -> np.ndarray:
    return np.full(n, None, dtype=object)


def quantile_labels(values: np.ndarray, k: int, names: Sequence[str]) -> np.ndarray:
    """Split values into ``k`` equal-frequency groups and label each group.

    ``names[0]`` is the group of *smallest* values.  Ties at a boundary go to
    the lower group, mirroring ``pandas.qcut`` semantics loosely.
    """
    values = np.asarray(values, dtype=np.float64)
    out = _empty_labels(len(values))
    valid = ~np.isnan(values)
    data = values[valid]
    if data.size == 0:
        return out
    edges = np.quantile(data, np.linspace(0, 1, k + 1)[1:-1]) if k > 1 else []
    groups = np.searchsorted(edges, data, side="left") if k > 1 else np.zeros(
        data.size, dtype=np.intp
    )
    labels = np.array(list(names), dtype=object)
    out[valid] = labels[groups]
    return out


def equi_width_labels(values: np.ndarray, k: int, names: Sequence[str]) -> np.ndarray:
    """Split the value *range* into ``k`` equal-width bins and label them."""
    values = np.asarray(values, dtype=np.float64)
    out = _empty_labels(len(values))
    valid = ~np.isnan(values)
    data = values[valid]
    if data.size == 0:
        return out
    low, high = float(np.min(data)), float(np.max(data))
    if low == high:
        out[valid] = names[0]
        return out
    edges = np.linspace(low, high, k + 1)[1:-1]
    groups = np.searchsorted(edges, data, side="right")
    labels = np.array(list(names), dtype=object)
    out[valid] = labels[groups]
    return out


def top_k_labels(values: np.ndarray, k: int) -> np.ndarray:
    """Rank values and split the ordered set into ``k`` groups ``top-1 …
    top-k`` — ``top-1`` holds the *largest* values (Section 3.3.2)."""
    names = [f"top-{i + 1}" for i in range(k)][::-1]  # smallest group last name
    return quantile_labels(values, k, names)


def zscore_likert_labels(values: np.ndarray) -> np.ndarray:
    """Round z-scores onto a 5-point Likert-like scale.

    ``much below`` (z ≤ -1.5), ``below`` (-1.5 < z ≤ -0.5), ``average``
    (|z| < 0.5), ``above`` (0.5 ≤ z < 1.5), ``much above`` (z ≥ 1.5).
    """
    values = np.asarray(values, dtype=np.float64)
    out = _empty_labels(len(values))
    valid = ~np.isnan(values)
    data = values[valid]
    if data.size == 0:
        return out
    std = np.std(data)
    z = (data - np.mean(data)) / std if std > 0 else np.zeros_like(data)
    labels = np.full(data.size, "average", dtype=object)
    labels[z <= -0.5] = "below"
    labels[z <= -1.5] = "much below"
    labels[z >= 0.5] = "above"
    labels[z >= 1.5] = "much above"
    out[valid] = labels
    return out


# ----------------------------------------------------------------------
# 1-D k-means clustering labeler
# ----------------------------------------------------------------------
def kmeans_1d(values: np.ndarray, k: int, max_iter: int = 100) -> np.ndarray:
    """Lloyd's algorithm specialised to one dimension.

    Deterministic: centroids start at evenly spaced quantiles.  Returns the
    cluster index of each value, clusters numbered by ascending centroid.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return np.zeros(0, dtype=np.intp)
    k = min(k, len(np.unique(values)))
    centroids = np.quantile(values, np.linspace(0, 1, k * 2 + 1)[1::2])
    centroids = np.unique(centroids)
    k = len(centroids)
    assignment = np.zeros(values.size, dtype=np.intp)
    for _ in range(max_iter):
        distances = np.abs(values[:, None] - centroids[None, :])
        new_assignment = np.argmin(distances, axis=1)
        if np.array_equal(new_assignment, assignment) and _ > 0:
            break
        assignment = new_assignment
        for j in range(k):
            members = values[assignment == j]
            if members.size:
                centroids[j] = members.mean()
    order = np.argsort(centroids)
    remap = np.empty_like(order)
    remap[order] = np.arange(k)
    return remap[assignment]


def _kmeans_inertia(values: np.ndarray, k: int) -> float:
    assignment = kmeans_1d(values, k)
    total = 0.0
    for j in range(assignment.max() + 1 if assignment.size else 0):
        members = values[assignment == j]
        if members.size:
            total += float(np.sum((members - members.mean()) ** 2))
    return total


def optimal_cluster_count(values: np.ndarray, max_k: int = 6) -> int:
    """Pick a cluster count by the largest relative inertia drop (elbow)."""
    values = np.asarray(values, dtype=np.float64)
    distinct = len(np.unique(values))
    if distinct <= 1:
        return 1
    max_k = min(max_k, distinct)
    inertias = [float("inf")] + [_kmeans_inertia(values, k) for k in range(1, max_k + 1)]
    best_k, best_drop = 1, -1.0
    for k in range(2, max_k + 1):
        previous = inertias[k - 1]
        drop = (previous - inertias[k]) / previous if previous > 0 else 0.0
        if drop > best_drop + 1e-12:
            best_k, best_drop = k, drop
    return best_k


def cluster_labels(values: np.ndarray, k: int = 0) -> np.ndarray:
    """Cluster comparison values and label each cluster ``cluster-1 … -k``
    (ascending by centroid).  ``k=0`` lets the system pick ``k``."""
    values = np.asarray(values, dtype=np.float64)
    out = _empty_labels(len(values))
    valid = ~np.isnan(values)
    data = values[valid]
    if data.size == 0:
        return out
    if k <= 0:
        k = optimal_cluster_count(data)
    assignment = kmeans_1d(data, k)
    labels = np.array([f"cluster-{j + 1}" for j in range(int(assignment.max()) + 1)],
                      dtype=object)
    out[valid] = labels[assignment]
    return out


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def _quantile_labeler(k: int, names: Sequence[str]) -> Callable[[np.ndarray], np.ndarray]:
    def labeler(values: np.ndarray) -> np.ndarray:
        return quantile_labels(values, k, names)

    return labeler


def _equiwidth_labeler(k: int) -> Callable[[np.ndarray], np.ndarray]:
    names = [f"bin-{i + 1}" for i in range(k)]

    def labeler(values: np.ndarray) -> np.ndarray:
        return equi_width_labels(values, k, names)

    return labeler


def _topk_labeler(k: int) -> Callable[[np.ndarray], np.ndarray]:
    def labeler(values: np.ndarray) -> np.ndarray:
        return top_k_labels(values, k)

    return labeler


QUANTILE_SCHEMES = {
    "quartiles": (4, ("Q1", "Q2", "Q3", "Q4")),
    "quintiles": (5, ("Q1", "Q2", "Q3", "Q4", "Q5")),
    "terciles": (3, ("low", "medium", "high")),
    "deciles": (10, tuple(f"D{i + 1}" for i in range(10))),
    "median": (2, ("below-median", "above-median")),
}


def register_all(registry: FunctionRegistry) -> None:
    """Register every distribution-based labeler into a registry."""
    for name, (k, names) in QUANTILE_SCHEMES.items():
        registry.register(name, "labeling", _quantile_labeler(k, names), arity=1,
                          doc=f"equi-depth split into {k} groups")
    for k in range(2, 11):
        registry.register(f"top{k}", "labeling", _topk_labeler(k), arity=1,
                          doc=f"ranked split into top-1..top-{k}")
        registry.register(f"equiwidth{k}", "labeling", _equiwidth_labeler(k), arity=1,
                          doc=f"equi-width split into {k} bins")
    registry.register("zscoreLikert", "labeling", zscore_likert_labels, arity=1,
                      doc="5-point Likert scale on rounded z-scores")
    registry.register("cluster", "labeling", cluster_labels, arity=1,
                      doc="1-D k-means with system-chosen k")
