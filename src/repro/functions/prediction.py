"""Time-series predictors for past benchmarks (Sections 3.1 and 4.3).

A past benchmark replaces the actual values of a measure with "those that
can be predicted ... based on a number of past time slices".  The paper's
prototype applies linear regression (via scikit-learn); we implement
ordinary least squares directly on NumPy, plus cheaper alternatives used by
the ablation bench (`benchmarks/bench_ablation_regression.py`).

All predictors share the signature ``f(history) -> predictions`` where
``history`` is an ``(n, k)`` matrix: row ``i`` holds the measure values of
cell ``i`` at the k past time slices, ordered oldest → newest (NaN where a
past slice had no data).  The result is the length-``n`` column of values
predicted for the *next* slice.
"""

from __future__ import annotations

import numpy as np

from .registry import FunctionRegistry


def _as_history(history: np.ndarray) -> np.ndarray:
    history = np.asarray(history, dtype=np.float64)
    if history.ndim == 1:
        history = history[:, None]
    return history


def linear_regression(history: np.ndarray) -> np.ndarray:
    """OLS extrapolation: fit ``value = a + b * t`` per row, predict ``t=k``.

    Time indices are ``0 .. k-1`` for the history and ``k`` for the predicted
    slice.  Rows with fewer than 2 non-NaN points fall back to the mean of
    the available points (a flat line); all-NaN rows predict NaN.

    The closed-form per-row solution is fully vectorised over rows, which is
    what makes the transform step of the Past intention scale linearly.
    """
    history = _as_history(history)
    n, k = history.shape
    t = np.arange(k, dtype=np.float64)
    valid = ~np.isnan(history)
    counts = valid.sum(axis=1).astype(np.float64)

    safe = np.where(valid, history, 0.0)
    sum_y = safe.sum(axis=1)
    sum_t = (valid * t).sum(axis=1)
    sum_tt = (valid * t * t).sum(axis=1)
    sum_ty = (safe * t).sum(axis=1)

    with np.errstate(divide="ignore", invalid="ignore"):
        denom = counts * sum_tt - sum_t * sum_t
        slope = (counts * sum_ty - sum_t * sum_y) / denom
        intercept = (sum_y - slope * sum_t) / counts
        mean = sum_y / counts

    prediction = intercept + slope * k
    degenerate = (counts < 2) | ~np.isfinite(prediction)
    prediction = np.where(degenerate, mean, prediction)
    prediction[counts == 0] = np.nan
    return prediction


def moving_average(history: np.ndarray) -> np.ndarray:
    """Predict the mean of the available past values."""
    history = _as_history(history)
    with np.errstate(invalid="ignore"):
        result = np.nanmean(history, axis=1)
    return result


def exponential_smoothing(history: np.ndarray, alpha: float = 0.5) -> np.ndarray:
    """Simple exponential smoothing with factor ``alpha``.

    ``s_0 = y_0``, ``s_t = alpha * y_t + (1 - alpha) * s_{t-1}``; the
    prediction is the final smoothed value.  NaN gaps keep the previous
    smoothed value.
    """
    history = _as_history(history)
    n, k = history.shape
    state = np.full(n, np.nan)
    for col in range(k):
        y = history[:, col]
        fresh = np.isnan(state) & ~np.isnan(y)
        state[fresh] = y[fresh]
        update = ~np.isnan(state) & ~np.isnan(y) & ~fresh
        state[update] = alpha * y[update] + (1 - alpha) * state[update]
    return state


def seasonal_naive(history: np.ndarray, season: int = 12) -> np.ndarray:
    """Predict the value observed one season ago.

    With a k-slice history and season length ``s``, the prediction for the
    next slice is the value at position ``k - s`` (e.g. the same month last
    year).  Histories shorter than a season, or NaN at the seasonal lag,
    fall back to the most recent value.
    """
    history = _as_history(history)
    n, k = history.shape
    fallback = naive_last(history)
    if k < season:
        return fallback
    seasonal = history[:, k - season]
    return np.where(np.isnan(seasonal), fallback, seasonal)


def holt_linear(history: np.ndarray, alpha: float = 0.5, beta: float = 0.3) -> np.ndarray:
    """Holt's linear trend method (double exponential smoothing).

    Maintains a level and a trend per row; the prediction is
    ``level + trend`` one step ahead.  NaN gaps keep the previous state;
    rows with fewer than two observations fall back to the last value.
    """
    history = _as_history(history)
    n, k = history.shape
    level = np.full(n, np.nan)
    trend = np.zeros(n)
    observed = np.zeros(n, dtype=np.int64)
    for col in range(k):
        y = history[:, col]
        has = ~np.isnan(y)
        first = has & (observed == 0)
        level[first] = y[first]
        second = has & (observed == 1)
        trend[second] = y[second] - level[second]
        level[second] = y[second]
        update = has & (observed >= 2)
        if update.any():
            previous = level[update]
            level[update] = alpha * y[update] + (1 - alpha) * (
                previous + trend[update]
            )
            trend[update] = beta * (level[update] - previous) + (
                1 - beta
            ) * trend[update]
        observed[has] += 1
    prediction = level + trend
    fallback = naive_last(history)
    return np.where(observed >= 2, prediction, fallback)


def naive_last(history: np.ndarray) -> np.ndarray:
    """Predict the most recent non-NaN past value (random-walk forecast)."""
    history = _as_history(history)
    n, k = history.shape
    result = np.full(n, np.nan)
    for col in range(k):
        y = history[:, col]
        has = ~np.isnan(y)
        result[has] = y[has]
    return result


def register_all(registry: FunctionRegistry) -> None:
    """Register every predictor into a registry."""
    registry.register("linearRegression", "prediction", linear_regression, arity=1,
                      doc="per-row OLS extrapolation to the next slice")
    registry.register("movingAverage", "prediction", moving_average, arity=1,
                      doc="mean of the past values")
    registry.register("exponentialSmoothing", "prediction", exponential_smoothing,
                      arity=1, doc="simple exponential smoothing, alpha=0.5")
    registry.register("naiveLast", "prediction", naive_last, arity=1,
                      doc="most recent past value")
    registry.register("seasonalNaive", "prediction", seasonal_naive, arity=1,
                      doc="value one season (12 slices) ago")
    registry.register("holtLinear", "prediction", holt_linear, arity=1,
                      doc="double exponential smoothing with linear trend")
