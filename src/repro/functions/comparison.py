"""Cell-wise comparison functions ``δ : R × R → R`` (Section 3.2).

These implement the "basic way" comparisons the paper lists — algebraic,
absolute and normalized differences, ratios and percentages — all evaluated
independently per cell (logical operator ``⊟``).

Every function takes and returns NumPy float columns; NaNs propagate, which
gives ``assess*`` its null-comparison semantics for unmatched cells.
"""

from __future__ import annotations

import numpy as np

from .registry import FunctionRegistry


def difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Algebraic difference ``a - b`` (Listing 2 of the paper)."""
    return np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)


def absolute_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Absolute difference ``|a - b|``."""
    return np.abs(difference(a, b))


def normalized_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Difference normalised by the benchmark: ``(a - b) / b``.

    A zero benchmark yields ``inf``/``nan`` rather than raising, matching
    floating-point SQL semantics.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        return (a - b) / b


def ratio(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Ratio ``a / b`` (used by Examples 1.1 and 4.1)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        return a / b


def percentage(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Percentage ``100 * a / b``."""
    return 100.0 * ratio(a, b)


def signed_log_ratio(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``log(a / b)`` for positive pairs; symmetric around 0.

    Useful when over- and under-performance should be penalised equally in
    multiplicative terms.  Non-positive inputs yield NaN.
    """
    r = ratio(a, b)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.log(r)
    out[~np.isfinite(r) | (r <= 0)] = np.nan
    return out


def register_all(registry: FunctionRegistry) -> None:
    """Register every comparison function into a registry."""
    registry.register("difference", "cell", difference, arity=2,
                      doc="algebraic difference a - b")
    registry.register("absoluteDifference", "cell", absolute_difference, arity=2,
                      doc="absolute difference |a - b|")
    registry.register("normalizedDifference", "cell", normalized_difference, arity=2,
                      doc="(a - b) / b")
    registry.register("ratio", "cell", ratio, arity=2, doc="a / b")
    registry.register("percentage", "cell", percentage, arity=2, doc="100 * a / b")
    registry.register("signedLogRatio", "cell", signed_log_ratio, arity=2,
                      doc="log(a / b)")
