"""Holistic transformations (Section 3.2, logical operator ``⊡``).

These "require a holistic scan of the entire cube and cannot produce the new
value on a per-cell basis": min-max normalisation, z-scoring, ranking, and
percentage-of-total.  They take one or more columns and return a column
whose every value may depend on all input values.

NaN handling: NaNs (from ``assess*`` outer joins) are ignored when computing
the holistic statistics and propagate to the output.
"""

from __future__ import annotations

import numpy as np

from .registry import FunctionRegistry


def min_max_norm(a: np.ndarray) -> np.ndarray:
    """Min-max normalisation ``(a - min) / (max - min)`` (Listing 2).

    A constant column maps to all zeros (rather than dividing by zero),
    which keeps downstream range labelers well defined.
    """
    a = np.asarray(a, dtype=np.float64)
    low = np.nanmin(a) if a.size else np.nan
    high = np.nanmax(a) if a.size else np.nan
    span = high - low
    if not np.isfinite(span) or span == 0:
        out = np.zeros_like(a)
        out[np.isnan(a)] = np.nan
        return out
    return (a - low) / span


def signed_min_max_norm(a: np.ndarray) -> np.ndarray:
    """Min-max normalisation into ``[-1, 1]`` preserving the sign of 0.

    Example 3.3 labels "the min-max normalized difference" with ranges over
    ``[-1, 1]``; this variant divides by the largest absolute value so that
    a zero difference stays at 0 and the 5-star scale is meaningful.
    """
    a = np.asarray(a, dtype=np.float64)
    scale = np.nanmax(np.abs(a)) if a.size else np.nan
    if not np.isfinite(scale) or scale == 0:
        out = np.zeros_like(a)
        out[np.isnan(a)] = np.nan
        return out
    return a / scale


def min_max_norm_sym(a: np.ndarray) -> np.ndarray:
    """Min-max normalisation onto ``[-1, 1]``: ``2·(a - min)/(max - min) - 1``.

    This is the scaling Example 3.3 applies before the 5-star labeling: the
    smallest difference maps to -1 (one star) and the largest to +1 (five
    stars).
    """
    return 2.0 * min_max_norm(a) - 1.0


def zscore(a: np.ndarray) -> np.ndarray:
    """Standard score ``(a - mean) / std`` (population std).

    A zero standard deviation maps to all zeros.
    """
    a = np.asarray(a, dtype=np.float64)
    mean = np.nanmean(a) if a.size else np.nan
    std = np.nanstd(a) if a.size else np.nan
    if not np.isfinite(std) or std == 0:
        out = np.zeros_like(a)
        out[np.isnan(a)] = np.nan
        return out
    return (a - mean) / std


def perc_of_total(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``percOfTotal`` of Example 4.3: per cell, ``a / sum(b)``.

    "operates on a tuple of two parameters a and b and computes, for each
    cell, the ratio between a and the sum of b over all cells."
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    total = np.nansum(b)
    if total == 0:
        out = np.full_like(a, np.nan)
        return out
    return a / total


def rank(a: np.ndarray) -> np.ndarray:
    """Dense descending rank: the largest value gets rank 1.

    Ties share a rank.  NaNs receive NaN ranks.
    """
    a = np.asarray(a, dtype=np.float64)
    out = np.full(a.shape, np.nan)
    valid = ~np.isnan(a)
    values = a[valid]
    if values.size == 0:
        return out
    distinct = np.unique(values)[::-1]
    positions = {value: i + 1 for i, value in enumerate(distinct)}
    out[valid] = np.fromiter((positions[v] for v in values), dtype=np.float64,
                             count=values.size)
    return out


def percentile_rank(a: np.ndarray) -> np.ndarray:
    """Fraction of non-NaN values ≤ each value, in ``(0, 1]``."""
    a = np.asarray(a, dtype=np.float64)
    out = np.full(a.shape, np.nan)
    valid = ~np.isnan(a)
    values = a[valid]
    if values.size == 0:
        return out
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    counts = np.searchsorted(sorted_values, values, side="right")
    out[valid] = counts / values.size
    return out


def identity(a: np.ndarray) -> np.ndarray:
    """Pass-through (cell-wise): lets a statement label the raw value."""
    return np.asarray(a, dtype=np.float64)


def register_all(registry: FunctionRegistry) -> None:
    """Register every transformation into a registry."""
    registry.register("minMaxNorm", "holistic", min_max_norm, arity=1,
                      doc="(a - min) / (max - min)")
    registry.register("signedMinMaxNorm", "holistic", signed_min_max_norm, arity=1,
                      doc="a / max(|a|), in [-1, 1]")
    registry.register("minMaxNormSym", "holistic", min_max_norm_sym, arity=1,
                      doc="2*(a - min)/(max - min) - 1, in [-1, 1]")
    registry.register("zscore", "holistic", zscore, arity=1,
                      doc="(a - mean) / std")
    registry.register("percOfTotal", "holistic", perc_of_total, arity=2,
                      doc="a / sum(b)")
    registry.register("rank", "holistic", rank, arity=1,
                      doc="dense descending rank, best = 1")
    registry.register("percentileRank", "holistic", percentile_rank, arity=1,
                      doc="fraction of values <= a")
    registry.register("identity", "cell", identity, arity=1, doc="pass-through")
