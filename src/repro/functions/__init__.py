"""Function libraries: comparison, transformation, labeling, prediction.

Implements the libraries Section 3.2/3.3 assumes the system makes available,
plus the expression evaluator that composes them per the Section 4.3
semantics.
"""

from .comparison import (
    absolute_difference,
    difference,
    normalized_difference,
    percentage,
    ratio,
    signed_log_ratio,
)
from .evaluate import apply_using, classify_expression, evaluate
from .labeling import (
    cluster_labels,
    equi_width_labels,
    kmeans_1d,
    optimal_cluster_count,
    quantile_labels,
    top_k_labels,
    zscore_likert_labels,
)
from .prediction import (
    exponential_smoothing,
    holt_linear,
    linear_regression,
    moving_average,
    naive_last,
    seasonal_naive,
)
from .registry import FunctionRegistry, RegisteredFunction, default_registry
from .transform import (
    identity,
    min_max_norm,
    min_max_norm_sym,
    perc_of_total,
    percentile_rank,
    rank,
    signed_min_max_norm,
    zscore,
)

__all__ = [
    "FunctionRegistry",
    "RegisteredFunction",
    "absolute_difference",
    "apply_using",
    "classify_expression",
    "cluster_labels",
    "default_registry",
    "difference",
    "equi_width_labels",
    "evaluate",
    "exponential_smoothing",
    "holt_linear",
    "identity",
    "kmeans_1d",
    "linear_regression",
    "min_max_norm",
    "min_max_norm_sym",
    "moving_average",
    "naive_last",
    "normalized_difference",
    "optimal_cluster_count",
    "perc_of_total",
    "percentage",
    "percentile_rank",
    "quantile_labels",
    "rank",
    "ratio",
    "seasonal_naive",
    "signed_log_ratio",
    "signed_min_max_norm",
    "top_k_labels",
    "zscore",
    "zscore_likert_labels",
]
