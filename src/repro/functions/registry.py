"""The function registry (Section 3.2).

The paper assumes "a library of comparison functions ... is available to the
users" plus transformations that are either *cell-wise* (appliable one cell
at a time, the ``⊟`` operator) or *holistic* (needing a scan of the whole
cube, the ``⊡`` operator).  The registry records every library function with
its kind, so the planner knows which logical operator each ``using``-clause
call maps to, and rule P2 knows which transformations a join can be pushed
through.

Function kinds
--------------

``cell``
    ``f(col1, col2, …) -> col`` evaluated independently per cell.
``holistic``
    ``f(col1, …, cube_columns) -> col`` — the last positional argument is the
    full set of argument columns again, emphasising that the output of a cell
    may depend on every cell (ranking, normalisation, percentages of totals).
    Implementations simply receive the argument columns and return a column;
    what makes them holistic is *declared*, not inferred.
``labeling``
    distribution-based labeling functions ``f(col) -> object col`` used by
    the ``labels`` clause (quartiles, top-k, …).
``prediction``
    time-series predictors used by past benchmarks:
    ``f(history_matrix) -> col`` where ``history_matrix`` is ``(n, k)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from ..core.errors import FunctionError

KINDS = ("cell", "holistic", "labeling", "prediction")


class RegisteredFunction:
    """A registry entry: the callable plus its metadata."""

    __slots__ = ("name", "kind", "func", "arity", "doc")

    def __init__(
        self,
        name: str,
        kind: str,
        func: Callable,
        arity: Optional[int],
        doc: str,
    ):
        if kind not in KINDS:
            raise FunctionError(f"unknown function kind {kind!r} (known: {KINDS})")
        self.name = name
        self.kind = kind
        self.func = func
        self.arity = arity
        self.doc = doc

    @property
    def is_holistic(self) -> bool:
        """Whether the function needs the whole cube (``⊡`` vs ``⊟``)."""
        return self.kind == "holistic"

    def __call__(self, *args, **kwargs):
        return self.func(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisteredFunction({self.name!r}, kind={self.kind!r})"


class FunctionRegistry:
    """A case-insensitive name → function mapping.

    Lookups are case-insensitive because the paper's examples freely mix
    spellings (``minMaxNorm`` vs ``minmaxnorm``).  Users can register their
    own functions; re-registering an existing name raises unless
    ``replace=True``.
    """

    def __init__(self):
        self._functions: Dict[str, RegisteredFunction] = {}

    def register(
        self,
        name: str,
        kind: str,
        func: Callable,
        arity: Optional[int] = None,
        doc: str = "",
        replace: bool = False,
    ) -> RegisteredFunction:
        """Register a function under a name; returns the registry entry."""
        key = name.lower()
        if key in self._functions and not replace:
            raise FunctionError(f"function {name!r} is already registered")
        entry = RegisteredFunction(name, kind, func, arity, doc or (func.__doc__ or ""))
        self._functions[key] = entry
        return entry

    def get(self, name: str) -> RegisteredFunction:
        """Look a function up by (case-insensitive) name."""
        try:
            return self._functions[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._functions))
            raise FunctionError(
                f"unknown function {name!r} (registered: {known})"
            ) from None

    def has(self, name: str) -> bool:
        """Whether a function with that name is registered."""
        return name.lower() in self._functions

    def names(self, kind: Optional[str] = None) -> Tuple[str, ...]:
        """Registered function names, optionally filtered by kind."""
        entries: Iterable[RegisteredFunction] = self._functions.values()
        if kind is not None:
            entries = (entry for entry in entries if entry.kind == kind)
        return tuple(sorted(entry.name for entry in entries))

    def copy(self) -> "FunctionRegistry":
        """A shallow copy; sessions copy the default registry so user
        registrations stay session-local."""
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        return clone


_default_registry: Optional[FunctionRegistry] = None


def default_registry() -> FunctionRegistry:
    """The library registry with all built-in functions pre-registered.

    Built lazily on first use (and then cached) to avoid import cycles
    between the registry and the function modules.
    """
    global _default_registry
    if _default_registry is None:
        registry = FunctionRegistry()
        from . import comparison, labeling, prediction, transform

        comparison.register_all(registry)
        transform.register_all(registry)
        labeling.register_all(registry)
        prediction.register_all(registry)
        _default_registry = registry
    return _default_registry
