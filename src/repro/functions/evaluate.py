"""Evaluation of ``using``-clause expressions over cubes.

The semantics of Section 4.3 composes the comparison/transformation
functions of the ``using`` clause into ``⊡_{Δ,·}(·)``.  This module performs
that composition: it walks the expression AST bottom-up, binds measure
references to cube columns, resolves function names against a registry, and
returns the comparison column ``m_Δ``.

Whether an applied function is a cell-wise ``⊟`` or a holistic ``⊡`` is
metadata on the registry entry; evaluation itself is uniform because both
kinds consume and produce whole columns (the cell-wise ones just happen to
be pointwise).  :func:`classify_expression` exposes the distinction for the
planner and for rule P2 (a join can be pushed through *cell* transforms
only).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.cube import Cube
from ..core.errors import FunctionError
from ..core.expression import BinaryOp, Expression, FunctionCall, Literal, MeasureRef
from .registry import FunctionRegistry, default_registry


def evaluate(
    expression: Expression,
    cube: Cube,
    registry: Optional[FunctionRegistry] = None,
) -> np.ndarray:
    """Evaluate an expression over a cube, returning a float column.

    Measure references resolve against the cube's measure columns (including
    alias-qualified benchmark columns added by joins); literals broadcast to
    the cube's cell count.
    """
    registry = registry or default_registry()
    n = len(cube)

    def walk(node: Expression) -> np.ndarray:
        if isinstance(node, Literal):
            return np.full(n, node.value, dtype=np.float64)
        if isinstance(node, MeasureRef):
            column = cube.measure(node.column_name)
            if column.dtype == object:
                raise FunctionError(
                    f"measure {node.column_name!r} is not numeric and cannot "
                    "be used in a using clause"
                )
            return column.astype(np.float64, copy=False)
        if isinstance(node, BinaryOp):
            left, right = walk(node.left), walk(node.right)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            with np.errstate(divide="ignore", invalid="ignore"):
                return left / right
        if isinstance(node, FunctionCall):
            entry = registry.get(node.name)
            if entry.kind not in ("cell", "holistic"):
                raise FunctionError(
                    f"function {node.name!r} has kind {entry.kind!r} and cannot "
                    "appear in a using clause"
                )
            if entry.arity is not None and entry.arity != len(node.args):
                raise FunctionError(
                    f"function {node.name!r} expects {entry.arity} argument(s), "
                    f"got {len(node.args)}"
                )
            args = [walk(arg) for arg in node.args]
            result = np.asarray(entry(*args), dtype=np.float64)
            if result.shape != (n,):
                raise FunctionError(
                    f"function {node.name!r} returned shape {result.shape}, "
                    f"expected ({n},)"
                )
            return result
        raise FunctionError(f"cannot evaluate expression node {node!r}")

    return walk(expression)


def apply_using(
    cube: Cube,
    expression: Expression,
    out_name: str = "comparison",
    registry: Optional[FunctionRegistry] = None,
) -> Cube:
    """Append the comparison measure ``m_Δ`` computed by an expression."""
    column = evaluate(expression, cube, registry)
    return cube.with_measure(out_name, column)


def classify_expression(
    expression: Expression,
    registry: Optional[FunctionRegistry] = None,
) -> str:
    """Classify a using expression as ``"cell"`` or ``"holistic"``.

    An expression is holistic as soon as any nested call is; pure arithmetic
    and literals are cell-wise.  Rule P2 only pushes a join through
    *cell-wise* transformations, so the planner consults this.
    """
    registry = registry or default_registry()

    def walk(node: Expression) -> bool:
        if isinstance(node, (Literal, MeasureRef)):
            return False
        if isinstance(node, BinaryOp):
            return walk(node.left) or walk(node.right)
        if isinstance(node, FunctionCall):
            entry = registry.get(node.name)
            if entry.is_holistic:
                return True
            return any(walk(arg) for arg in node.args)
        raise FunctionError(f"cannot classify expression node {node!r}")

    return "holistic" if walk(expression) else "cell"
