"""Tokenizer for the assess statement language (Section 4.1 syntax).

Turns statement text into a stream of typed tokens.  Keywords are
recognised case-insensitively at parse time (the tokenizer only emits
IDENT); string literals use single quotes with ``''`` escaping, numbers are
unsigned (sign handling belongs to the grammar, e.g. in label ranges), and
``*`` is a plain punctuation token so that both ``assess*`` and star labels
(``***``) can be assembled by the parser.
"""

from __future__ import annotations

import enum
from typing import List, NamedTuple

from ..core.errors import ParseError

PUNCTUATION = {
    ",": "COMMA",
    "(": "LPAREN",
    ")": "RPAREN",
    "{": "LBRACE",
    "}": "RBRACE",
    "[": "LBRACKET",
    "]": "RBRACKET",
    ":": "COLON",
    ".": "DOT",
    "=": "EQUALS",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "/": "SLASH",
}


class TokenType(enum.Enum):
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    COMMA = "COMMA"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    LBRACE = "LBRACE"
    RBRACE = "RBRACE"
    LBRACKET = "LBRACKET"
    RBRACKET = "RBRACKET"
    COLON = "COLON"
    DOT = "DOT"
    EQUALS = "EQUALS"
    PLUS = "PLUS"
    MINUS = "MINUS"
    STAR = "STAR"
    SLASH = "SLASH"
    END = "END"


class Token(NamedTuple):
    type: TokenType
    value: str
    position: int
    line: int = 1
    column: int = 1
    end: int = -1

    def matches_keyword(self, keyword: str) -> bool:
        """Case-insensitive keyword check (keywords are IDENT tokens)."""
        return self.type is TokenType.IDENT and self.value.lower() == keyword.lower()

    @property
    def span(self):
        """The token's source :class:`~repro.core.diagnostics.Span`."""
        from ..core.diagnostics import Span

        end = self.end if self.end >= 0 else self.position + max(len(self.value), 1)
        return Span(self.position, end, self.line, self.column)


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char in "_#"


def tokenize(text: str) -> List[Token]:
    """Tokenize statement text; raises :class:`ParseError` on bad input.

    Tokens carry their start offset, 1-based line/column, and end offset,
    so parse and analysis diagnostics can point at exact source spans.
    """
    tokens: List[Token] = []
    i, n = 0, len(text)
    line, line_start = 1, 0

    def emit(token_type: TokenType, value: str, start: int, end: int) -> None:
        tokens.append(
            Token(token_type, value, start, line, start - line_start + 1, end)
        )

    while i < n:
        char = text[i]
        if char.isspace():
            if char == "\n":
                line += 1
                line_start = i + 1
            i += 1
            continue
        if char == "'":
            start = i
            value, i = _read_string(text, i)
            emit(TokenType.STRING, value, start, i)
            raw = text[start:i]
            if "\n" in raw:  # keep line tracking right across multi-line literals
                line += raw.count("\n")
                line_start = start + raw.rfind("\n") + 1
            continue
        if char.isdigit():
            start = i
            value, i = _read_number(text, i)
            emit(TokenType.NUMBER, value, start, i)
            continue
        if _is_ident_start(char):
            start = i
            while i < n and _is_ident_char(text[i]):
                i += 1
            emit(TokenType.IDENT, text[start:i], start, i)
            continue
        if char in PUNCTUATION:
            emit(TokenType[PUNCTUATION[char]], char, i, i + 1)
            i += 1
            continue
        raise ParseError(f"unexpected character {char!r}", position=i, text=text)
    tokens.append(Token(TokenType.END, "", n, line, n - line_start + 1, n))
    return tokens


def _read_string(text: str, start: int) -> tuple:
    """Read a single-quoted string literal starting at ``start``."""
    i = start + 1
    n = len(text)
    parts: List[str] = []
    while i < n:
        char = text[i]
        if char == "'":
            if i + 1 < n and text[i + 1] == "'":  # escaped quote
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(char)
        i += 1
    raise ParseError("unterminated string literal", position=start, text=text)


def _read_number(text: str, start: int) -> tuple:
    """Read an unsigned numeric literal (integer or decimal)."""
    i = start
    n = len(text)
    while i < n and text[i].isdigit():
        i += 1
    if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
        i += 1
        while i < n and text[i].isdigit():
            i += 1
    return text[start:i], i
