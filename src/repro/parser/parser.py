"""Recursive-descent parser for assess statements (Section 4.1).

Grammar (keywords case-insensitive)::

    statement   := "with" IDENT [forClause] byClause assessClause
                   [againstClause] [usingClause] labelsClause
    forClause   := "for" predicate ("," predicate)*
    predicate   := level "=" value
                 | level "in" "(" value ("," value)* ")"
                 | level "between" value "and" value
    byClause    := "by" level ("," level)*
    assessClause:= "assess" ["*"] measure
    againstClause := "against" ( NUMBER                       -- constant
                               | "past" NUMBER                -- past
                               | "ancestor" level             -- ancestor (ext.)
                               | cube "." measure             -- external
                               | level "=" value )            -- sibling
    usingClause := "using" expression
    expression  := term (("+"|"-") term)*
    term        := factor (("*"|"/") factor)*
    factor      := NUMBER | ["-"] factor | ref | call | "(" expression ")"
    call        := IDENT "(" [expression ("," expression)*] ")"
    ref         := IDENT ["." IDENT]          -- e.g. benchmark.quantity
    labelsClause:= "labels" (IDENT | rangeSet)
    rangeSet    := "{" range ":" label ("," range ":" label)* "}"
    range       := ("["|"(") bound "," bound ("]"|")")
    bound       := ["-"] (NUMBER | "inf")
    label       := IDENT | STRING | "*"+

The parser resolves the ``with`` cube name against a schema mapping and
returns a fully validated :class:`~repro.core.statement.AssessStatement`.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Union

from ..core.errors import ParseError
from ..core.expression import BinaryOp, Expression, FunctionCall, Literal, MeasureRef
from ..core.groupby import GroupBySet
from ..core.labels import (
    Interval,
    LabelRule,
    LabelingSpec,
    NamedLabeling,
    RangeLabeling,
)
from ..core.query import Predicate
from ..core.schema import CubeSchema
from ..core.statement import (
    AncestorBenchmark,
    AssessStatement,
    BenchmarkSpec,
    ConstantBenchmark,
    ExternalBenchmark,
    PastBenchmark,
    SiblingBenchmark,
)
from .tokenizer import Token, TokenType, tokenize

SchemaResolver = Union[Mapping[str, CubeSchema], Callable[[str], CubeSchema]]


def parse_statement(text: str, schemas: SchemaResolver) -> AssessStatement:
    """Parse statement text into a validated :class:`AssessStatement`.

    ``schemas`` maps cube names to their schemas (a dict, or any callable
    returning a schema for a name — e.g. ``lambda n: engine.cube(n).schema``).
    """
    return _Parser(text, schemas).parse()


class _Parser:
    def __init__(self, text: str, schemas: SchemaResolver):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0
        self._schemas = schemas

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.END:
            self.position += 1
        return token

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {what}, found {token.value!r}",
                position=token.position,
                text=self.text,
            )
        return self._advance()

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.matches_keyword(keyword):
            raise ParseError(
                f"expected keyword {keyword!r}, found {token.value!r}",
                position=token.position,
                text=self.text,
            )
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches_keyword(keyword):
            self._advance()
            return True
        return False

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, position=token.position, text=self.text)

    def _resolve_schema(self, cube_name: str) -> CubeSchema:
        if callable(self._schemas):
            return self._schemas(cube_name)
        try:
            return self._schemas[cube_name]
        except KeyError:
            known = ", ".join(sorted(self._schemas))
            raise self._error(
                f"unknown cube {cube_name!r} (known: {known})"
            ) from None

    # ------------------------------------------------------------------
    # Statement
    # ------------------------------------------------------------------
    def parse(self) -> AssessStatement:
        self._expect_keyword("with")
        source = self._expect(TokenType.IDENT, "a cube name").value
        schema = self._resolve_schema(source)

        predicates: List[Predicate] = []
        if self._accept_keyword("for"):
            predicates.append(self._parse_predicate())
            while self._peek().type is TokenType.COMMA:
                self._advance()
                predicates.append(self._parse_predicate())

        self._expect_keyword("by")
        levels = [self._expect(TokenType.IDENT, "a level name").value]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            levels.append(self._expect(TokenType.IDENT, "a level name").value)
        group_by = GroupBySet(schema, levels)

        self._expect_keyword("assess")
        star = False
        if self._peek().type is TokenType.STAR:
            self._advance()
            star = True
        measure = self._expect(TokenType.IDENT, "a measure name").value

        benchmark: Optional[BenchmarkSpec] = None
        if self._accept_keyword("against"):
            benchmark = self._parse_against()
            if isinstance(benchmark, _DeferredAncestor):
                benchmark = _resolve_deferred_ancestor(schema, group_by, benchmark)

        using: Optional[Expression] = None
        if self._accept_keyword("using"):
            using = self._parse_expression()

        self._expect_keyword("labels")
        labels = self._parse_labels()

        end = self._peek()
        if end.type is not TokenType.END:
            raise self._error(f"unexpected trailing input {end.value!r}")

        return AssessStatement(
            source=source,
            schema=schema,
            group_by=group_by,
            measure=measure,
            predicates=tuple(predicates),
            benchmark=benchmark,
            using=using,
            labels=labels,
            star=star,
        )

    # ------------------------------------------------------------------
    # for clause
    # ------------------------------------------------------------------
    def _parse_predicate(self) -> Predicate:
        level = self._expect(TokenType.IDENT, "a level name").value
        token = self._peek()
        if token.type is TokenType.EQUALS:
            self._advance()
            return Predicate.eq(level, self._parse_value())
        if token.matches_keyword("in"):
            self._advance()
            self._expect(TokenType.LPAREN, "'('")
            members = [self._parse_value()]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                members.append(self._parse_value())
            self._expect(TokenType.RPAREN, "')'")
            return Predicate.isin(level, members)
        if token.matches_keyword("between"):
            self._advance()
            low = self._parse_value()
            self._expect_keyword("and")
            high = self._parse_value()
            return Predicate.between(level, low, high)
        raise self._error(f"expected '=', 'in' or 'between' after level {level!r}")

    def _parse_value(self):
        token = self._peek()
        if token.type is TokenType.STRING:
            return self._advance().value
        if token.type is TokenType.NUMBER:
            return _numeric(self._advance().value)
        if token.type is TokenType.IDENT:
            return self._advance().value
        raise self._error(f"expected a value, found {token.value!r}")

    # ------------------------------------------------------------------
    # against clause
    # ------------------------------------------------------------------
    def _parse_against(self) -> BenchmarkSpec:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            return ConstantBenchmark(_numeric(self._advance().value))
        if token.matches_keyword("past"):
            self._advance()
            count = self._expect(TokenType.NUMBER, "the past window length")
            return PastBenchmark(int(float(count.value)))
        if token.matches_keyword("ancestor"):
            self._advance()
            # The slice level of the ancestor comparison is recovered at
            # validation time from the group-by set; the syntax names only
            # the ancestor level (e.g. "against ancestor type").
            ancestor = self._expect(TokenType.IDENT, "an ancestor level").value
            return _DeferredAncestor(ancestor)
        if token.type is TokenType.IDENT:
            name = self._advance().value
            follow = self._peek()
            if follow.type is TokenType.DOT:
                self._advance()
                measure = self._expect(TokenType.IDENT, "a measure name").value
                return ExternalBenchmark(name, measure)
            if follow.type is TokenType.EQUALS:
                self._advance()
                return SiblingBenchmark(name, self._parse_value())
            raise self._error(
                "expected '.' (external benchmark) or '=' (sibling benchmark)"
            )
        raise self._error(f"cannot parse against clause at {token.value!r}")

    # ------------------------------------------------------------------
    # using clause — expression grammar
    # ------------------------------------------------------------------
    def _parse_expression(self) -> Expression:
        left = self._parse_term()
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            op = self._advance().value
            right = self._parse_term()
            left = BinaryOp(op, left, right)
        return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while self._peek().type in (TokenType.STAR, TokenType.SLASH):
            op = self._advance().value
            right = self._parse_factor()
            left = BinaryOp(op, left, right)
        return left

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.MINUS:
            self._advance()
            inner = self._parse_factor()
            return BinaryOp("-", Literal(0.0), inner)
        if token.type is TokenType.NUMBER:
            return Literal(_numeric(self._advance().value))
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        if token.type is TokenType.IDENT:
            name = self._advance().value
            follow = self._peek()
            if follow.type is TokenType.LPAREN:
                self._advance()
                args: List[Expression] = []
                if self._peek().type is not TokenType.RPAREN:
                    args.append(self._parse_expression())
                    while self._peek().type is TokenType.COMMA:
                        self._advance()
                        args.append(self._parse_expression())
                self._expect(TokenType.RPAREN, "')'")
                return FunctionCall(name, args)
            if follow.type is TokenType.DOT:
                self._advance()
                measure = self._expect(TokenType.IDENT, "a measure name").value
                return MeasureRef(measure, qualifier=name)
            return MeasureRef(name)
        raise self._error(f"cannot parse expression at {token.value!r}")

    # ------------------------------------------------------------------
    # labels clause
    # ------------------------------------------------------------------
    def _parse_labels(self) -> LabelingSpec:
        token = self._peek()
        if token.type is TokenType.LBRACE:
            return self._parse_range_set()
        if token.type is TokenType.IDENT:
            return NamedLabeling(self._advance().value)
        raise self._error(
            "expected a labeling function name or an inline range set"
        )

    def _parse_range_set(self) -> RangeLabeling:
        self._expect(TokenType.LBRACE, "'{'")
        rules = [self._parse_rule()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            # Tolerate a trailing comma before the closing brace (the
            # paper's own examples end the set with one).
            if self._peek().type is TokenType.RBRACE:
                break
            rules.append(self._parse_rule())
        self._expect(TokenType.RBRACE, "'}'")
        return RangeLabeling(rules)

    def _parse_rule(self) -> LabelRule:
        open_token = self._peek()
        if open_token.type is TokenType.LBRACKET:
            low_closed = True
        elif open_token.type is TokenType.LPAREN:
            low_closed = False
        else:
            raise self._error("expected '[' or '(' to open a label range")
        self._advance()
        low = self._parse_bound()
        self._expect(TokenType.COMMA, "','")
        high = self._parse_bound()
        close_token = self._peek()
        if close_token.type is TokenType.RBRACKET:
            high_closed = True
        elif close_token.type is TokenType.RPAREN:
            high_closed = False
        else:
            raise self._error("expected ']' or ')' to close a label range")
        self._advance()
        self._expect(TokenType.COLON, "':'")
        label = self._parse_label()
        return LabelRule(Interval(low, high, low_closed, high_closed), label)

    def _parse_bound(self) -> float:
        sign = 1.0
        if self._peek().type is TokenType.MINUS:
            self._advance()
            sign = -1.0
        token = self._peek()
        if token.matches_keyword("inf"):
            self._advance()
            return sign * float("inf")
        if token.type is TokenType.NUMBER:
            return sign * _numeric(self._advance().value)
        raise self._error(f"expected a numeric bound, found {token.value!r}")

    def _parse_label(self) -> str:
        token = self._peek()
        if token.type is TokenType.STRING:
            return self._advance().value
        if token.type is TokenType.IDENT:
            return self._advance().value
        if token.type is TokenType.STAR:
            stars = 0
            while self._peek().type is TokenType.STAR:
                self._advance()
                stars += 1
            return "*" * stars
        raise self._error(f"expected a label, found {token.value!r}")


class _DeferredAncestor(BenchmarkSpec):
    """Placeholder the parser uses before the slice level is known."""

    kind = "ancestor"

    def __init__(self, ancestor_level: str):
        self.ancestor_level = ancestor_level


def _numeric(text: str) -> float:
    return float(text)


# ----------------------------------------------------------------------
# Post-parse fixups
# ----------------------------------------------------------------------
def _resolve_deferred_ancestor(
    schema: CubeSchema, group_by: GroupBySet, spec: _DeferredAncestor
) -> AncestorBenchmark:
    hierarchy = schema.hierarchy_of_level(spec.ancestor_level)
    for level_name in group_by.levels:
        if hierarchy.has_level(level_name) and level_name != spec.ancestor_level:
            return AncestorBenchmark(level_name, spec.ancestor_level)
    raise ParseError(
        f"ancestor benchmark on {spec.ancestor_level!r} requires a finer "
        f"level of hierarchy {hierarchy.name!r} in the by clause"
    )
