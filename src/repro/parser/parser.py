"""Recursive-descent parser for assess statements (Section 4.1).

Grammar (keywords case-insensitive)::

    statement   := "with" IDENT [forClause] byClause assessClause
                   [againstClause] [usingClause] labelsClause
    forClause   := "for" predicate ("," predicate)*
    predicate   := level "=" value
                 | level "in" "(" value ("," value)* ")"
                 | level "between" value "and" value
    byClause    := "by" level ("," level)*
    assessClause:= "assess" ["*"] measure
    againstClause := "against" ( NUMBER                       -- constant
                               | "past" NUMBER                -- past
                               | "ancestor" level             -- ancestor (ext.)
                               | cube "." measure             -- external
                               | level "=" value )            -- sibling
    usingClause := "using" expression
    expression  := term (("+"|"-") term)*
    term        := factor (("*"|"/") factor)*
    factor      := NUMBER | ["-"] factor | ref | call | "(" expression ")"
    call        := IDENT "(" [expression ("," expression)*] ")"
    ref         := IDENT ["." IDENT]          -- e.g. benchmark.quantity
    labelsClause:= "labels" (IDENT | rangeSet)
    rangeSet    := "{" range ":" label ("," range ":" label)* "}"
    range       := ("["|"(") bound "," bound ("]"|")")
    bound       := ["-"] (NUMBER | "inf")
    label       := IDENT | STRING | "*"+

Parsing runs in two stages (see :mod:`repro.parser.raw`):

* :func:`parse_raw` — purely syntactic; produces a span-carrying
  :class:`~repro.parser.raw.RawStatement` and raises only
  :class:`~repro.core.errors.ParseError`;
* :func:`bind_statement` — resolves the ``with`` cube against a schema
  mapping and builds the fully validated
  :class:`~repro.core.statement.AssessStatement`, raising on the first
  semantic defect with the offending clause's source position attached.

:func:`parse_statement` composes the two (the classic single-error
contract); with ``collect_diagnostics=True`` it instead runs the static
analyzer over the raw form and returns *every* defect at once.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Tuple, Union

from ..core.diagnostics import Span
from ..core.errors import ParseError, ReproError
from ..core.expression import BinaryOp, Expression, FunctionCall, Literal, MeasureRef
from ..core.groupby import GroupBySet
from ..core.labels import (
    Interval,
    LabelRule,
    LabelingSpec,
    NamedLabeling,
    RangeLabeling,
)
from ..core.query import Predicate
from ..core.schema import CubeSchema
from ..core.statement import (
    AncestorBenchmark,
    AssessStatement,
    BenchmarkSpec,
    ConstantBenchmark,
    ExternalBenchmark,
    PastBenchmark,
    SiblingBenchmark,
)
from .raw import RawBenchmark, RawLabelRule, RawLabels, RawPredicate, RawStatement
from .tokenizer import Token, TokenType, tokenize

SchemaResolver = Union[Mapping[str, CubeSchema], Callable[[str], CubeSchema]]


def parse_statement(
    text: str,
    schemas: SchemaResolver,
    collect_diagnostics: bool = False,
):
    """Parse statement text into a validated :class:`AssessStatement`.

    ``schemas`` maps cube names to their schemas (a dict, or any callable
    returning a schema for a name — e.g. ``lambda n: engine.cube(n).schema``).

    With ``collect_diagnostics=True`` the call never raises on statement
    defects: it returns ``(statement_or_None, DiagnosticBag)`` where the bag
    holds *every* finding of the static analyzer (not just the first), and
    the statement is ``None`` whenever an error-severity diagnostic exists.
    """
    if not collect_diagnostics:
        return bind_statement(parse_raw(text), schemas)

    from ..analysis import analyze_raw_statement
    from ..core.diagnostics import Diagnostic, DiagnosticBag, Severity

    try:
        raw = parse_raw(text)
    except ParseError as error:
        span = (
            Span.from_text(text, error.position)
            if error.position >= 0
            else None
        )
        bag = DiagnosticBag(
            [Diagnostic("ASSESS001", Severity.ERROR, error.args[0], span, source="parse")]
        )
        return None, bag

    bag = analyze_raw_statement(raw, schemas)
    if bag.has_errors:
        return None, bag
    try:
        return bind_statement(raw, schemas), bag
    except ReproError as error:
        span = (
            Span.from_text(text, error.position)
            if error.position >= 0
            else None
        )
        bag.report("ASSESS002", Severity.ERROR, error.args[0], span, source="bind")
        return None, bag


def parse_raw(text: str) -> RawStatement:
    """The syntactic stage alone: text → :class:`RawStatement`."""
    return _Parser(text).parse_raw()


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.END:
            self.position += 1
        return token

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParseError(
                f"expected {what}, found {token.value!r}",
                position=token.position,
                text=self.text,
            )
        return self._advance()

    def _expect_keyword(self, keyword: str) -> Token:
        token = self._peek()
        if not token.matches_keyword(keyword):
            raise ParseError(
                f"expected keyword {keyword!r}, found {token.value!r}",
                position=token.position,
                text=self.text,
            )
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._peek().matches_keyword(keyword):
            self._advance()
            return True
        return False

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, position=token.position, text=self.text)

    def _span_from(self, start_token: Token) -> Span:
        """Span from a token's start to the end of the previous token."""
        previous = self.tokens[max(self.position - 1, 0)]
        end = previous.end if previous.end >= 0 else start_token.position
        return Span(
            start_token.position,
            max(end, start_token.position),
            start_token.line,
            start_token.column,
        )

    # ------------------------------------------------------------------
    # Statement (syntactic stage)
    # ------------------------------------------------------------------
    def parse_raw(self) -> RawStatement:
        self._expect_keyword("with")
        source_token = self._expect(TokenType.IDENT, "a cube name")

        predicates: List[RawPredicate] = []
        if self._accept_keyword("for"):
            predicates.append(self._parse_predicate())
            while self._peek().type is TokenType.COMMA:
                self._advance()
                predicates.append(self._parse_predicate())

        self._expect_keyword("by")
        level_token = self._expect(TokenType.IDENT, "a level name")
        levels: List[Tuple[str, Span]] = [(level_token.value, level_token.span)]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            level_token = self._expect(TokenType.IDENT, "a level name")
            levels.append((level_token.value, level_token.span))

        self._expect_keyword("assess")
        star = False
        if self._peek().type is TokenType.STAR:
            self._advance()
            star = True
        measure_token = self._expect(TokenType.IDENT, "a measure name")

        raw = RawStatement(
            text=self.text,
            source=source_token.value,
            source_span=source_token.span,
            levels=levels,
            star=star,
            measure=measure_token.value,
            measure_span=measure_token.span,
            predicates=predicates,
        )

        if self._accept_keyword("against"):
            raw.benchmark = self._parse_against()

        if self._peek().matches_keyword("using"):
            using_start = self._advance()
            raw.using = self._parse_expression(raw)
            raw.using_span = self._span_from(using_start)

        self._expect_keyword("labels")
        raw.labels = self._parse_labels()

        end = self._peek()
        if end.type is not TokenType.END:
            raise self._error(f"unexpected trailing input {end.value!r}")
        return raw

    # ------------------------------------------------------------------
    # for clause
    # ------------------------------------------------------------------
    def _parse_predicate(self) -> RawPredicate:
        level_token = self._expect(TokenType.IDENT, "a level name")
        level = level_token.value
        token = self._peek()
        if token.type is TokenType.EQUALS:
            self._advance()
            values: Tuple = (self._parse_value(),)
            op = "="
        elif token.matches_keyword("in"):
            self._advance()
            self._expect(TokenType.LPAREN, "'('")
            members = [self._parse_value()]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                members.append(self._parse_value())
            self._expect(TokenType.RPAREN, "')'")
            values = tuple(members)
            op = "in"
        elif token.matches_keyword("between"):
            self._advance()
            low = self._parse_value()
            self._expect_keyword("and")
            high = self._parse_value()
            values = (low, high)
            op = "between"
        else:
            raise self._error(f"expected '=', 'in' or 'between' after level {level!r}")
        return RawPredicate(
            level, op, values, self._span_from(level_token), level_token.span
        )

    def _parse_value(self):
        token = self._peek()
        if token.type is TokenType.STRING:
            return self._advance().value
        if token.type is TokenType.NUMBER:
            return _numeric(self._advance().value)
        if token.type is TokenType.IDENT:
            return self._advance().value
        raise self._error(f"expected a value, found {token.value!r}")

    # ------------------------------------------------------------------
    # against clause
    # ------------------------------------------------------------------
    def _parse_against(self) -> RawBenchmark:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return RawBenchmark(
                "constant", token.span, value=_numeric(token.value)
            )
        if token.matches_keyword("past"):
            start = self._advance()
            count = self._expect(TokenType.NUMBER, "the past window length")
            return RawBenchmark(
                "past", self._span_from(start), k=int(float(count.value))
            )
        if token.matches_keyword("ancestor"):
            start = self._advance()
            # The slice level of the ancestor comparison is recovered at
            # binding time from the group-by set; the syntax names only
            # the ancestor level (e.g. "against ancestor type").
            ancestor = self._expect(TokenType.IDENT, "an ancestor level")
            return RawBenchmark(
                "ancestor", self._span_from(start), ancestor_level=ancestor.value
            )
        if token.type is TokenType.IDENT:
            start = self._advance()
            follow = self._peek()
            if follow.type is TokenType.DOT:
                self._advance()
                measure = self._expect(TokenType.IDENT, "a measure name")
                return RawBenchmark(
                    "external",
                    self._span_from(start),
                    cube=start.value,
                    measure=measure.value,
                )
            if follow.type is TokenType.EQUALS:
                self._advance()
                member = self._parse_value()
                return RawBenchmark(
                    "sibling", self._span_from(start), level=start.value, member=member
                )
            raise self._error(
                "expected '.' (external benchmark) or '=' (sibling benchmark)"
            )
        raise self._error(f"cannot parse against clause at {token.value!r}")

    # ------------------------------------------------------------------
    # using clause — expression grammar
    # ------------------------------------------------------------------
    def _parse_expression(self, raw: RawStatement) -> Expression:
        start = self._peek()
        left = self._parse_term(raw)
        while self._peek().type in (TokenType.PLUS, TokenType.MINUS):
            op = self._advance().value
            right = self._parse_term(raw)
            left = BinaryOp(op, left, right)
            raw.expr_spans[id(left)] = self._span_from(start)
        return left

    def _parse_term(self, raw: RawStatement) -> Expression:
        start = self._peek()
        left = self._parse_factor(raw)
        while self._peek().type in (TokenType.STAR, TokenType.SLASH):
            op = self._advance().value
            right = self._parse_factor(raw)
            left = BinaryOp(op, left, right)
            raw.expr_spans[id(left)] = self._span_from(start)
        return left

    def _parse_factor(self, raw: RawStatement) -> Expression:
        token = self._peek()
        if token.type is TokenType.MINUS:
            self._advance()
            inner = self._parse_factor(raw)
            node: Expression = BinaryOp("-", Literal(0.0), inner)
            raw.expr_spans[id(node)] = self._span_from(token)
            return node
        if token.type is TokenType.NUMBER:
            self._advance()
            node = Literal(_numeric(token.value))
            raw.expr_spans[id(node)] = token.span
            return node
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_expression(raw)
            self._expect(TokenType.RPAREN, "')'")
            return inner
        if token.type is TokenType.IDENT:
            self._advance()
            follow = self._peek()
            if follow.type is TokenType.LPAREN:
                self._advance()
                args: List[Expression] = []
                if self._peek().type is not TokenType.RPAREN:
                    args.append(self._parse_expression(raw))
                    while self._peek().type is TokenType.COMMA:
                        self._advance()
                        args.append(self._parse_expression(raw))
                self._expect(TokenType.RPAREN, "')'")
                node = FunctionCall(token.value, args)
                raw.expr_spans[id(node)] = self._span_from(token)
                return node
            if follow.type is TokenType.DOT:
                self._advance()
                measure = self._expect(TokenType.IDENT, "a measure name")
                node = MeasureRef(measure.value, qualifier=token.value)
                raw.expr_spans[id(node)] = token.span.merge(measure.span)
                return node
            node = MeasureRef(token.value)
            raw.expr_spans[id(node)] = token.span
            return node
        raise self._error(f"cannot parse expression at {token.value!r}")

    # ------------------------------------------------------------------
    # labels clause
    # ------------------------------------------------------------------
    def _parse_labels(self) -> RawLabels:
        token = self._peek()
        if token.type is TokenType.LBRACE:
            return self._parse_range_set()
        if token.type is TokenType.IDENT:
            self._advance()
            return RawLabels("named", token.span, name=token.value)
        raise self._error(
            "expected a labeling function name or an inline range set"
        )

    def _parse_range_set(self) -> RawLabels:
        open_token = self._expect(TokenType.LBRACE, "'{'")
        rules = [self._parse_rule()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            # Tolerate a trailing comma before the closing brace (the
            # paper's own examples end the set with one).
            if self._peek().type is TokenType.RBRACE:
                break
            rules.append(self._parse_rule())
        self._expect(TokenType.RBRACE, "'}'")
        return RawLabels("ranges", self._span_from(open_token), rules=rules)

    def _parse_rule(self) -> RawLabelRule:
        open_token = self._peek()
        if open_token.type is TokenType.LBRACKET:
            low_closed = True
        elif open_token.type is TokenType.LPAREN:
            low_closed = False
        else:
            raise self._error("expected '[' or '(' to open a label range")
        self._advance()
        low = self._parse_bound()
        self._expect(TokenType.COMMA, "','")
        high = self._parse_bound()
        close_token = self._peek()
        if close_token.type is TokenType.RBRACKET:
            high_closed = True
        elif close_token.type is TokenType.RPAREN:
            high_closed = False
        else:
            raise self._error("expected ']' or ')' to close a label range")
        self._advance()
        self._expect(TokenType.COLON, "':'")
        label = self._parse_label()
        return RawLabelRule(
            low, high, low_closed, high_closed, label, self._span_from(open_token)
        )

    def _parse_bound(self) -> float:
        sign = 1.0
        if self._peek().type is TokenType.MINUS:
            self._advance()
            sign = -1.0
        token = self._peek()
        if token.matches_keyword("inf"):
            self._advance()
            return sign * float("inf")
        if token.type is TokenType.NUMBER:
            return sign * _numeric(self._advance().value)
        raise self._error(f"expected a numeric bound, found {token.value!r}")

    def _parse_label(self) -> str:
        token = self._peek()
        if token.type is TokenType.STRING:
            return self._advance().value
        if token.type is TokenType.IDENT:
            return self._advance().value
        if token.type is TokenType.STAR:
            stars = 0
            while self._peek().type is TokenType.STAR:
                self._advance()
                stars += 1
            return "*" * stars
        raise self._error(f"expected a label, found {token.value!r}")


def _numeric(text: str) -> float:
    return float(text)


# ----------------------------------------------------------------------
# Binding stage: RawStatement -> validated AssessStatement
# ----------------------------------------------------------------------
def resolve_schema(
    schemas: SchemaResolver, cube_name: str
) -> CubeSchema:
    """Resolve a cube name; raises ``KeyError`` for unknown mapping keys."""
    if callable(schemas):
        return schemas(cube_name)
    return schemas[cube_name]


def bind_statement(raw: RawStatement, schemas: SchemaResolver) -> AssessStatement:
    """Semantic stage: resolve the schema and build the validated statement.

    Raises the first semantic error encountered — as the original one-shot
    parser did — but with the offending clause's source position attached
    (see :meth:`~repro.core.errors.ReproError.at`).
    """
    text = raw.text
    try:
        schema = resolve_schema(schemas, raw.source)
    except KeyError:
        known = ", ".join(sorted(schemas)) if not callable(schemas) else ""
        suffix = f" (known: {known})" if known else ""
        raise ParseError(
            f"unknown cube {raw.source!r}{suffix}",
            position=raw.source_span.start,
            text=text,
        ) from None
    except ReproError as error:
        raise error.at(raw.source_span.start, text)

    predicates = [_bind_predicate(p) for p in raw.predicates]

    try:
        group_by = GroupBySet(schema, raw.level_names())
    except ReproError as error:
        raise error.at(raw.levels[0][1].start, text)

    benchmark: Optional[BenchmarkSpec] = None
    if raw.benchmark is not None:
        try:
            benchmark = _bind_benchmark(raw.benchmark, schema, group_by, text)
        except ReproError as error:
            raise error.at(raw.benchmark.span.start, text)

    try:
        labels = _bind_labels(raw.labels, text)
    except ReproError as error:
        raise error.at(raw.labels.span.start, text)

    anchor = raw.benchmark.span.start if raw.benchmark is not None else raw.measure_span.start
    try:
        return AssessStatement(
            source=raw.source,
            schema=schema,
            group_by=group_by,
            measure=raw.measure,
            predicates=tuple(predicates),
            benchmark=benchmark,
            using=raw.using,
            labels=labels,
            star=raw.star,
        )
    except ReproError as error:
        raise error.at(anchor, text)


def _bind_predicate(raw: RawPredicate) -> Predicate:
    if raw.op == "=":
        return Predicate.eq(raw.level, raw.values[0])
    if raw.op == "in":
        return Predicate.isin(raw.level, raw.values)
    low, high = raw.values
    return Predicate.between(raw.level, low, high)


def _bind_benchmark(
    raw: RawBenchmark, schema: CubeSchema, group_by: GroupBySet, text: str
) -> BenchmarkSpec:
    if raw.kind == "constant":
        return ConstantBenchmark(raw.value)
    if raw.kind == "past":
        return PastBenchmark(raw.k)
    if raw.kind == "external":
        return ExternalBenchmark(raw.cube, raw.measure)
    if raw.kind == "sibling":
        return SiblingBenchmark(raw.level, raw.member)
    if raw.kind == "ancestor":
        return _resolve_ancestor(schema, group_by, raw, text)
    raise ParseError(
        f"unknown benchmark kind {raw.kind!r}", position=raw.span.start, text=text
    )


def _bind_labels(raw: Optional[RawLabels], text: str) -> Optional[LabelingSpec]:
    if raw is None:
        return None
    if raw.kind == "named":
        return NamedLabeling(raw.name)
    rules = []
    for rule in raw.rules:
        try:
            interval = Interval(
                rule.low, rule.high, rule.low_closed, rule.high_closed
            )
        except ReproError as error:
            raise error.at(rule.span.start, text)
        rules.append(LabelRule(interval, rule.label))
    return RangeLabeling(rules)


def _resolve_ancestor(
    schema: CubeSchema, group_by: GroupBySet, raw: RawBenchmark, text: str
) -> AncestorBenchmark:
    """Recover the slice level of an ancestor benchmark from the by clause."""
    hierarchy = schema.hierarchy_of_level(raw.ancestor_level)
    for level_name in group_by.levels:
        if hierarchy.has_level(level_name) and level_name != raw.ancestor_level:
            return AncestorBenchmark(level_name, raw.ancestor_level)
    raise ParseError(
        f"ancestor benchmark on {raw.ancestor_level!r} requires a finer "
        f"level of hierarchy {hierarchy.name!r} in the by clause",
        position=raw.span.start,
        text=text,
    )
