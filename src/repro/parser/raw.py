"""The unvalidated (raw) statement AST produced by the syntactic stage.

Parsing is split into two stages so that the static analyzer
(:mod:`repro.analysis`) can inspect a statement *before* semantic
validation aborts on the first defect:

1. the **syntactic stage** (:class:`repro.parser.parser._Parser`) turns
   text into a :class:`RawStatement` — plain names, numbers and spans, with
   no schema resolution and no constraint checking;
2. the **binding stage** (:func:`repro.parser.parser.bind_statement`)
   resolves the cube schema and constructs the validated
   :class:`~repro.core.statement.AssessStatement`, raising on the first
   semantic error (the classic ``parse_statement`` contract).

Every raw node carries the :class:`~repro.core.diagnostics.Span` of its
source text, so analyzer diagnostics and bound semantic errors can point at
the offending clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.diagnostics import Span
from ..core.expression import Expression


@dataclass
class RawPredicate:
    """One ``for`` clause predicate, uninterpreted."""

    level: str
    op: str  # "=", "in" or "between"
    values: Tuple
    span: Span
    level_span: Span

    def member_set(self) -> Optional[frozenset]:
        """The enumerable member set, mirroring Predicate.member_set()."""
        if self.op in ("=", "in"):
            return frozenset(self.values)
        return None


@dataclass
class RawBenchmark:
    """The ``against`` clause, uninterpreted.

    ``kind`` is one of ``constant``, ``external``, ``sibling``, ``past``,
    ``ancestor``; only the fields of that kind are meaningful.
    """

    kind: str
    span: Span
    value: float = 0.0  # constant
    k: int = 0  # past
    cube: str = ""  # external
    measure: str = ""  # external
    level: str = ""  # sibling slice level
    member: object = None  # sibling member
    ancestor_level: str = ""  # ancestor


@dataclass
class RawLabelRule:
    """One ``range: label`` rule with unchecked bounds."""

    low: float
    high: float
    low_closed: bool
    high_closed: bool
    label: str
    span: Span


@dataclass
class RawLabels:
    """The ``labels`` clause: a function name or an inline range set."""

    kind: str  # "named" or "ranges"
    span: Span
    name: str = ""
    rules: List[RawLabelRule] = field(default_factory=list)


@dataclass
class RawStatement:
    """A syntactically well-formed statement, before semantic binding."""

    text: str
    source: str
    source_span: Span
    levels: List[Tuple[str, Span]]
    star: bool
    measure: str
    measure_span: Span
    predicates: List[RawPredicate] = field(default_factory=list)
    benchmark: Optional[RawBenchmark] = None
    using: Optional[Expression] = None
    using_span: Optional[Span] = None
    labels: Optional[RawLabels] = None
    # id(expression node) -> source span, for pinpointing using-clause
    # diagnostics; nodes are the exact objects in the ``using`` tree.
    expr_spans: Dict[int, Span] = field(default_factory=dict)

    def level_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.levels)

    def span_of_expr(self, node: Expression) -> Optional[Span]:
        return self.expr_spans.get(id(node))

    def predicate_on(self, level: str) -> Optional[RawPredicate]:
        for predicate in self.predicates:
            if predicate.level == level:
                return predicate
        return None
