"""The assess statement language: tokenizer and parser (Section 4.1)."""

from .parser import bind_statement, parse_raw, parse_statement
from .raw import (
    RawBenchmark,
    RawLabelRule,
    RawLabels,
    RawPredicate,
    RawStatement,
)
from .tokenizer import Token, TokenType, tokenize

__all__ = [
    "RawBenchmark",
    "RawLabelRule",
    "RawLabels",
    "RawPredicate",
    "RawStatement",
    "Token",
    "TokenType",
    "bind_statement",
    "parse_raw",
    "parse_statement",
    "tokenize",
]
