"""The assess statement language: tokenizer and parser (Section 4.1)."""

from .parser import parse_statement
from .tokenizer import Token, TokenType, tokenize

__all__ = ["Token", "TokenType", "parse_statement", "tokenize"]
