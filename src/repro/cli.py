"""Command-line interface: run assess statements against a demo cube.

One-shot::

    python -m repro.cli --cube sales "with SALES by month assess storeSales labels quartiles"

Interactive (statements are terminated with a blank line or ';')::

    python -m repro.cli --cube ssb
    assess> with SSB by year, c_region assess revenue labels quartiles
    assess> ;

Useful flags: ``--plan NP|JOP|POP|best`` to pick the execution strategy,
``--explain`` to print the plan tree and the pushed SQL instead of (well,
before) executing, ``--rows N`` to size the demo cube.

Subcommands: ``lint`` (static analysis), ``cache`` (result-cache demo),
``batch`` (multi-statement batches), ``trace`` (EXPLAIN ANALYZE),
``cube`` (save/load compressed column stores), ``storage`` (describe a
saved store), ``history`` (query-log reports), ``serve`` (multi-tenant
HTTP/JSON server — see docs/server.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .api import AssessSession
from .core.errors import ReproError
from .datagen import sales_engine, ssb_engine


def build_session(
    cube: str, rows: Optional[int], parallelism: Optional[int] = None,
    memory_budget: Optional[int] = None,
) -> AssessSession:
    """A session over one of the bundled demo cubes (``sales`` or ``ssb``)."""
    if cube == "sales":
        return AssessSession(
            sales_engine(n_rows=rows or 20_000), parallelism=parallelism,
            memory_budget=memory_budget,
        )
    if cube == "ssb":
        return AssessSession(
            ssb_engine(lineorder_rows=rows or 60_000), parallelism=parallelism,
            memory_budget=memory_budget,
        )
    raise ValueError(f"unknown demo cube {cube!r} (choose 'sales' or 'ssb')")


def add_parallelism_flag(parser: argparse.ArgumentParser) -> None:
    """The shared ``--parallelism`` option (0 = serial / REPRO_PARALLELISM)."""
    parser.add_argument(
        "--parallelism", type=int, default=None, metavar="N",
        help="worker threads for morsel-driven scans (default: the "
        "REPRO_PARALLELISM environment variable, else serial; results "
        "are bit-identical either way)",
    )


def add_memory_flag(parser: argparse.ArgumentParser) -> None:
    """The shared ``--memory-bytes`` option (None = REPRO_MEMORY_BYTES)."""
    parser.add_argument(
        "--memory-bytes", type=int, default=None,
        help="memory budget for aggregation state (bytes); "
        "scans whose grouping state would exceed it run "
        "through the spill-to-disk tier (results are "
        "bit-identical).  Default: the REPRO_MEMORY_BYTES "
        "environment variable, else unbounded",
    )


def run_statement(session: AssessSession, text: str, plan: str,
                  explain: bool, limit: int) -> int:
    try:
        if explain:
            print(session.explain(text, plan=plan))
        result = session.assess(text, plan=plan)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(result.to_table(limit=limit))
    if len(result) > limit:
        print(f"... plus {len(result) - limit} more cells")
    print(
        f"-- {len(result)} cells, plan {result.plan_name}, "
        f"{1000 * result.total_time():.1f} ms, labels: {result.label_counts()}"
    )
    return 0


def repl(session: AssessSession, plan: str, explain: bool, limit: int) -> int:
    print(f"cubes: {', '.join(session.engine.cube_names())}")
    print("end a statement with ';' or a blank line; 'quit' to exit, "
          "'cache' for result-cache statistics")
    buffer = []
    while True:
        try:
            prompt = "assess> " if not buffer else "     -> "
            line = input(prompt)
        except EOFError:
            break
        stripped = line.strip()
        if not buffer and stripped.lower() in ("quit", "exit"):
            break
        if not buffer and stripped.rstrip(";").lower() == "cache":
            print(render_cache_stats(session.cache_stats()))
            continue
        terminated = stripped.endswith(";") or (not stripped and buffer)
        if stripped:
            buffer.append(stripped.rstrip(";"))
        if terminated and buffer:
            run_statement(session, " ".join(buffer), plan, explain, limit)
            buffer = []
    return 0


# Demo workload of the ``cache`` subcommand for the sales cube; the ssb
# cube reuses the four experiment intentions instead.
SALES_CACHE_WORKLOAD = (
    """with SALES by month, product assess quantity against 1000
       using ratio(quantity, 1000)
       labels {[0, 0.9): low, [0.9, 1.1]: expected, (1.1, inf): high}""",
    """with SALES for year = '1997' by month, product assess quantity
       against 1000 using ratio(quantity, 1000)
       labels {[0, 0.9): low, [0.9, 1.1]: expected, (1.1, inf): high}""",
    """with SALES by year, product assess quantity against 5000
       using ratio(quantity, 5000)
       labels {[0, 0.9): low, [0.9, 1.1]: expected, (1.1, inf): high}""",
)


def render_cache_stats(stats) -> str:
    """The ``repro cache`` stats table (also the REPL's ``cache`` command)."""
    lines = ["result cache:"]
    for key in ("hits", "misses", "derivations", "evictions",
                "invalidations", "stores", "entries", "cached_cells",
                "cached_bytes", "cell_budget"):
        lines.append(f"  {key:<15}{stats[key]:>14,}")
    lines.append(f"  {'enabled':<15}{'yes' if stats['enabled'] else 'no':>14}")
    return "\n".join(lines)


def cache_main(argv=None) -> int:
    """The ``cache`` subcommand: run a demo workload twice, show stats.

    The first pass executes cold and populates the cache; later passes
    are served from it.  The printed per-pass times and the hit/derive
    counters make the reuse visible; see ``docs/performance.md``.
    """
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli cache",
        description="Demonstrate the semantic result cache: run a bundled "
        "workload repeatedly and print per-pass times plus cache statistics.",
    )
    parser.add_argument("--cube", choices=("sales", "ssb"), default="ssb",
                        help="demo cube (default: ssb, using the four "
                        "experiment intentions as the workload)")
    parser.add_argument("--rows", type=int, default=None,
                        help="fact rows to generate")
    parser.add_argument("--plan", default="best",
                        choices=("NP", "JOP", "POP", "best", "auto"),
                        help="execution plan (default: best)")
    parser.add_argument("--passes", type=int, default=2,
                        help="workload repetitions (default: 2)")
    add_parallelism_flag(parser)
    args = parser.parse_args(argv)

    if args.cube == "ssb":
        from .experiments.statements import (
            INTENTIONS,
            prepare_engine,
            statement_text,
        )

        engine = prepare_engine(args.rows or 60_000)
        statements = [statement_text(name) for name in INTENTIONS]
    else:
        engine = sales_engine(n_rows=args.rows or 20_000)
        statements = list(SALES_CACHE_WORKLOAD)
    session = AssessSession(engine, parallelism=args.parallelism)

    for number in range(1, max(args.passes, 1) + 1):
        start = time.perf_counter()
        try:
            for text in statements:
                session.assess(text, plan=args.plan)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        elapsed = time.perf_counter() - start
        label = "cold" if number == 1 else "warm"
        print(f"pass {number} ({label}): {len(statements)} statements "
              f"in {1000 * elapsed:.1f} ms")
    print()
    print(render_cache_stats(session.cache_stats()))
    return 0


def batch_main(argv=None) -> int:
    """The ``batch`` subcommand: run a statement-file workload as one batch.

    Statements are extracted from the given files (same format as ``repro
    lint``: ``;``- or ``with``-separated, ``#``/``--`` comments ignored),
    checked with the batch diagnostics (ASSESS3xx), and executed through
    :meth:`AssessSession.execute_many`.  Prints per-statement timings and
    the sharing report; ``--compare`` additionally runs the statements
    one by one on a fresh session and verifies bit-identical results.
    """
    import time

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli batch",
        description="Execute a multi-statement workload as one batch with "
        "plan merging and fused shared scans (see docs/performance.md).",
    )
    parser.add_argument("paths", nargs="*",
                        help="statement files (default: the four bundled "
                        "experiment intentions)")
    parser.add_argument("--cube", choices=("sales", "ssb"), default="ssb",
                        help="demo cube to run against (default: ssb)")
    parser.add_argument("--rows", type=int, default=None,
                        help="fact rows to generate")
    parser.add_argument("--plan", default="best",
                        choices=("NP", "JOP", "POP", "best", "auto"),
                        help="execution plan (default: best; auto uses the "
                        "batch-aware cost model)")
    parser.add_argument("--compare", action="store_true",
                        help="also run sequentially on a fresh session and "
                        "verify bit-identical results")
    add_parallelism_flag(parser)
    args = parser.parse_args(argv)

    from .analysis import batch_diagnostics, extract_statements
    from .batch import results_identical

    if args.paths:
        statements = []
        for path in args.paths:
            try:
                with open(path) as handle:
                    statements.extend(extract_statements(handle.read()))
            except OSError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
    elif args.cube == "ssb":
        from .experiments.statements import INTENTIONS, statement_text

        statements = [statement_text(name) for name in INTENTIONS]
    else:
        statements = list(SALES_CACHE_WORKLOAD)

    for diagnostic in batch_diagnostics(statements).sorted():
        print(diagnostic.render())
    if not statements:
        return 0

    def fresh_session() -> AssessSession:
        if args.cube == "ssb":
            from .experiments.statements import prepare_engine

            return AssessSession(
                prepare_engine(args.rows or 60_000),
                parallelism=args.parallelism,
            )
        return AssessSession(
            sales_engine(n_rows=args.rows or 20_000),
            parallelism=args.parallelism,
        )

    session = fresh_session()
    start = time.perf_counter()
    try:
        batch = session.execute_many(statements, plan=args.plan)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    batch_elapsed = time.perf_counter() - start
    for number, (result, seconds) in enumerate(
        zip(batch.results, batch.seconds), start=1
    ):
        print(f"statement {number:>2}: {len(result):>6} cells, "
              f"plan {result.plan_name:<4} {1000 * seconds:>8.1f} ms")
    print()
    print(batch.report.render())
    print(f"batch wall time     {1000 * batch_elapsed:.1f} ms")

    if args.compare:
        sequential_session = fresh_session()
        start = time.perf_counter()
        try:
            sequential = [
                sequential_session.assess(text, plan=args.plan)
                for text in statements
            ]
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        sequential_elapsed = time.perf_counter() - start
        identical = all(
            results_identical(ours, theirs)
            for ours, theirs in zip(batch.results, sequential)
        )
        print(f"sequential          {1000 * sequential_elapsed:.1f} ms "
              f"({sequential_elapsed / max(batch_elapsed, 1e-9):.2f}x the batch)")
        print(f"bit-identical       {'yes' if identical else 'NO'}")
        if not identical:
            return 1
    return 0


def trace_main(argv=None) -> int:
    """The ``trace`` subcommand: EXPLAIN ANALYZE for statements or batches.

    Executes the statements with the tracer installed and prints the plan
    tree annotated with actual rows, per-operator timings, cost-model
    estimates, and cache/fusion provenance (see ``docs/observability.md``).
    Several statements (from files or the bundled workload) execute as one
    shared batch, so the annotations show CSE and fused-scan reuse.
    ``--json`` writes the full machine-readable trace document (schema
    version 1); ``--format=chrome`` emits Chrome ``trace_event`` JSON for
    ``chrome://tracing`` / Perfetto instead of the tree.
    """
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli trace",
        description="Execute assess statements with tracing enabled and "
        "print the plan annotated with actual rows, timings, and "
        "estimated-vs-actual cost (EXPLAIN ANALYZE).",
    )
    parser.add_argument("statements", nargs="*",
                        help="statement texts or statement files (default: "
                        "the four bundled experiment intentions)")
    parser.add_argument("--cube", choices=("sales", "ssb"), default="ssb",
                        help="demo cube to run against (default: ssb)")
    parser.add_argument("--rows", type=int, default=None,
                        help="fact rows to generate")
    parser.add_argument("--plan", default="best",
                        choices=("NP", "JOP", "POP", "best", "auto"),
                        help="execution plan (default: best)")
    parser.add_argument("--format", choices=("tree", "chrome"),
                        default="tree", dest="format_",
                        help="stdout format: annotated tree (default) or "
                        "Chrome trace_event JSON")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the trace document (schema v1, "
                        "estimates + actuals + span tree) to PATH "
                        "('-' for stdout)")
    add_parallelism_flag(parser)
    args = parser.parse_args(argv)

    import os

    from .analysis import extract_statements
    from .obs.analyze import trace_diagnostics

    statements = []
    for item in args.statements:
        if os.path.exists(item):
            try:
                with open(item) as handle:
                    statements.extend(extract_statements(handle.read()))
            except OSError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        else:
            statements.append(item)
    if not statements:
        if args.cube == "ssb":
            from .experiments.statements import INTENTIONS, statement_text

            statements = [statement_text(name) for name in INTENTIONS]
        else:
            statements = list(SALES_CACHE_WORKLOAD)

    if args.cube == "ssb":
        from .experiments.statements import prepare_engine

        session = AssessSession(
            prepare_engine(args.rows or 60_000), parallelism=args.parallelism
        )
    else:
        session = AssessSession(
            sales_engine(n_rows=args.rows or 20_000),
            parallelism=args.parallelism,
        )

    bag = trace_diagnostics(session, statements)
    for diagnostic in bag.sorted():
        print(diagnostic.render(), file=sys.stderr)
    if bag.has_errors:
        return 1

    try:
        report = session.explain_analyze(statements, plan=args.plan)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.format_ == "chrome":
        print(json.dumps(report.to_chrome(), indent=2))
    else:
        print(report.render())
    if args.json:
        document = json.dumps(report.to_json(), indent=2)
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w") as handle:
                handle.write(document + "\n")
            print(f"-- trace document written to {args.json}", file=sys.stderr)
    return 0


def cube_main(argv=None) -> int:
    """The ``cube`` subcommand: save/load SSB column stores and query them.

    ``--save PATH`` generates the SSB catalog (with the bundled BUDGET
    cube, so the store answers all four experiment intentions), compresses
    it into the v2 column-store format with zone maps, and writes it to
    PATH.  ``--load PATH`` memory-maps a saved store back and runs the
    given statements (default: the four intentions) against it, printing
    the zone-pruning counters afterwards.  See ``docs/performance.md``.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli cube",
        description="Save the SSB demo catalog as a compressed column "
        "store, or load one and run assess statements against it "
        "out-of-core (memory-mapped, with zone-map pruning).",
    )
    parser.add_argument("statements", nargs="*",
                        help="assess statements to run after --save/--load "
                        "(default with --load: the four bundled "
                        "experiment intentions)")
    parser.add_argument("--rows", type=int, default=None,
                        help="fact rows to generate for --save "
                        "(default: 60000)")
    parser.add_argument("--scale", type=float, default=None, metavar="SF",
                        help="SSB scale factor for --save (fact rows = "
                        "SF x 6,000,000; e.g. 1, 10, 100).  Builds the "
                        "store out of core, partition by partition, so "
                        "SF100 never materialises the fact in RAM; "
                        "overrides --rows")
    parser.add_argument("--partition-rows", type=int, default=None,
                        help="fact rows per store partition for --scale "
                        "(default: 8388608; rounded to a multiple of "
                        "--zone-rows)")
    add_memory_flag(parser)
    parser.add_argument("--seed", type=int, default=7,
                        help="generator seed (default: 7)")
    parser.add_argument("--save", metavar="PATH", default=None,
                        help="write the generated catalog to PATH")
    parser.add_argument("--load", metavar="PATH", default=None,
                        help="load a saved catalog from PATH instead of "
                        "generating one")
    parser.add_argument("--format", choices=("auto", "v1", "v2"),
                        default="auto", dest="format_",
                        help="store format for --save (default: auto — "
                        "v2 column store unless PATH ends in .npz)")
    parser.add_argument("--cluster-by", metavar="COLUMN", default=None,
                        help="sort the fact table by this column at save "
                        "time so zone maps turn selective predicates into "
                        "skipped morsels (e.g. lo_datekey)")
    parser.add_argument("--zone-rows", type=int, default=None,
                        help="rows per zone map entry (default: the "
                        "morsel size, 65536)")
    parser.add_argument("--no-mmap", action="store_true",
                        help="materialise arrays in RAM on --load instead "
                        "of memory-mapping them")
    parser.add_argument("--plan", default="best",
                        choices=("NP", "JOP", "POP", "best", "auto"),
                        help="execution plan (default: best)")
    parser.add_argument("--limit", type=int, default=5,
                        help="max result rows to print per statement "
                        "(default: 5)")
    add_parallelism_flag(parser)
    args = parser.parse_args(argv)

    if not args.save and not args.load:
        parser.error("one of --save PATH or --load PATH is required")
    if args.save and args.load:
        parser.error("--save and --load are mutually exclusive")

    from .datagen.ssb import ssb_engine_from_catalog
    from .engine.columns import DEFAULT_ZONE_ROWS
    from .engine.persist import load_catalog, save_catalog

    if args.save and args.scale is not None:
        import time

        from .datagen.ssb import build_ssb_store

        rows = int(round(args.scale * 6_000_000))
        start = time.perf_counter()
        try:
            build_ssb_store(
                args.save, rows, seed=args.seed,
                zone_rows=args.zone_rows or DEFAULT_ZONE_ROWS,
                partition_rows=args.partition_rows,
                progress=lambda message: print(f"  {message}",
                                               file=sys.stderr),
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        built = time.perf_counter() - start
        print(f"built SF{args.scale:g} store ({rows:,} fact rows, "
              f"clustered by lo_datekey) at {args.save} in {built:.1f}s")
        if not args.statements:
            return 0
        # Query the store we just wrote, out of core — not the generator's
        # in-RAM tables (they never existed as a whole).
        catalog = load_catalog(args.save)
        engine = ssb_engine_from_catalog(catalog)
        session = AssessSession(
            engine, parallelism=args.parallelism,
            memory_budget=args.memory_bytes,
        )
    elif args.save:
        import time

        from .experiments.statements import prepare_engine

        rows = args.rows or 60_000
        start = time.perf_counter()
        engine = prepare_engine(rows, seed=args.seed)
        generated = time.perf_counter() - start
        cluster = None
        if args.cluster_by:
            fact = engine.cube("SSB").star.fact_table
            cluster = {fact: args.cluster_by}
        start = time.perf_counter()
        try:
            save_catalog(
                engine.catalog, args.save, format=args.format_,
                zone_rows=args.zone_rows or DEFAULT_ZONE_ROWS,
                cluster=cluster,
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        saved = time.perf_counter() - start
        print(f"generated {rows:,} fact rows in {generated:.2f}s, "
              f"saved to {args.save} in {saved:.2f}s"
              + (f" (clustered by {args.cluster_by})" if args.cluster_by
                 else ""))
        if not args.statements:
            return 0
        session = AssessSession(
            engine, parallelism=args.parallelism,
            memory_budget=args.memory_bytes,
        )
    else:
        try:
            catalog = load_catalog(args.load, mmap=not args.no_mmap)
            engine = ssb_engine_from_catalog(catalog)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        mode = "materialised" if args.no_mmap else "memory-mapped"
        print(f"loaded {args.load} ({mode}); "
              f"cubes: {', '.join(engine.cube_names())}")
        session = AssessSession(
            engine, parallelism=args.parallelism,
            memory_budget=args.memory_bytes,
        )

    statements = list(args.statements)
    if not statements:
        from .experiments.statements import INTENTIONS, statement_text

        statements = [statement_text(name) for name in INTENTIONS]
    status = 0
    for text in statements:
        status = max(
            status,
            run_statement(session, text, args.plan, False, args.limit),
        )
    counters = engine.metrics.snapshot()["counters"]
    prunes = {key: value for key, value in sorted(counters.items())
              if key.startswith("engine.storage.")}
    if prunes:
        print("-- zone pruning: " + ", ".join(
            f"{key.split('.')[-1]}={value:,}" for key, value in prunes.items()
        ))
    spills = {key: value for key, value in sorted(counters.items())
              if key.startswith("engine.spill.")}
    if spills:
        print("-- spill tier: " + ", ".join(
            f"{key.split('.')[-1]}={value:,}" for key, value in spills.items()
        ))
    return status


def storage_main(argv=None) -> int:
    """The ``storage`` subcommand: describe a saved v2 column store.

    Reads only the manifest (no data file is opened) and prints, per
    column: the chosen encoding, logical dtype, plain vs stored bytes,
    the compression ratio, and the number of zone-map entries.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli storage",
        description="Report per-column encodings, compression ratios, and "
        "zone-map coverage of a saved catalog column store.",
    )
    parser.add_argument("path", help="a catalog directory written by "
                        "'repro cube --save' or save_catalog()")
    args = parser.parse_args(argv)

    from .engine.persist import storage_report

    try:
        report = storage_report(args.path)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    print(f"column store {report['path']} "
          f"(format v{report['version']}, zone_rows {report['zone_rows']:,})")
    grand_plain = grand_stored = 0
    for table in report["tables"]:
        clustered = table["clustered_by"]
        print(f"\ntable {table['table']} ({table['rows']:,} rows"
              + (f", clustered by {clustered}" if clustered else "") + ")")
        print(f"  {'column':<18}{'encoding':<10}{'dtype':<10}"
              f"{'plain':>12}{'stored':>12}{'ratio':>7}{'zones':>7}")
        for column in table["columns"]:
            plain, stored = column["plain_bytes"], column["stored_bytes"]
            grand_plain += plain
            grand_stored += stored
            ratio = plain / stored if stored else float("inf")
            print(f"  {column['column']:<18}{column['encoding']:<10}"
                  f"{column['dtype']:<10}{plain:>12,}{stored:>12,}"
                  f"{ratio:>6.1f}x{column['zones']:>7}")
    overall = grand_plain / grand_stored if grand_stored else float("inf")
    print(f"\ntotal: {grand_plain:,} plain bytes -> {grand_stored:,} stored "
          f"({overall:.1f}x compression)")
    return 0


def history_main(argv=None) -> int:
    """The ``history`` subcommand: aggregate the query log, run the watchdog.

    Reads every record of a telemetry directory (written by sessions
    with ``telemetry=`` / ``REPRO_TELEMETRY_DIR``), folds them into
    per-fingerprint statistics with exact p50/p95/p99 latency, compares
    against the stored baseline, and prints the ASSESS41x advisories —
    slow-query regression, cache-miss storm, spill pressure,
    parallel-fallback storm.  ``--write-baseline`` records the current
    aggregates as the new reference; ``--prometheus`` re-exports the
    logged history in Prometheus text format; ``--bench`` appends the
    BENCH_*.json trajectory.  Exit status is 0 unless ``--strict`` is
    given and advisories fired (CI-friendly either way).
    """
    import json
    import os

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli history",
        description="Aggregate the persistent query log per statement "
        "fingerprint, compare against the stored baseline, and emit "
        "ASSESS41x regression advisories (see docs/observability.md).",
    )
    parser.add_argument("directory", nargs="?", default=None,
                        help="telemetry directory (default: the "
                        "REPRO_TELEMETRY_DIR environment variable)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file (default: "
                        "<directory>/baseline.json)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="store the current aggregates as the new "
                        "baseline instead of comparing")
    parser.add_argument("--slow-factor", type=float, default=None,
                        help="p95 regression threshold vs baseline "
                        "(default: 3.0)")
    parser.add_argument("--min-runs", type=int, default=None,
                        help="minimum runs before a rule may fire "
                        "(default: 2)")
    parser.add_argument("--json", action="store_true",
                        help="emit the aggregates and advisories as JSON")
    parser.add_argument("--prometheus", action="store_true",
                        help="emit the logged history in Prometheus text "
                        "exposition format instead of the table")
    parser.add_argument("--bench", metavar="DIR", nargs="?", const=".",
                        default=None,
                        help="also summarize the BENCH_*.json trajectory "
                        "found in DIR (default: the current directory)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any advisory fires")
    args = parser.parse_args(argv)

    from .obs.qlog import QueryLogError, iter_records
    from .obs.watchdog import (
        BASELINE_FILENAME,
        DEFAULT_MIN_RUNS,
        DEFAULT_SLOW_FACTOR,
        aggregate_history,
        bench_trajectory,
        load_baseline,
        watch,
        write_baseline,
    )

    directory = args.directory or os.environ.get("REPRO_TELEMETRY_DIR", "")
    if not directory:
        print("error: no telemetry directory (pass one or set "
              "REPRO_TELEMETRY_DIR)", file=sys.stderr)
        return 2
    try:
        records = list(iter_records(directory))
    except QueryLogError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    history = aggregate_history(records)
    baseline_path = args.baseline or os.path.join(directory, BASELINE_FILENAME)

    if args.write_baseline:
        document = write_baseline(history, baseline_path)
        print(f"baseline written to {baseline_path} "
              f"({len(document['fingerprints'])} fingerprints, "
              f"{len(records)} records)")
        return 0

    if args.prometheus:
        from .obs.export import to_prometheus
        from .obs.metrics import MetricsRegistry
        from .obs.timeseries import TelemetryHub

        registry = MetricsRegistry()
        hub = TelemetryHub()
        for record in records:
            counters = record.get("counters")
            if isinstance(counters, dict):
                for name, value in counters.items():
                    if isinstance(value, int) and value > 0:
                        registry.inc(name, value)
            if record.get("status") != "ok":
                continue
            ts = float(record.get("ts", 0.0))
            hub.observe_latency(
                "query.seconds", float(record.get("total_s", 0.0)), ts=ts
            )
            phases = record.get("phases")
            if isinstance(phases, dict):
                for step, seconds in phases.items():
                    hub.observe_latency(
                        f"phase.{step}.seconds", float(seconds), ts=ts
                    )
        sys.stdout.write(to_prometheus(registry, hub))
        return 0

    baseline = load_baseline(baseline_path)
    advisories = watch(
        history,
        baseline,
        slow_factor=args.slow_factor or DEFAULT_SLOW_FACTOR,
        min_runs=args.min_runs or DEFAULT_MIN_RUNS,
    )

    if args.json:
        payload = {
            "directory": str(directory),
            "records": len(records),
            "baseline": baseline_path if baseline is not None else None,
            "fingerprints": {
                fingerprint: stats.to_json()
                for fingerprint, stats in sorted(history.items())
            },
            "advisories": [
                {"code": advisory.code,
                 "fingerprint": advisory.fingerprint,
                 "message": advisory.message}
                for advisory in advisories
            ],
        }
        if args.bench is not None:
            payload["bench_trajectory"] = bench_trajectory(args.bench)
        print(json.dumps(payload, indent=2))
    else:
        print(render_history(history, records, baseline is not None))
        for advisory in advisories:
            print(advisory.render())
        if not advisories:
            print("watchdog: no advisories"
                  + ("" if baseline is not None
                     else " (no baseline yet — run --write-baseline)"))
        if args.bench is not None:
            print()
            print(render_bench_trajectory(bench_trajectory(args.bench)))
    return 1 if (args.strict and advisories) else 0


def render_history(history, records, has_baseline: bool) -> str:
    """The per-fingerprint history table ``repro history`` prints."""
    lines = [
        f"query history: {len(records)} records, "
        f"{len(history)} fingerprints"
        + (", baseline loaded" if has_baseline else ""),
        f"{'fingerprint':<18}{'statement':<34}{'runs':>5}{'err':>4}"
        f"{'p50 ms':>9}{'p95 ms':>9}{'p99 ms':>9}{'cache%':>7}"
        f"{'spill':>6}{'fb':>4}",
    ]
    for fingerprint in sorted(
        history, key=lambda fp: -history[fp].p95
    ):
        stats = history[fingerprint]
        label = f"{stats.cube}.{stats.measure} by " + ",".join(
            stats.group_by
        )
        if len(label) > 33:
            label = label[:30] + "..."
        lines.append(
            f"{fingerprint:<18}{label:<34}{stats.runs:>5}{stats.errors:>4}"
            f"{1000 * stats.p50:>9.1f}{1000 * stats.p95:>9.1f}"
            f"{1000 * stats.p99:>9.1f}"
            f"{100 * stats.cache_hit_rate:>6.0f}%"
            f"{stats.spill_runs:>6}{stats.fallback_runs:>4}"
        )
    return "\n".join(lines)


def render_bench_trajectory(rows) -> str:
    """The BENCH_*.json summary table of ``repro history --bench``."""
    lines = ["benchmark trajectory (BENCH_*.json):"]
    if not rows:
        return lines[0] + " none found"
    for row in rows:
        lines.append(f"  {row['file']}  {row['benchmark']}")
        for name, value in list(row["metrics"].items())[:6]:
            lines.append(f"    {name:<58}{value:>12.4f}")
        remaining = len(row["metrics"]) - 6
        if remaining > 0:
            lines.append(f"    ... plus {remaining} more metrics")
    return "\n".join(lines)


def lint_main(argv=None) -> int:
    """The ``lint`` subcommand: statically analyze statement files.

    Exits 1 when any error-severity diagnostic is found; warnings alone
    exit 0.  All diagnostics of every statement are printed in one run.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli lint",
        description="Statically analyze assess statements in files "
        "(.assess/.txt statement files, .py sources) or the bundled "
        "experiment workload.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: the "
                        "bundled experiment statements)")
    parser.add_argument("--cube", choices=("sales", "ssb", "all", "none"),
                        default="all",
                        help="demo cubes to resolve statements against "
                        "(default: all; 'none' skips schema checks, for "
                        "sources that register their own cubes)")
    parser.add_argument("--rows", type=int, default=2000,
                        help="fact rows for the demo cubes (default: 2000)")
    parser.add_argument("--permissive", action="store_true",
                        help="report unknown cubes as notes, not errors "
                        "(for sources that register their own cubes)")
    parser.add_argument("--bundled", action="store_true",
                        help="also lint the bundled experiment statements")
    parser.add_argument("--verbose", action="store_true",
                        help="list clean statements too")
    parser.add_argument("--workload", action="store_true",
                        help="whole-script workload analysis: interpret "
                        "each file as one session (directives, cache "
                        "derivability, fused-scan sharing, exactness and "
                        "cardinality verdicts — ASSESS5xx)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text; json emits the "
                        "stable machine-readable schema)")
    args = parser.parse_args(argv)

    from .analysis import AnalysisContext, lint_paths, lint_statements, render_report
    from .experiments.statements import STATEMENTS, prepare_engine

    if args.cube == "none":
        context = AnalysisContext(schemas=None)
    else:
        engines = []
        if args.cube in ("sales", "all"):
            engines.append(sales_engine(n_rows=args.rows))
        if args.cube in ("ssb", "all"):
            engines.append(prepare_engine(lineorder_rows=args.rows))
        context = AnalysisContext.for_engines(
            engines, strict=not args.permissive
        )

    if args.workload:
        return _lint_workloads(args, context)

    try:
        report = lint_paths(args.paths, context)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.bundled or not args.paths:
        report.results.extend(
            lint_statements(
                [text.strip() for text in STATEMENTS.values()],
                context,
                "experiments.statements",
            )
        )
    if args.format == "json":
        import json

        from .analysis import WORKLOAD_SCHEMA_VERSION, report_results_json

        print(json.dumps({
            "schema_version": WORKLOAD_SCHEMA_VERSION,
            "mode": "statement",
            "results": report_results_json(report.results),
        }, indent=2))
    else:
        print(render_report(report, verbose=args.verbose))
    return 1 if report.has_errors else 0


def _lint_workloads(args, context) -> int:
    """``repro lint --workload``: per-file whole-script analysis."""
    from pathlib import Path

    from .analysis import WORKLOAD_SCHEMA_VERSION, analyze_workload

    files = []
    for entry in args.paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(
                child for child in sorted(entry.rglob("*"))
                if child.suffix in (".assess", ".txt") and child.is_file()
            )
        else:
            files.append(entry)
    if not files:
        print("error: --workload needs statement files", file=sys.stderr)
        return 2

    reports = []
    for path in files:
        try:
            text = path.read_text()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        reports.append(
            analyze_workload(text, context=context, origin=str(path))
        )

    if args.format == "json":
        import json

        print(json.dumps({
            "schema_version": WORKLOAD_SCHEMA_VERSION,
            "mode": "workload",
            "workloads": [report.to_json() for report in reports],
        }, indent=2))
    else:
        for report in reports:
            print(report.render(verbose=args.verbose))
            print()
    return 1 if any(report.has_errors for report in reports) else 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "cube":
        return cube_main(argv[1:])
    if argv and argv[0] == "storage":
        return storage_main(argv[1:])
    if argv and argv[0] == "history":
        return history_main(argv[1:])
    if argv and argv[0] == "serve":
        from .server import serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Run assess statements against a bundled demo cube.",
    )
    parser.add_argument("statement", nargs="?", default="",
                        help="an assess statement (omit for a REPL)")
    parser.add_argument("--cube", choices=("sales", "ssb"), default="sales",
                        help="which demo cube to build (default: sales)")
    parser.add_argument("--rows", type=int, default=None,
                        help="fact rows to generate")
    parser.add_argument("--plan", default="best",
                        choices=("NP", "JOP", "POP", "best"),
                        help="execution plan (default: best)")
    parser.add_argument("--explain", action="store_true",
                        help="print the plan tree and pushed SQL")
    parser.add_argument("--limit", type=int, default=20,
                        help="max result rows to print (default: 20)")
    add_parallelism_flag(parser)
    add_memory_flag(parser)
    args = parser.parse_args(argv)

    session = build_session(args.cube, args.rows, parallelism=args.parallelism,
                            memory_budget=args.memory_bytes)
    if args.statement.strip():
        return run_statement(session, args.statement, args.plan,
                             args.explain, args.limit)
    return repl(session, args.plan, args.explain, args.limit)


if __name__ == "__main__":
    sys.exit(main())
