"""repro — a full reproduction of "Assess Queries for Interactive Analysis
of Data Cubes" (Francia, Golfarelli, Marcel, Rizzi, Vassiliadis; EDBT 2021).

The package provides:

* the **assess operator** with its SQL-like language (``with … by … assess …
  against … using … labels …``), all four benchmark types (constant,
  external, sibling, past) plus the ``assess*`` variant and an
  ancestor-benchmark extension;
* the **logical algebra** of Section 4.2 (get, join, cell-/h-transform,
  pivot) with the NP/JOP/POP execution plans and the P1–P3 rewrite rules of
  Section 5;
* a from-scratch **relational engine substrate** (columnar tables, star
  schemas, vectorised group-by/join/pivot, SQL rendering) standing in for
  the paper's Oracle 11g;
* **data generators** for the paper's SALES example and SSB-style stars;
* the full **experiment harness** regenerating Tables 1–3 and Figures 3–4.

Quick start::

    from repro import AssessSession
    from repro.datagen import sales_engine

    session = AssessSession(sales_engine())
    result = session.assess('''
        with SALES for type = 'Fresh Fruit', country = 'Italy'
        by product, country
        assess quantity against country = 'France'
        using percOfTotal(difference(quantity, benchmark.quantity))
        labels {[-inf, -0.2): bad, [-0.2, 0.2]: ok, (0.2, inf]: good}
    ''')
    print(result.to_table())
"""

from .api import AssessSession
from .suggest import Completion, complete_statement
from .core import (
    AssessResult,
    AssessStatement,
    Cube,
    CubeQuery,
    CubeSchema,
    GroupBySet,
    Hierarchy,
    Level,
    Measure,
    Predicate,
    ReproError,
)
from .parser import parse_statement

__version__ = "1.0.0"

__all__ = [
    "AssessResult",
    "AssessSession",
    "AssessStatement",
    "Completion",
    "complete_statement",
    "Cube",
    "CubeQuery",
    "CubeSchema",
    "GroupBySet",
    "Hierarchy",
    "Level",
    "Measure",
    "Predicate",
    "ReproError",
    "__version__",
    "parse_statement",
]
