"""Partial-statement completion (the paper's §8 future work).

"Devise strategies for effectively completing partial assess statements,
for instance, ones where the against, using or benchmark clauses are not
specified by the user.  Interestingly, this could require different
possibilities to be tested and ranked based on their expected interest for
the user."

:func:`complete_statement` accepts a statement whose ``using`` and/or
``labels`` clause is missing, enumerates sensible candidates for the
missing clauses (driven by the benchmark type), *executes* each candidate,
and ranks the outcomes by an interest score:

* the labeling should actually discriminate — a label distribution with
  high normalised entropy beats one that puts every cell in one class;
* a moderate number of classes (3–5) is preferred;
* null labels (comparison values falling outside every range) and
  non-finite comparison values are penalised.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from .api import AssessSession
from .core.errors import ReproError
from .core.expression import Expression, FunctionCall, Literal, MeasureRef
from .core.labels import Interval, LabelRule, NamedLabeling, RangeLabeling
from .core.statement import (
    AssessStatement,
    ConstantBenchmark,
    SiblingBenchmark,
    ZeroBenchmark,
)

PENDING_LABELS = "__pending__"


class Completion:
    """One ranked completion: the full statement, its score, a rationale."""

    __slots__ = ("statement", "score", "rationale", "result")

    def __init__(self, statement: AssessStatement, score: float,
                 rationale: str, result):
        self.statement = statement
        self.score = score
        self.rationale = rationale
        self.result = result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Completion(score={self.score:.3f}, {self.rationale})"


def complete_statement(
    session: AssessSession, text: str, top_k: int = 3
) -> List[Completion]:
    """Complete a partial statement, returning the top-k ranked candidates.

    ``text`` may omit the ``using`` clause, the ``labels`` clause, or both.
    Candidates are executed against the session's data (with the best
    feasible plan) and ranked by the interest score described in the module
    docstring.  Raises :class:`ParseError` if the statement is broken in
    any other way.
    """
    base = _parse_partial(session, text)
    using_candidates = _using_candidates(base)
    label_candidates = _label_candidates(base)

    completions: List[Completion] = []
    for using, using_why in using_candidates:
        for labels, labels_why in label_candidates:
            candidate = AssessStatement(
                source=base.source,
                schema=base.schema,
                group_by=base.group_by,
                measure=base.measure,
                predicates=base.predicates,
                benchmark=base.benchmark,
                using=using,
                labels=labels,
                star=base.star,
            )
            try:
                result = session.assess(candidate)
            except ReproError:
                continue
            score = _interest_score(result)
            rationale = f"{using_why}; {labels_why}"
            completions.append(Completion(candidate, score, rationale, result))

    completions.sort(key=lambda completion: completion.score, reverse=True)
    return completions[:top_k]


# ----------------------------------------------------------------------
# Partial parsing
# ----------------------------------------------------------------------
def _parse_partial(session: AssessSession, text: str) -> AssessStatement:
    """Parse text that may be missing its labels clause.

    The grammar makes ``labels`` mandatory, so a placeholder is appended
    when absent; the placeholder labeling is replaced during completion.
    """
    lowered = text.lower()
    if "labels" not in lowered.split():
        text = f"{text.rstrip()} labels {PENDING_LABELS}"
    statement = session.parse(text)
    return statement


def _has_pending_labels(statement: AssessStatement) -> bool:
    return (
        isinstance(statement.labels, NamedLabeling)
        and statement.labels.name == PENDING_LABELS
    )


def _has_default_using(statement: AssessStatement) -> bool:
    rendered = statement.using.render()
    return rendered == (
        f"difference({statement.measure}, benchmark.{statement.benchmark_measure})"
    )


# ----------------------------------------------------------------------
# Candidate enumeration
# ----------------------------------------------------------------------
def _using_candidates(
    statement: AssessStatement,
) -> List[Tuple[Expression, str]]:
    """Comparison expressions that make sense for the benchmark type."""
    if not _has_default_using(statement):
        return [(statement.using, "using clause as given")]
    m = statement.measure
    m_b = statement.benchmark_measure
    target = MeasureRef(m)
    bench = MeasureRef(m_b, "benchmark")
    candidates: List[Tuple[Expression, str]] = []
    benchmark = statement.benchmark
    if isinstance(benchmark, ZeroBenchmark):
        # no reference value: label the raw measure
        candidates.append((FunctionCall("identity", [target]), "raw value"))
        candidates.append((FunctionCall("zscore", [target]), "z-scored value"))
        return candidates
    if isinstance(benchmark, ConstantBenchmark):
        constant = Literal(benchmark.value)
        candidates.append((FunctionCall("ratio", [target, constant]),
                           "ratio to the KPI"))
        candidates.append((FunctionCall("difference", [target, constant]),
                           "gap to the KPI"))
        return candidates
    candidates.append((FunctionCall("ratio", [target, bench]),
                       "ratio to the benchmark"))
    candidates.append((FunctionCall("normalizedDifference", [target, bench]),
                       "normalized gap to the benchmark"))
    if isinstance(benchmark, SiblingBenchmark):
        candidates.append(
            (
                FunctionCall(
                    "percOfTotal",
                    [FunctionCall("difference", [target, bench]), target],
                ),
                "gap as share of total",
            )
        )
    return candidates


def _ratio_ranges() -> RangeLabeling:
    inf = float("inf")
    return RangeLabeling(
        [
            LabelRule(Interval(0.0, 0.9, True, False), "worse"),
            LabelRule(Interval(0.9, 1.1, True, True), "comparable"),
            LabelRule(Interval(1.1, inf, False, False), "better"),
        ]
    )


def _signed_ranges() -> RangeLabeling:
    inf = float("inf")
    return RangeLabeling(
        [
            LabelRule(Interval(-inf, -0.1, False, False), "below"),
            LabelRule(Interval(-0.1, 0.1, True, True), "around"),
            LabelRule(Interval(0.1, inf, False, False), "above"),
        ]
    )


def _label_candidates(
    statement: AssessStatement,
) -> List[Tuple[object, str]]:
    """Labelings to try: distribution-based plus type-appropriate ranges."""
    if not _has_pending_labels(statement):
        return [(statement.labels, "labels clause as given")]
    candidates: List[Tuple[object, str]] = [
        (NamedLabeling("quartiles"), "quartile split"),
        (NamedLabeling("terciles"), "tercile split"),
        (NamedLabeling("zscoreLikert"), "Likert scale on z-scores"),
        (NamedLabeling("cluster"), "system-chosen clusters"),
        (_ratio_ranges(), "ratio ranges around 1"),
        (_signed_ranges(), "signed ranges around 0"),
    ]
    return candidates


# ----------------------------------------------------------------------
# Interest scoring
# ----------------------------------------------------------------------
def _interest_score(result) -> float:
    """Score a completed assessment's usefulness in [0, 1]."""
    counts: Dict[Optional[str], int] = result.label_counts()
    total = sum(counts.values())
    if total == 0:
        return 0.0
    nulls = counts.pop(None, 0)
    classes = len(counts)
    if classes == 0:
        return 0.0

    # normalised entropy of the label distribution: 1 = perfectly balanced
    probabilities = [count / (total - nulls) for count in counts.values() if count]
    entropy = -sum(p * math.log(p) for p in probabilities)
    balance = entropy / math.log(classes) if classes > 1 else 0.0

    # class-count preference: 3-5 classes are ideal
    if 3 <= classes <= 5:
        class_factor = 1.0
    elif classes == 2:
        class_factor = 0.8
    else:
        class_factor = 0.6

    null_penalty = 1.0 - (nulls / total)

    comparisons = np.asarray(result.cube.measure(result.comparison_measure),
                             dtype=np.float64)
    finite = np.isfinite(comparisons).mean() if len(comparisons) else 0.0

    return float(balance * class_factor * null_penalty * finite)
