"""Statement passes: semantic checks over the raw (unvalidated) AST.

Each pass inspects one aspect of a :class:`~repro.parser.raw.RawStatement`
and reports *every* defect it finds into a shared
:class:`~repro.core.diagnostics.DiagnosticBag` — unlike the binding stage,
which raises on the first.  Passes degrade gracefully: when the ``with``
cube cannot be resolved, schema-dependent checks are skipped rather than
producing follow-on noise.

The checks mirror the constraints of the paper: group-by well-formedness
(Definition 2.3), benchmark joinability (Definition 3.1 for external cubes,
the slicing requirements of Section 3.1 for sibling/past), using-clause
resolution against the function library (Section 3.2), and label-range
completeness/non-overlap (Section 3.3.1).
"""

from __future__ import annotations

import math
from typing import List, Optional, Set, Tuple, Union

from ..core.diagnostics import Diagnostic, DiagnosticBag, Severity, Span
from ..core.errors import ParseError, ReproError
from ..core.expression import BinaryOp, Expression, FunctionCall, Literal, MeasureRef
from ..core.labels import Interval, LabelRule, find_gaps, find_overlaps
from ..core.schema import CubeSchema
from ..core.statement import AssessStatement
from ..parser.parser import bind_statement, parse_raw
from ..parser.raw import RawBenchmark, RawLabels, RawPredicate, RawStatement
from .context import AnalysisContext

SOURCE = "statement"

# Functions whose second argument is a denominator, so a literal zero there
# is as much a defect as a literal zero after ``/``.
_DENOMINATOR_FUNCTIONS = frozenset({"ratio"})


def analyze_text(
    text: str, context: AnalysisContext
) -> Tuple[Optional[AssessStatement], DiagnosticBag]:
    """Analyze statement *text*: ``(statement_or_None, DiagnosticBag)``.

    The full pipeline a linter wants: syntax (ASSESS001), every statement
    pass, and — when the cube resolves and no error was found — a binding
    attempt whose residual failures surface as ASSESS002 instead of raising.
    In non-strict contexts an unresolvable cube skips binding silently.
    """
    try:
        raw = parse_raw(text)
    except ParseError as error:
        span = (
            Span.from_text(text, error.position)
            if error.position >= 0
            else None
        )
        return None, DiagnosticBag(
            [Diagnostic("ASSESS001", Severity.ERROR, error.args[0], span,
                        source="parse")]
        )
    bag = analyze_raw_statement(raw, context)
    if bag.has_errors or context.resolve(raw.source) is None:
        return None, bag
    try:
        return bind_statement(raw, context), bag
    except ReproError as error:
        span = (
            Span.from_text(text, error.position)
            if error.position >= 0
            else None
        )
        bag.report("ASSESS002", Severity.ERROR, error.args[0], span,
                   source="bind")
        return None, bag


def analyze_raw_statement(
    raw: RawStatement, context: Union[AnalysisContext, object]
) -> DiagnosticBag:
    """Run every statement pass; ``context`` is an :class:`AnalysisContext`
    or a schema resolver (mapping/callable), as ``parse_statement`` takes."""
    if not isinstance(context, AnalysisContext):
        context = AnalysisContext(schemas=context)
    bag = DiagnosticBag()
    schema = _resolve_cube_pass(raw, context, bag)
    _group_by_pass(raw, schema, bag)
    _measure_pass(raw, schema, bag)
    _predicate_pass(raw, schema, bag)
    _benchmark_pass(raw, schema, context, bag)
    _using_pass(raw, schema, context, bag)
    _labels_pass(raw, context, bag)
    return bag


# ----------------------------------------------------------------------
# Cube resolution (ASSESS101)
# ----------------------------------------------------------------------
def _resolve_cube_pass(
    raw: RawStatement, context: AnalysisContext, bag: DiagnosticBag
) -> Optional[CubeSchema]:
    if not context.can_resolve_cubes:
        return None
    schema = context.resolve(raw.source)
    if schema is None:
        if context.strict:
            bag.report(
                "ASSESS101",
                Severity.ERROR,
                f"unknown cube {raw.source!r}",
                raw.source_span,
                source=SOURCE,
            )
        else:
            bag.report(
                "ASSESS101",
                Severity.INFO,
                f"cube {raw.source!r} is not registered here; "
                "schema-dependent checks skipped",
                raw.source_span,
                source=SOURCE,
            )
    return schema


# ----------------------------------------------------------------------
# by clause (ASSESS102, ASSESS103)
# ----------------------------------------------------------------------
def _group_by_pass(
    raw: RawStatement, schema: Optional[CubeSchema], bag: DiagnosticBag
) -> None:
    if schema is None:
        return
    first_by_hierarchy = {}
    for name, span in raw.levels:
        if not schema.has_level(name):
            bag.report(
                "ASSESS102",
                Severity.ERROR,
                f"cube {schema.name!r} has no level {name!r}",
                span,
                source=SOURCE,
            )
            continue
        hierarchy = schema.hierarchy_of_level(name)
        earlier = first_by_hierarchy.get(hierarchy.name)
        if earlier is not None and earlier != name:
            bag.report(
                "ASSESS103",
                Severity.ERROR,
                f"levels {earlier!r} and {name!r} both belong to hierarchy "
                f"{hierarchy.name!r}; a group-by set takes at most one level "
                "per hierarchy",
                span,
                source=SOURCE,
            )
        else:
            first_by_hierarchy[hierarchy.name] = name


# ----------------------------------------------------------------------
# assess clause (ASSESS104)
# ----------------------------------------------------------------------
def _measure_pass(
    raw: RawStatement, schema: Optional[CubeSchema], bag: DiagnosticBag
) -> None:
    if schema is None or schema.has_measure(raw.measure):
        return
    bag.report(
        "ASSESS104",
        Severity.ERROR,
        f"cube {schema.name!r} has no measure {raw.measure!r}",
        raw.measure_span,
        hint=f"measures: {', '.join(schema.measure_names())}",
        source=SOURCE,
    )


# ----------------------------------------------------------------------
# for clause (ASSESS105, ASSESS106, ASSESS107)
# ----------------------------------------------------------------------
def _render_predicate(predicate: RawPredicate) -> str:
    if predicate.op == "=":
        return f"{predicate.level} = {predicate.values[0]!r}"
    if predicate.op == "in":
        rendered = ", ".join(repr(v) for v in predicate.values)
        return f"{predicate.level} in ({rendered})"
    low, high = predicate.values
    return f"{predicate.level} between {low!r} and {high!r}"


def _predicate_pass(
    raw: RawStatement, schema: Optional[CubeSchema], bag: DiagnosticBag
) -> None:
    earlier_by_level = {}
    for predicate in raw.predicates:
        if schema is not None and not schema.has_level(predicate.level):
            bag.report(
                "ASSESS105",
                Severity.ERROR,
                f"for predicate on unknown level {predicate.level!r}",
                predicate.level_span,
                source=SOURCE,
            )
        for earlier in earlier_by_level.get(predicate.level, ()):
            if (earlier.op, earlier.values) == (predicate.op, predicate.values):
                bag.report(
                    "ASSESS106",
                    Severity.WARNING,
                    f"duplicate predicate {_render_predicate(predicate)}",
                    predicate.span,
                    source=SOURCE,
                )
                continue
            mine = predicate.member_set()
            theirs = earlier.member_set()
            if mine is not None and theirs is not None and not (mine & theirs):
                bag.report(
                    "ASSESS107",
                    Severity.ERROR,
                    f"contradictory predicates on level {predicate.level!r}: "
                    f"{_render_predicate(earlier)} and "
                    f"{_render_predicate(predicate)} share no member",
                    predicate.span,
                    source=SOURCE,
                )
        earlier_by_level.setdefault(predicate.level, []).append(predicate)


# ----------------------------------------------------------------------
# against clause (ASSESS110..ASSESS115)
# ----------------------------------------------------------------------
def _benchmark_pass(
    raw: RawStatement,
    schema: Optional[CubeSchema],
    context: AnalysisContext,
    bag: DiagnosticBag,
) -> None:
    benchmark = raw.benchmark
    if benchmark is None or benchmark.kind == "constant":
        return
    if benchmark.kind == "external":
        _external_benchmark_pass(raw, benchmark, context, bag)
    elif benchmark.kind == "sibling":
        _sibling_benchmark_pass(raw, benchmark, bag)
    elif benchmark.kind == "past":
        _past_benchmark_pass(raw, benchmark, schema, bag)
    elif benchmark.kind == "ancestor":
        _ancestor_benchmark_pass(raw, benchmark, schema, bag)


def _external_benchmark_pass(
    raw: RawStatement,
    benchmark: RawBenchmark,
    context: AnalysisContext,
    bag: DiagnosticBag,
) -> None:
    external = context.resolve(benchmark.cube)
    if external is None:
        if context.can_resolve_cubes and context.strict:
            bag.report(
                "ASSESS110",
                Severity.ERROR,
                f"unknown external cube {benchmark.cube!r}",
                benchmark.span,
                source=SOURCE,
            )
        return
    # Joinability (Definition 3.1): the drill-across needs every group-by
    # level to exist in the external cube's schema as well.
    missing = [
        name for name, _ in raw.levels if not external.has_level(name)
    ]
    if missing:
        bag.report(
            "ASSESS111",
            Severity.ERROR,
            f"external cube {benchmark.cube!r} has no level"
            f"{'s' if len(missing) > 1 else ''} "
            f"{', '.join(repr(m) for m in missing)}; the cubes are not "
            "joinable (Definition 3.1)",
            benchmark.span,
            source=SOURCE,
        )
    if not external.has_measure(benchmark.measure):
        bag.report(
            "ASSESS112",
            Severity.ERROR,
            f"external cube {benchmark.cube!r} has no measure "
            f"{benchmark.measure!r}",
            benchmark.span,
            hint=f"measures: {', '.join(external.measure_names())}",
            source=SOURCE,
        )


def _single_member(raw: RawStatement, level: str) -> Optional[object]:
    """The single member a for-clause predicate slices ``level`` on, if any."""
    predicate = raw.predicate_on(level)
    if predicate is None:
        return None
    members = predicate.member_set()
    if members is None or len(members) != 1:
        return None
    return next(iter(members))


def _sibling_benchmark_pass(
    raw: RawStatement, benchmark: RawBenchmark, bag: DiagnosticBag
) -> None:
    if benchmark.level not in raw.level_names():
        bag.report(
            "ASSESS113",
            Severity.ERROR,
            f"sibling level {benchmark.level!r} must belong to the by clause "
            f"({', '.join(raw.level_names())})",
            benchmark.span,
            source=SOURCE,
        )
        return
    member = _single_member(raw, benchmark.level)
    if member is None:
        bag.report(
            "ASSESS113",
            Severity.ERROR,
            f"the for clause must slice level {benchmark.level!r} on a "
            "single member for a sibling benchmark",
            benchmark.span,
            source=SOURCE,
        )
    elif member == benchmark.member:
        bag.report(
            "ASSESS113",
            Severity.ERROR,
            f"sibling member {benchmark.member!r} equals the target slice "
            "member; a sibling must differ",
            benchmark.span,
            source=SOURCE,
        )


def _past_benchmark_pass(
    raw: RawStatement,
    benchmark: RawBenchmark,
    schema: Optional[CubeSchema],
    bag: DiagnosticBag,
) -> None:
    if benchmark.k < 1:
        bag.report(
            "ASSESS114",
            Severity.ERROR,
            f"past benchmark needs k >= 1, got {benchmark.k}",
            benchmark.span,
            source=SOURCE,
        )
    if schema is None:
        return
    temporal = schema.temporal_hierarchy()
    if temporal is None:
        bag.report(
            "ASSESS114",
            Severity.ERROR,
            "past benchmark requires a temporal hierarchy (named or "
            "containing a level 'date'/'time')",
            benchmark.span,
            source=SOURCE,
        )
        return
    temporal_levels = [
        name for name, _ in raw.levels if temporal.has_level(name)
    ]
    if not temporal_levels:
        bag.report(
            "ASSESS114",
            Severity.ERROR,
            f"past benchmark requires a level of the temporal hierarchy "
            f"{temporal.name!r} in the by clause",
            benchmark.span,
            source=SOURCE,
        )
        return
    level = temporal_levels[0]
    if _single_member(raw, level) is None:
        bag.report(
            "ASSESS114",
            Severity.ERROR,
            f"the for clause must slice temporal level {level!r} on a "
            "single member for a past benchmark",
            benchmark.span,
            source=SOURCE,
        )


def _ancestor_benchmark_pass(
    raw: RawStatement,
    benchmark: RawBenchmark,
    schema: Optional[CubeSchema],
    bag: DiagnosticBag,
) -> None:
    if schema is None:
        return
    if not schema.has_level(benchmark.ancestor_level):
        bag.report(
            "ASSESS115",
            Severity.ERROR,
            f"cube {schema.name!r} has no level {benchmark.ancestor_level!r}",
            benchmark.span,
            source=SOURCE,
        )
        return
    hierarchy = schema.hierarchy_of_level(benchmark.ancestor_level)
    finer = [
        name
        for name, _ in raw.levels
        if hierarchy.has_level(name) and name != benchmark.ancestor_level
    ]
    if not finer:
        bag.report(
            "ASSESS115",
            Severity.ERROR,
            f"ancestor benchmark on {benchmark.ancestor_level!r} requires a "
            f"finer level of hierarchy {hierarchy.name!r} in the by clause",
            benchmark.span,
            source=SOURCE,
        )
        return
    if not hierarchy.rolls_up_to(finer[0], benchmark.ancestor_level):
        bag.report(
            "ASSESS115",
            Severity.ERROR,
            f"{finer[0]!r} does not roll up to {benchmark.ancestor_level!r}",
            benchmark.span,
            source=SOURCE,
        )


# ----------------------------------------------------------------------
# using clause (ASSESS120..ASSESS126)
# ----------------------------------------------------------------------
def _benchmark_provides(
    raw: RawStatement,
    schema: Optional[CubeSchema],
    context: AnalysisContext,
) -> Optional[Set[str]]:
    """The measure names available under the ``benchmark.`` qualifier, or
    ``None`` when they cannot be determined statically."""
    benchmark = raw.benchmark
    if benchmark is None or benchmark.kind == "constant":
        # The zero/constant benchmark exposes only the synthetic constant.
        return {"constant"}
    if benchmark.kind == "external":
        external = context.resolve(benchmark.cube)
        if external is None:
            return None
        return set(external.measure_names()) | {benchmark.measure}
    # sibling / past / ancestor range over the target cube itself
    if schema is None:
        return None
    return set(schema.measure_names())


def _expr_span(raw: RawStatement, node: Expression) -> Optional[Span]:
    return raw.span_of_expr(node) or raw.using_span


def _using_pass(
    raw: RawStatement,
    schema: Optional[CubeSchema],
    context: AnalysisContext,
    bag: DiagnosticBag,
) -> None:
    expression = raw.using
    if expression is None:
        return  # the implicit difference(m, benchmark.m_B) is always sound
    provided = _benchmark_provides(raw, schema, context)
    saw_benchmark_ref = False

    def walk(node: Expression) -> None:
        nonlocal saw_benchmark_ref
        if isinstance(node, FunctionCall):
            _check_call(node)
            for arg in node.args:
                walk(arg)
        elif isinstance(node, BinaryOp):
            if (
                node.op == "/"
                and isinstance(node.right, Literal)
                and node.right.value == 0
            ):
                bag.report(
                    "ASSESS122",
                    Severity.ERROR,
                    "division by constant zero",
                    _expr_span(raw, node.right),
                    source=SOURCE,
                )
            walk(node.left)
            walk(node.right)
        elif isinstance(node, MeasureRef):
            if node.qualifier == "benchmark":
                saw_benchmark_ref = True
            _check_ref(node)

    def _check_call(node: FunctionCall) -> None:
        span = _expr_span(raw, node)
        if not context.registry.has(node.name):
            bag.report(
                "ASSESS120",
                Severity.ERROR,
                f"unknown function {node.name!r}",
                span,
                hint=f"registered: {', '.join(context.registry.names())}",
                source=SOURCE,
            )
            return
        entry = context.registry.get(node.name)
        argc = len(node.args)
        if entry.arity is not None and argc != entry.arity:
            # percOfTotal(x) is sugar for percOfTotal(x, m) (Example 4.1).
            if not (node.name.lower() == "percoftotal" and argc == 1):
                bag.report(
                    "ASSESS121",
                    Severity.ERROR,
                    f"function {node.name!r} takes {entry.arity} "
                    f"argument{'s' if entry.arity != 1 else ''}, got {argc}",
                    span,
                    source=SOURCE,
                )
        if (
            node.name.lower() in _DENOMINATOR_FUNCTIONS
            and len(node.args) >= 2
            and isinstance(node.args[1], Literal)
            and node.args[1].value == 0
        ):
            bag.report(
                "ASSESS122",
                Severity.ERROR,
                f"division by constant zero in {node.name!r}",
                _expr_span(raw, node.args[1]),
                source=SOURCE,
            )

    def _check_ref(node: MeasureRef) -> None:
        span = _expr_span(raw, node)
        if node.qualifier is None:
            if schema is None or schema.has_measure(node.name):
                return
            engine = context.engine
            if engine is not None:
                if engine.has_property(raw.source, node.name):
                    level, _, _ = (
                        engine.cube(raw.source).star.property_binding(node.name)
                    )
                    if level not in raw.level_names():
                        bag.report(
                            "ASSESS124",
                            Severity.ERROR,
                            f"property {node.name!r} belongs to level "
                            f"{level!r}, which must be in the by clause to "
                            "be referenced",
                            span,
                            source=SOURCE,
                        )
                    return
                bag.report(
                    "ASSESS124",
                    Severity.ERROR,
                    f"{node.name!r} is neither a measure of {raw.source!r} "
                    "nor a bound level property",
                    span,
                    source=SOURCE,
                )
            else:
                bag.report(
                    "ASSESS124",
                    Severity.WARNING,
                    f"{node.name!r} is not a measure of {raw.source!r} "
                    "(level properties cannot be checked without an engine)",
                    span,
                    source=SOURCE,
                )
        elif node.qualifier == "benchmark":
            if provided is None or node.name in provided:
                return
            engine = context.engine
            if engine is not None and engine.has_property(raw.source, node.name):
                return  # benchmark-qualified level property (§8 extension)
            kind = raw.benchmark.kind if raw.benchmark is not None else "zero"
            bag.report(
                "ASSESS123",
                Severity.ERROR,
                f"the {kind} benchmark provides no measure {node.name!r} "
                f"under the benchmark qualifier",
                span,
                hint=f"available: {', '.join(sorted(provided))}",
                source=SOURCE,
            )
        else:
            bag.report(
                "ASSESS126",
                Severity.ERROR,
                f"unknown qualifier {node.qualifier!r} in "
                f"{node.column_name!r}; only 'benchmark' is supported",
                span,
                source=SOURCE,
            )

    walk(expression)

    benchmark = raw.benchmark
    if (
        benchmark is not None
        and benchmark.kind != "constant"
        and not saw_benchmark_ref
    ):
        bag.report(
            "ASSESS125",
            Severity.WARNING,
            f"a {benchmark.kind} benchmark is declared but the using clause "
            "never references benchmark.*; the comparison ignores it",
            raw.using_span,
            source=SOURCE,
        )


# ----------------------------------------------------------------------
# labels clause (ASSESS130..ASSESS134)
# ----------------------------------------------------------------------
def _labels_pass(
    raw: RawStatement, context: AnalysisContext, bag: DiagnosticBag
) -> None:
    labels = raw.labels
    if labels is None:
        return
    if labels.kind == "named":
        _named_labels_pass(labels, context, bag)
        return

    valid_rules: List[LabelRule] = []
    span_by_rule = {}
    for rule in labels.rules:
        # Infinite bounds are always open (Interval forces this), so a
        # syntactically closed '[inf' must be judged as open here.
        low_closed = rule.low_closed and not math.isinf(rule.low)
        high_closed = rule.high_closed and not math.isinf(rule.high)
        if rule.low > rule.high:
            bag.report(
                "ASSESS132",
                Severity.ERROR,
                f"empty interval: low {rule.low} > high {rule.high}",
                rule.span,
                source=SOURCE,
            )
        elif rule.low == rule.high and not (low_closed and high_closed):
            bag.report(
                "ASSESS132",
                Severity.ERROR,
                f"degenerate interval at {rule.low} must be closed on both "
                "ends",
                rule.span,
                source=SOURCE,
            )
        else:
            valid = LabelRule(
                Interval(rule.low, rule.high, low_closed, high_closed),
                rule.label,
            )
            valid_rules.append(valid)
            span_by_rule[id(valid)] = rule.span
    if not valid_rules:
        return
    # Report every overlapping pair (ASSESS131) and every gap (ASSESS130).
    for earlier, later in find_overlaps(valid_rules):
        bag.report(
            "ASSESS131",
            Severity.ERROR,
            f"label ranges {earlier.interval.render()} and "
            f"{later.interval.render()} overlap",
            span_by_rule.get(id(later), labels.span),
            source=SOURCE,
        )
    gaps = find_gaps(valid_rules)
    if gaps:
        bag.report(
            "ASSESS130",
            Severity.WARNING,
            "label ranges leave gaps: "
            + ", ".join(gap.render() for gap in gaps)
            + "; values there receive the null label",
            labels.span,
            source=SOURCE,
        )


def _named_labels_pass(
    labels: RawLabels, context: AnalysisContext, bag: DiagnosticBag
) -> None:
    name = labels.name
    if name.lower() in context.known_labelings:
        return
    if not context.registry.has(name):
        bag.report(
            "ASSESS133",
            Severity.WARNING,
            f"labeling function {name!r} is not registered (it may be "
            "defined by the session before execution)",
            labels.span,
            hint=(
                "registered labelings: "
                + ", ".join(context.registry.names(kind="labeling"))
            ),
            source=SOURCE,
        )
        return
    entry = context.registry.get(name)
    if entry.kind != "labeling":
        bag.report(
            "ASSESS134",
            Severity.ERROR,
            f"function {name!r} has kind {entry.kind!r}; the labels clause "
            "needs a labeling function",
            labels.span,
            source=SOURCE,
        )
