"""Linting: run the static analyzer over statement files and Python sources.

Two input flavours are understood:

* **statement files** (``.assess``/``.txt``/anything non-Python): one or
  more statements, separated by ``;`` or simply by the next line starting
  with ``with``; ``#`` and ``--`` comment lines are ignored;
* **Python files**: every string literal that looks like an assess
  statement (starts with ``with`` and contains ``assess``) is extracted via
  the ``ast`` module and linted — this covers example scripts and the
  experiment workload tables without executing them.

Every statement is analyzed independently and *all* its diagnostics are
collected, so one run reports every defect in a file.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..core.diagnostics import Diagnostic, DiagnosticBag
from .context import AnalysisContext
from .statement_passes import analyze_text

_STATEMENT_START = re.compile(r"(?im)^[ \t]*with\b")
# Python sources hold many strings; only ones shaped like a *complete*
# statement (with … assess … labels …) are linted — partial statements
# (e.g. auto-completion demos) are deliberately left alone.
_LOOKS_LIKE_STATEMENT = re.compile(
    r"(?is)^\s*with\s+\w+.*\bassess\b.*\blabels\b"
)
_COMMENT = re.compile(r"^\s*(#|--)")


@dataclass
class LintResult:
    """One statement's analysis outcome."""

    origin: str
    statement: str
    bag: DiagnosticBag

    @property
    def has_errors(self) -> bool:
        return self.bag.has_errors


@dataclass
class LintReport:
    """All results of one lint run."""

    results: List[LintResult] = field(default_factory=list)

    @property
    def statements(self) -> int:
        return len(self.results)

    @property
    def has_errors(self) -> bool:
        return any(result.has_errors for result in self.results)

    def diagnostics(self) -> List[Tuple[LintResult, Diagnostic]]:
        pairs = []
        for result in self.results:
            for diagnostic in result.bag.sorted():
                pairs.append((result, diagnostic))
        return pairs

    def summary(self) -> str:
        errors = sum(len(result.bag.errors()) for result in self.results)
        warnings = sum(len(result.bag.warnings()) for result in self.results)
        return (
            f"{self.statements} statement"
            f"{'s' if self.statements != 1 else ''} checked: "
            f"{errors} error{'s' if errors != 1 else ''}, "
            f"{warnings} warning{'s' if warnings != 1 else ''}"
        )


def extract_statements(text: str) -> List[str]:
    """Split statement-file text into individual statement texts."""
    kept_lines = [
        "" if _COMMENT.match(line) else line for line in text.splitlines()
    ]
    statements: List[str] = []
    for piece in "\n".join(kept_lines).split(";"):
        starts = [match.start() for match in _STATEMENT_START.finditer(piece)]
        if not starts:
            if piece.strip():
                statements.append(piece.strip())
            continue
        # Anything before the first 'with' is junk — keep it attached so the
        # parser flags it rather than silently dropping it.
        starts[0] = 0
        bounds = starts + [len(piece)]
        for begin, end in zip(bounds, bounds[1:]):
            chunk = piece[begin:end].strip()
            if chunk:
                statements.append(chunk)
    return statements


def statements_from_python(source: str) -> List[str]:
    """Assess-statement string literals found in Python source."""
    tree = ast.parse(source)
    found: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if _LOOKS_LIKE_STATEMENT.match(node.value):
                found.append(node.value.strip())
    return found


def batch_diagnostics(statements: Sequence[str]) -> DiagnosticBag:
    """Batch-level checks (ASSESS3xx) over a statement list.

    These are warnings about the batch as a whole, orthogonal to the
    per-statement analysis: an empty batch (ASSESS301) is a no-op worth
    flagging, and duplicate statements (ASSESS302) execute once anyway —
    the batch executor's CSE memo serves the repeats — so a duplicate
    usually means a copy-paste slip in a workload file.
    """
    from ..core.diagnostics import Severity
    from .codes import severity_of

    bag = DiagnosticBag()
    if not statements:
        bag.report(
            "ASSESS301", severity_of("ASSESS301"),
            "batch contains no statements", source="batch",
        )
        return bag
    seen: Dict[str, int] = {}
    for position, statement in enumerate(statements):
        normalized = " ".join(statement.split()).lower()
        first = seen.setdefault(normalized, position)
        if first != position:
            head = statement.strip().splitlines()[0] if statement.strip() else ""
            bag.report(
                "ASSESS302", Severity.WARNING,
                f"statement {position + 1} duplicates statement {first + 1}"
                f" ({head!r})",
                hint="duplicates are answered from the batch memo; "
                "drop the repeat unless it is intentional",
                source="batch",
            )
    return bag


def lint_text(
    text: str, context: AnalysisContext, origin: str = "<string>"
) -> List[LintResult]:
    """Lint raw statement-file text."""
    return lint_statements(extract_statements(text), context, origin)


def lint_statements(
    statements: Sequence[str], context: AnalysisContext, origin: str
) -> List[LintResult]:
    """Lint a sequence of individual statement texts."""
    results = []
    for statement in statements:
        _, bag = analyze_text(statement, context)
        results.append(LintResult(origin, statement, bag))
    return results


def lint_path(path: Path, context: AnalysisContext) -> List[LintResult]:
    """Lint one file — Python sources and statement files alike."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".py":
        statements = statements_from_python(text)
        return lint_statements(statements, context, str(path))
    return lint_text(text, context, str(path))


def lint_paths(
    paths: Sequence[Union[str, Path]], context: AnalysisContext
) -> LintReport:
    """Lint files and directories (recursing into ``.py``/``.assess``/
    ``.txt`` files) into one report."""
    report = LintReport()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for child in sorted(entry.rglob("*")):
                if child.suffix in (".py", ".assess", ".txt") and child.is_file():
                    report.results.extend(lint_path(child, context))
        else:
            report.results.extend(lint_path(entry, context))
    return report


def render_report(report: LintReport, verbose: bool = False) -> str:
    """Human-readable rendering: every diagnostic, then a summary line."""
    lines: List[str] = []
    for result in report.results:
        if not result.bag and not verbose:
            continue
        first_line = result.statement.splitlines()[0] if result.statement else ""
        lines.append(f"{result.origin}: {first_line}")
        for diagnostic in result.bag.sorted():
            lines.append("  " + diagnostic.render(result.statement))
    lines.append(report.summary())
    return "\n".join(lines)
