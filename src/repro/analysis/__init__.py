"""Pass-based static analysis of assess statements and logical plans.

The analyzer turns the first-failure validation of the parser/planner into
structured, multi-error reporting: every finding is a
:class:`~repro.core.diagnostics.Diagnostic` with a stable ``ASSESSxxx``
code, a severity, a source span and a message (see :mod:`.codes` for the
catalog, and the "Diagnostics" section of ``docs/language.md`` for prose).

Entry points
------------

* :func:`analyze_text` — lint one statement text end to end;
* :func:`analyze_raw_statement` — run the statement passes over an
  already-parsed raw AST (what ``parse_statement(collect_diagnostics=True)``
  calls);
* :func:`verify_plan` — run the plan passes over a built
  :class:`~repro.algebra.plan.Plan` (what ``build_plan(validate=True)``
  calls);
* :mod:`.lint` — file-level linting behind ``python -m repro.cli lint``.
"""

from .codes import (
    ALL_CODES,
    BATCH_CODES,
    PLAN_CODES,
    STATEMENT_CODES,
    WORKLOAD_CODES,
    severity_of,
)
from .context import AnalysisContext
from .flow import (
    WORKLOAD_SCHEMA_VERSION,
    WorkloadReport,
    analyze_workload,
    report_results_json,
    scan_workload,
)
from .lint import (
    LintReport,
    LintResult,
    batch_diagnostics,
    extract_statements,
    lint_path,
    lint_paths,
    lint_statements,
    lint_text,
    render_report,
    statements_from_python,
)
from .plan_passes import verify_plan
from .statement_passes import analyze_raw_statement, analyze_text

__all__ = [
    "ALL_CODES",
    "AnalysisContext",
    "BATCH_CODES",
    "LintReport",
    "LintResult",
    "PLAN_CODES",
    "STATEMENT_CODES",
    "WORKLOAD_CODES",
    "WORKLOAD_SCHEMA_VERSION",
    "WorkloadReport",
    "analyze_raw_statement",
    "analyze_text",
    "analyze_workload",
    "batch_diagnostics",
    "extract_statements",
    "lint_path",
    "lint_paths",
    "lint_statements",
    "lint_text",
    "render_report",
    "report_results_json",
    "scan_workload",
    "severity_of",
    "statements_from_python",
    "verify_plan",
]
