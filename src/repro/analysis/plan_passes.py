"""Plan passes: structural verification of logical plan trees.

The planner and the P2/P3 rewriters manipulate plans symbolically; these
passes re-check the invariants the executor relies on, so a broken rewrite
surfaces as a diagnostic at plan time instead of a KeyError mid-execution:

* **shape** — every plan ends with the mandatory ``Using -> Label`` tail
  (the ⊡Δ / ⊡λ operators of Section 4.2 are never optimized away);
* **closure** — every column a node consumes is produced somewhere in its
  subtree (output-schema inference over the tree, with fan-in joins treated
  as open column sets because their ``_1.._k`` suffixes depend on data);
* **partiality** — partial joins range over a subset of the statement's
  group-by set, and exactly the expected subset for sibling/past benchmarks
  (``G \\ {l_s}`` / ``G \\ {l_t}``, Section 4.3);
* **steps** — every node is charged to a known Figure 4 cost bucket, and
  pushed operators to ``get_combined``;
* **pushed shape** — pushed joins/pivots sit directly over gets (the engine
  evaluates them as one SQL query, Section 5.2);
* **pivot members** — a pushed pivot's reference and member renames are all
  fetched by the combined get's predicate;
* **feasibility** — the plan name is feasible for the statement's benchmark
  type (the Section 5.2 matrix).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from ..algebra.plan import (
    ALL_STEPS,
    STEP_COMPARE,
    STEP_GET_BENCHMARK,
    STEP_GET_COMBINED,
    STEP_GET_TARGET,
    STEP_JOIN,
    STEP_LABEL,
    STEP_TRANSFORM,
    AddConstantNode,
    AttachPropertyNode,
    GetNode,
    JoinNode,
    LabelNode,
    PivotNode,
    Plan,
    PlanNode,
    PredictNode,
    ProjectNode,
    RollupJoinNode,
    UsingNode,
)
from ..core.diagnostics import DiagnosticBag, Severity
from ..core.statement import (
    AssessStatement,
    PastBenchmark,
    SiblingBenchmark,
)

SOURCE = "plan"


def verify_plan(
    plan: Plan, statement: Optional[AssessStatement] = None
) -> DiagnosticBag:
    """Run every plan pass; ``statement`` enables the statement-dependent
    checks (partiality, feasibility)."""
    bag = DiagnosticBag()
    _shape_pass(plan, bag)
    _closure_pass(plan, bag)
    _step_pass(plan, bag)
    _pushed_pass(plan, bag)
    _pivot_member_pass(plan, bag)
    if statement is not None:
        _partiality_pass(plan, statement, bag)
        _feasibility_pass(plan, statement, bag)
    return bag


# ----------------------------------------------------------------------
# Shape (ASSESS201)
# ----------------------------------------------------------------------
def _shape_pass(plan: Plan, bag: DiagnosticBag) -> None:
    root = plan.root
    if not isinstance(root, LabelNode):
        bag.report(
            "ASSESS201",
            Severity.ERROR,
            f"plan root must be a Label node, found {type(root).__name__}",
            source=SOURCE,
        )
        return
    if not isinstance(root.child, UsingNode):
        bag.report(
            "ASSESS201",
            Severity.ERROR,
            "plan must end with Using -> Label; Label's child is "
            f"{type(root.child).__name__}",
            source=SOURCE,
        )


# ----------------------------------------------------------------------
# Column closure (ASSESS202)
# ----------------------------------------------------------------------
class _Columns:
    """The measure columns a subtree produces.

    ``open_prefixes`` marks families like ``benchmark.revenue_`` whose
    numbered members (``_1.._k``) exist but cannot be counted statically
    (fan-in joins append one set per matching benchmark cell).
    """

    __slots__ = ("names", "open_prefixes")

    def __init__(self, names: Set[str], open_prefixes: Set[str] = frozenset()) -> None:
        self.names = set(names)
        self.open_prefixes = set(open_prefixes)

    def resolvable(self, column: str) -> bool:
        if column in self.names:
            return True
        return any(column.startswith(prefix) for prefix in self.open_prefixes)


def _closure_pass(plan: Plan, bag: DiagnosticBag) -> None:
    def require(node: PlanNode, available: _Columns, column: str) -> None:
        if not available.resolvable(column):
            bag.report(
                "ASSESS202",
                Severity.ERROR,
                f"{type(node).__name__} consumes column {column!r}, which "
                "its input does not produce "
                f"(available: {', '.join(sorted(available.names)) or 'none'})",
                source=SOURCE,
            )

    def visit(node: PlanNode) -> _Columns:
        if isinstance(node, GetNode):
            return _Columns(set(node.query.measures))
        if isinstance(node, AddConstantNode):
            columns = visit(node.child)
            columns.names.add(node.column_name)
            return columns
        if isinstance(node, (JoinNode, RollupJoinNode)):
            left = visit(node.left)
            right = visit(node.right)
            multi = isinstance(node, JoinNode) and node.multi
            if multi:
                # One column set per matching benchmark cell: the suffixed
                # names exist, the bare qualified name does not.
                left.open_prefixes.update(
                    f"{node.alias}.{name}_" for name in right.names
                )
            else:
                left.names.update(
                    f"{node.alias}.{name}" for name in right.names
                )
            return left
        if isinstance(node, PivotNode):
            columns = visit(node.child)
            for renames in node.member_renames.values():
                columns.names.update(renames.values())
            return columns
        if isinstance(node, PredictNode):
            columns = visit(node.child)
            for column in node.input_columns:
                require(node, columns, column)
            columns.names.add(node.out_name)
            return columns
        if isinstance(node, ProjectNode):
            columns = visit(node.child)
            for column in node.columns:
                require(node, columns, column)
            kept = {node.renames.get(c, c) for c in node.columns}
            return _Columns(kept)
        if isinstance(node, AttachPropertyNode):
            columns = visit(node.child)
            columns.names.add(node.out_name)
            return columns
        if isinstance(node, UsingNode):
            columns = visit(node.child)
            for ref in node.expression.references():
                require(node, columns, ref.column_name)
            columns.names.add(node.out_name)
            return columns
        if isinstance(node, LabelNode):
            columns = visit(node.child)
            require(node, columns, node.input_column)
            columns.names.add(node.out_name)
            return columns
        # Unknown node type: assume it passes columns through untouched.
        merged = _Columns(set())
        for child in node.children:
            child_columns = visit(child)
            merged.names.update(child_columns.names)
            merged.open_prefixes.update(child_columns.open_prefixes)
        return merged

    visit(plan.root)


# ----------------------------------------------------------------------
# Step attribution (ASSESS204)
# ----------------------------------------------------------------------
_GET_STEPS = {
    "target": STEP_GET_TARGET,
    "benchmark": STEP_GET_BENCHMARK,
    "combined": STEP_GET_COMBINED,
}


def _expected_step(node: PlanNode) -> Optional[str]:
    if isinstance(node, GetNode):
        return _GET_STEPS.get(node.role)
    if isinstance(node, JoinNode):
        return STEP_GET_COMBINED if node.pushed else STEP_JOIN
    if isinstance(node, PivotNode):
        return STEP_GET_COMBINED if node.pushed else STEP_TRANSFORM
    if isinstance(node, RollupJoinNode):
        return STEP_JOIN
    if isinstance(node, UsingNode):
        return STEP_COMPARE
    if isinstance(node, LabelNode):
        return STEP_LABEL
    if isinstance(
        node, (AddConstantNode, PredictNode, ProjectNode, AttachPropertyNode)
    ):
        return STEP_TRANSFORM
    return None


def _step_pass(plan: Plan, bag: DiagnosticBag) -> None:
    for node in plan.nodes():
        step = getattr(node, "step", None)
        if step not in ALL_STEPS:
            bag.report(
                "ASSESS204",
                Severity.ERROR,
                f"{type(node).__name__} is charged to unknown step "
                f"{step!r} (known: {', '.join(ALL_STEPS)})",
                source=SOURCE,
            )
            continue
        expected = _expected_step(node)
        if expected is not None and step != expected:
            bag.report(
                "ASSESS204",
                Severity.ERROR,
                f"{type(node).__name__} ({node.describe()}) is charged to "
                f"step {step!r}; expected {expected!r}",
                source=SOURCE,
            )


# ----------------------------------------------------------------------
# Pushed-operator shape (ASSESS205)
# ----------------------------------------------------------------------
def _pushed_pass(plan: Plan, bag: DiagnosticBag) -> None:
    for node in plan.nodes():
        if isinstance(node, JoinNode) and node.pushed:
            for side, child in (("left", node.left), ("right", node.right)):
                if not isinstance(child, GetNode):
                    bag.report(
                        "ASSESS205",
                        Severity.ERROR,
                        f"pushed join's {side} child must be a Get node, "
                        f"found {type(child).__name__}; the engine cannot "
                        "evaluate it as one query",
                        source=SOURCE,
                    )
        elif isinstance(node, PivotNode) and node.pushed:
            if not isinstance(node.child, GetNode):
                bag.report(
                    "ASSESS205",
                    Severity.ERROR,
                    "pushed pivot's child must be a Get node, found "
                    f"{type(node.child).__name__}",
                    source=SOURCE,
                )


# ----------------------------------------------------------------------
# Pivot member consistency (ASSESS206)
# ----------------------------------------------------------------------
def _pivot_member_pass(plan: Plan, bag: DiagnosticBag) -> None:
    for node in plan.nodes():
        if not isinstance(node, PivotNode):
            continue
        if not node.member_renames:
            bag.report(
                "ASSESS206",
                Severity.ERROR,
                f"pivot on {node.level!r} renames no members",
                source=SOURCE,
            )
            continue
        if not (node.pushed and isinstance(node.child, GetNode)):
            continue
        predicate = node.child.query.predicate_on(node.level)
        members = predicate.member_set() if predicate is not None else None
        if members is None:
            bag.report(
                "ASSESS206",
                Severity.ERROR,
                f"pushed pivot on {node.level!r} needs the combined get to "
                "constrain that level with an enumerable predicate",
                source=SOURCE,
            )
            continue
        wanted = set(node.member_renames)
        if node.reference is not None:
            wanted.add(node.reference)
        missing = wanted - set(members)
        if missing:
            bag.report(
                "ASSESS206",
                Severity.ERROR,
                f"pivot member{'s' if len(missing) > 1 else ''} "
                f"{', '.join(repr(m) for m in sorted(missing, key=repr))} "
                f"not fetched by the combined get's predicate on "
                f"{node.level!r}",
                source=SOURCE,
            )


# ----------------------------------------------------------------------
# Join partiality vs. the statement group-by set (ASSESS203)
# ----------------------------------------------------------------------
def _expected_join_levels(
    statement: AssessStatement,
) -> Optional[Tuple[str, ...]]:
    benchmark = statement.benchmark
    levels = statement.group_by.levels
    if isinstance(benchmark, SiblingBenchmark):
        return tuple(l for l in levels if l != benchmark.level)
    if isinstance(benchmark, PastBenchmark):
        try:
            temporal = statement.temporal_level
        except Exception:
            return None
        return tuple(l for l in levels if l != temporal)
    return None


def _partiality_pass(
    plan: Plan, statement: AssessStatement, bag: DiagnosticBag
) -> None:
    group_by = set(statement.group_by.levels)
    expected = _expected_join_levels(statement)
    for node in plan.nodes():
        if isinstance(node, JoinNode):
            if node.join_levels is None:
                if expected is not None:
                    bag.report(
                        "ASSESS203",
                        Severity.ERROR,
                        f"a {statement.benchmark.kind} benchmark needs a "
                        f"partial join on {sorted(expected)}, not a natural "
                        "join (the slices differ on the excluded level)",
                        source=SOURCE,
                    )
                continue
            join_levels = set(node.join_levels)
            if not join_levels <= group_by:
                bag.report(
                    "ASSESS203",
                    Severity.ERROR,
                    f"join on {sorted(join_levels - group_by)} outside the "
                    f"group-by set {sorted(group_by)}",
                    source=SOURCE,
                )
            elif expected is not None and join_levels != set(expected):
                bag.report(
                    "ASSESS203",
                    Severity.ERROR,
                    f"partial join on {sorted(join_levels)}; a "
                    f"{statement.benchmark.kind} benchmark joins on "
                    f"{sorted(expected)}",
                    source=SOURCE,
                )
        elif isinstance(node, RollupJoinNode):
            if node.level not in group_by:
                bag.report(
                    "ASSESS203",
                    Severity.ERROR,
                    f"rollup join on level {node.level!r}, which is not in "
                    f"the group-by set {sorted(group_by)}",
                    source=SOURCE,
                )


# ----------------------------------------------------------------------
# Feasibility matrix (ASSESS207)
# ----------------------------------------------------------------------
def _feasibility_pass(
    plan: Plan, statement: AssessStatement, bag: DiagnosticBag
) -> None:
    from ..algebra.planner import feasible_plans

    try:
        feasible = feasible_plans(statement)
    except Exception:
        return
    if plan.name in ("NP", "JOP", "POP") and plan.name not in feasible:
        bag.report(
            "ASSESS207",
            Severity.ERROR,
            f"plan {plan.name} is not feasible for a "
            f"{statement.benchmark.kind} benchmark "
            f"(feasible: {', '.join(feasible)})",
            source=SOURCE,
        )
