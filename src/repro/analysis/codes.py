"""The catalog of stable diagnostic codes.

Every finding of the static analyzer carries one of these codes.  Codes are
grouped by the layer that produces them:

* ``ASSESS0xx`` — parsing/binding failures surfaced as diagnostics;
* ``ASSESS1xx`` — statement passes (semantic checks on the raw AST);
* ``ASSESS2xx`` — plan passes (structural checks on logical plan trees);
* ``ASSESS3xx`` — batch passes (checks over a statement *list*, run by
  ``repro batch`` and :func:`repro.analysis.lint.batch_diagnostics`);
* ``ASSESS4xx`` — observability passes (pre-flight checks of ``repro
  trace`` and :meth:`AssessSession.explain_analyze`); the ``ASSESS41x``
  subrange is the *runtime* telemetry watchdog (``repro history``,
  :mod:`repro.obs.watchdog`), emitted over the persistent query log
  rather than over source text;
* ``ASSESS5xx`` — workload passes (whole-script abstract interpretation
  by :mod:`repro.analysis.flow`, run by ``repro lint --workload`` and
  :meth:`AssessSession.analyze_workload`).

The catalog is the single source of truth: the docs section in
``docs/language.md`` and the tests assert against it, so adding a code here
without documenting it (or vice versa) fails the suite.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from ..core.diagnostics import Severity


class CodeInfo(NamedTuple):
    code: str
    severity: Severity
    title: str


def _info(code: str, severity: Severity, title: str) -> CodeInfo:
    return CodeInfo(code, severity, title)


ALL_CODES: Dict[str, CodeInfo] = {
    info.code: info
    for info in (
        # -- parse/bind (0xx) ------------------------------------------------
        _info("ASSESS001", Severity.ERROR, "statement text does not parse"),
        _info("ASSESS002", Severity.ERROR, "statement fails semantic binding"),
        # -- statement passes (1xx) -----------------------------------------
        _info("ASSESS101", Severity.ERROR, "unknown cube in the with clause"),
        _info("ASSESS102", Severity.ERROR, "unknown level in the by clause"),
        _info("ASSESS103", Severity.ERROR,
              "by clause picks two levels of the same hierarchy"),
        _info("ASSESS104", Severity.ERROR, "unknown measure in the assess clause"),
        _info("ASSESS105", Severity.ERROR, "for predicate on an unknown level"),
        _info("ASSESS106", Severity.WARNING, "duplicate for predicate"),
        _info("ASSESS107", Severity.ERROR,
              "contradictory for predicates (no member satisfies both)"),
        _info("ASSESS110", Severity.ERROR, "external benchmark cube is unknown"),
        _info("ASSESS111", Severity.ERROR,
              "external benchmark cube is not joinable (missing group-by level)"),
        _info("ASSESS112", Severity.ERROR,
              "external benchmark measure is not in the external cube"),
        _info("ASSESS113", Severity.ERROR, "invalid sibling benchmark"),
        _info("ASSESS114", Severity.ERROR, "invalid past benchmark"),
        _info("ASSESS115", Severity.ERROR, "invalid ancestor benchmark"),
        _info("ASSESS120", Severity.ERROR, "unknown function in the using clause"),
        _info("ASSESS121", Severity.ERROR, "wrong number of function arguments"),
        _info("ASSESS122", Severity.ERROR, "division by a constant zero"),
        _info("ASSESS123", Severity.ERROR,
              "benchmark.* reference the benchmark does not provide"),
        _info("ASSESS124", Severity.ERROR,
              "reference is neither a measure nor a bound level property"),
        _info("ASSESS125", Severity.WARNING,
              "benchmark declared but never referenced in the using clause"),
        _info("ASSESS126", Severity.ERROR,
              "unknown qualifier in a measure reference"),
        _info("ASSESS130", Severity.WARNING,
              "label ranges leave gaps (uncovered values get the null label)"),
        _info("ASSESS131", Severity.ERROR, "label ranges overlap"),
        _info("ASSESS132", Severity.ERROR, "invalid label range"),
        _info("ASSESS133", Severity.WARNING,
              "labeling function is not registered"),
        _info("ASSESS134", Severity.ERROR,
              "named function is not a labeling function"),
        # -- plan passes (2xx) ----------------------------------------------
        _info("ASSESS201", Severity.ERROR,
              "plan does not end with the Using -> Label tail"),
        _info("ASSESS202", Severity.ERROR,
              "plan node consumes a column its subtree does not produce"),
        _info("ASSESS203", Severity.ERROR,
              "join partiality inconsistent with the statement group-by set"),
        _info("ASSESS204", Severity.ERROR,
              "plan node charged to an unknown or wrong cost-step bucket"),
        _info("ASSESS205", Severity.ERROR,
              "pushed operator over non-get children"),
        _info("ASSESS206", Severity.ERROR,
              "pivot members inconsistent with the combined get predicate"),
        _info("ASSESS207", Severity.ERROR,
              "plan is not feasible for the statement's benchmark type"),
        # -- batch passes (3xx) ----------------------------------------------
        _info("ASSESS301", Severity.WARNING, "batch contains no statements"),
        _info("ASSESS302", Severity.WARNING, "duplicate statement in batch"),
        # -- observability passes (4xx) ---------------------------------------
        _info("ASSESS401", Severity.ERROR,
              "tracing requested on an unregistered cube"),
        # -- telemetry watchdog advisories (41x) ------------------------------
        _info("ASSESS410", Severity.WARNING,
              "query latency regressed against the stored baseline"),
        _info("ASSESS411", Severity.WARNING,
              "cache-miss storm (hit rate collapsed against the baseline)"),
        _info("ASSESS412", Severity.WARNING,
              "spill pressure (most runs use the bounded-memory spill tier)"),
        _info("ASSESS413", Severity.WARNING,
              "parallel-fallback storm (exactness gate declines the "
              "parallel merge)"),
        # -- workload passes (5xx) --------------------------------------------
        _info("ASSESS500", Severity.ERROR, "malformed workload directive"),
        _info("ASSESS501", Severity.WARNING,
              "workload definition is never used (dead definition)"),
        _info("ASSESS502", Severity.WARNING,
              "workload definition shadows an unused earlier definition"),
        _info("ASSESS503", Severity.INFO,
              "statement repeats an earlier statement of the workload"),
        _info("ASSESS504", Severity.INFO,
              "statement is answerable from an earlier statement's cached result"),
        _info("ASSESS505", Severity.INFO,
              "statements share one fused fact scan"),
        _info("ASSESS506", Severity.WARNING,
              "measure fails the static float-exactness gate "
              "(parallel/fused paths fall back to serial)"),
        _info("ASSESS507", Severity.WARNING,
              "statement's result-cell upper bound exceeds the admission "
              "threshold"),
        _info("ASSESS508", Severity.INFO,
              "statement runs in the bounded-memory spill tier "
              "(partitioned external aggregation, bit-identical)"),
    )
}

STATEMENT_CODES = tuple(c for c in ALL_CODES if c.startswith("ASSESS1"))
PLAN_CODES = tuple(c for c in ALL_CODES if c.startswith("ASSESS2"))
BATCH_CODES = tuple(c for c in ALL_CODES if c.startswith("ASSESS3"))
TRACE_CODES = tuple(c for c in ALL_CODES if c.startswith("ASSESS4"))
WORKLOAD_CODES = tuple(c for c in ALL_CODES if c.startswith("ASSESS5"))


def severity_of(code: str) -> Severity:
    """The default severity of a code (KeyError for unknown codes)."""
    return ALL_CODES[code].severity
