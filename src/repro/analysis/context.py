"""The resolution context shared by all analysis passes.

Passes never resolve names themselves; they ask the context, which wraps

* a schema resolver (the same mapping-or-callable ``parse_statement``
  accepts) — possibly absent, in which case schema-dependent checks skip;
* a :class:`~repro.functions.registry.FunctionRegistry` (defaults to the
  library registry) for using/labels function checks;
* optionally an engine, enabling level-property resolution for unqualified
  using-clause references that are not measures;
* extra labeling names the caller knows about (e.g. session-defined specs).

``strict`` controls how an unresolvable ``with`` cube is reported: an error
(the statement cannot run here) or a mere info note (linting a file whose
cubes are registered elsewhere, e.g. an example script that builds its own
engine).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional, Union

from ..core.schema import CubeSchema
from ..functions.registry import FunctionRegistry, default_registry


class AnalysisContext:
    """Name-resolution services for statement and plan passes."""

    def __init__(
        self,
        schemas: Union[
            Mapping[str, CubeSchema], Callable[[str], CubeSchema], None
        ] = None,
        registry: Optional[FunctionRegistry] = None,
        engine: Optional[Any] = None,
        known_labelings: Iterable[str] = (),
        strict: bool = True,
    ) -> None:
        self.schemas = schemas
        self.registry = registry if registry is not None else default_registry()
        self.engine = engine
        self.known_labelings = {name.lower() for name in known_labelings}
        self.strict = bool(strict)

    @property
    def can_resolve_cubes(self) -> bool:
        """Whether a schema resolver was supplied at all."""
        return self.schemas is not None

    def resolve(self, cube_name: str) -> Optional[CubeSchema]:
        """The schema of a cube, or ``None`` when it cannot be resolved."""
        if self.schemas is None:
            return None
        try:
            if callable(self.schemas):
                return self.schemas(cube_name)
            return self.schemas[cube_name]
        except Exception:
            return None

    def __call__(self, cube_name: str) -> CubeSchema:
        """Act as a schema resolver (the callable flavour ``parse_statement``
        accepts); raises ``KeyError`` for unresolvable cubes."""
        schema = self.resolve(cube_name)
        if schema is None:
            raise KeyError(cube_name)
        return schema

    def knows_labeling(self, name: str) -> bool:
        """Whether a labels-clause name resolves to *something* callable."""
        return name.lower() in self.known_labelings or self.registry.has(name)

    @classmethod
    def for_session(cls, session: Any, strict: bool = True) -> "AnalysisContext":
        """A context bound to an :class:`~repro.api.AssessSession`."""
        return cls(
            schemas=lambda name: session.engine.cube(name).schema,
            registry=session.registry,
            engine=session.engine,
            known_labelings=tuple(session._named_specs),
            strict=strict,
        )

    @classmethod
    def for_engines(
        cls, engines: Iterable[Any], strict: bool = True
    ) -> "AnalysisContext":
        """A context resolving cubes across several engines (the lint CLI
        loads every demo cube so statements over any of them check out)."""
        union = _EngineUnion(engines)

        def resolve(name: str) -> CubeSchema:
            return union.cube(name).schema

        return cls(schemas=resolve, engine=union, strict=strict)


class _EngineUnion:
    """Duck-typed engine over several engines, first match wins."""

    def __init__(self, engines: Iterable[Any]) -> None:
        self.engines = list(engines)

    def _owner(self, source: str) -> Optional[Any]:
        for engine in self.engines:
            try:
                engine.cube(source)
            except Exception:
                continue
            return engine
        return None

    def cube(self, source: str) -> Any:
        owner = self._owner(source)
        if owner is None:
            raise KeyError(source)
        return owner.cube(source)

    def has_property(self, source: str, name: str) -> bool:
        owner = self._owner(source)
        return owner is not None and owner.has_property(source, name)
