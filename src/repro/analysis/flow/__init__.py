"""Whole-workload static analysis (abstract interpretation over scripts).

The flow package interprets an entire ``.assess`` script the way a
session executes it — in order, against one engine — and statically
predicts what the dynamic layers will do: cache derivations
(:mod:`repro.cache`), fused shared scans (:mod:`repro.batch`), the
float-exactness gates of the parallel and fused paths
(:mod:`repro.parallel`, :mod:`repro.engine`), and admission-level
cardinality bounds.  Entry point: :func:`analyze_workload`.
"""

from .analyze import WorkloadAnalyzer, analyze_workload
from .domains import ColumnAbstract, Exactness, Interval, StatsProvider
from .report import (
    WORKLOAD_SCHEMA_VERSION,
    CardinalityBound,
    DerivationEdge,
    ExactnessEntry,
    FusionPrediction,
    StatementInfo,
    WorkloadReport,
    report_results_json,
)
from .workload import BindingEnv, WorkloadItem, classify_chunk, scan_workload

__all__ = [
    "WORKLOAD_SCHEMA_VERSION",
    "BindingEnv",
    "CardinalityBound",
    "ColumnAbstract",
    "DerivationEdge",
    "Exactness",
    "ExactnessEntry",
    "FusionPrediction",
    "Interval",
    "StatementInfo",
    "StatsProvider",
    "WorkloadAnalyzer",
    "WorkloadItem",
    "WorkloadReport",
    "analyze_workload",
    "classify_chunk",
    "report_results_json",
    "scan_workload",
]
