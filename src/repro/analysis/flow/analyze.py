"""The workload analyzer: abstract interpretation over a whole script.

:func:`analyze_workload` interprets a ``.assess`` script top to bottom
the way one session would execute it, without executing anything.  Each
statement is bound and planned exactly as the runtime plans it (same
``build_aggregate_query`` routing, same plan selection), and the
analyzer then *abstractly* runs the layers that decide performance:

* a **binding environment** tracks labeling/view definitions in flow
  order (dead and shadowed definitions, ``ASSESS501/502``);
* a **cache simulation** replays the semantic result cache over the
  statements' pushed gets, claiming a statement warm (``ASSESS504``)
  only when every runtime bail-out of the derivation path is statically
  excluded — the roll-up lattice (:func:`repro.cache.derive.can_derive`)
  plus member roll-up availability, member encodability, the partial-sum
  exactness gate, and a global no-eviction budget guard;
* a **fusion replay** runs the actual :func:`repro.batch.fuse.plan_fusion`
  over the same candidate list ``run_batch`` would build on a fresh
  session (``ASSESS505``), proving a group *exact* only when the fused
  executor's key-space and per-member exactness gates pass statically;
* the **exactness domain** (:class:`ColumnAbstract`) re-derives the
  runtime ``sums_exactly`` gate from catalog stats (``ASSESS506``), and
  interval arithmetic over catalog cardinalities yields sound result-cell
  and cost bounds per statement (``ASSESS507``).

Soundness contract: every claim here ("warm", "fusable-exact",
"parallel-safe", "exact") predicts concrete executor behaviour and is
checked by the differential tests in ``tests/test_workload_soundness.py``.
Whenever a needed statistic, roll-up, or budget proof is unavailable the
analyzer stays silent — unknown is always safe.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...algebra.cost import GROUP_WEIGHT, SCAN_WEIGHT, _scan_key
from ...algebra.plan import GetNode, JoinNode, PivotNode, Plan
from ...algebra.planner import build_plan
from ...batch.fuse import FusionGroup, plan_fusion
from ...cache.derive import QueryMeta, can_derive
from ...cache.fingerprint import Fingerprint, fingerprint_query
from ...core.diagnostics import DiagnosticBag, Span
from ...core.statement import AssessStatement
from ...engine.query import FACT, AggregateQuery
from ...engine.spill import grouping_state_bytes
from ...olap.materialized import REAGGREGATION_OPS
from ...parser.parser import parse_raw
from ..codes import severity_of
from ..context import AnalysisContext
from ..statement_passes import analyze_text
from .domains import ColumnAbstract, Exactness, Interval, StatsProvider
from .report import (
    CardinalityBound,
    DerivationEdge,
    ExactnessEntry,
    FusionPrediction,
    StatementInfo,
    WorkloadReport,
)
from .workload import BindingEnv, WorkloadItem, directive_diagnostics, scan_workload

_MAX_COMBINED_KEY = 2 ** 62
"""Same constant as ``repro.engine.executor._MAX_COMBINED_KEY``: the
fused/parallel key-space overflow threshold."""

_EXACT_COUNT_BOUND = 2.0 ** 53
"""Partial counts re-add exactly while ``max_count * partials < 2**53``."""


class _GetInfo:
    """One pushed get of a statement plan, with its static annotations."""

    __slots__ = ("query", "aggregate", "fingerprint", "meta", "rows_ub",
                 "cells_ub", "role")

    def __init__(
        self,
        query: object,
        aggregate: AggregateQuery,
        fingerprint: Fingerprint,
        meta: QueryMeta,
        rows_ub: Optional[int],
        cells_ub: Optional[int],
        role: str,
    ) -> None:
        self.query = query
        self.aggregate = aggregate
        self.fingerprint = fingerprint
        self.meta = meta
        self.rows_ub = rows_ub
        self.cells_ub = cells_ub
        self.role = role


class _StatementRecord:
    """Pass-1 outcome of one workload item."""

    __slots__ = ("item", "bound", "engine", "gets", "composite",
                 "composite_cells_ub", "poisoned", "parallel_safe")

    def __init__(self, item: WorkloadItem) -> None:
        self.item = item
        self.bound: Optional[AssessStatement] = None
        self.engine: Optional[object] = None
        self.gets: List[_GetInfo] = []
        self.composite = False
        # Extra cache occupancy of pushed composite (join/pivot) results,
        # None when unbounded (disables the no-eviction proof).
        self.composite_cells_ub: Optional[int] = 0
        self.poisoned = False
        self.parallel_safe: Optional[bool] = None


class _SimEntry:
    """One simulated cache entry (a stored get result)."""

    __slots__ = ("aggregate", "meta", "rows_ub", "statement")

    def __init__(
        self,
        aggregate: AggregateQuery,
        meta: QueryMeta,
        rows_ub: Optional[int],
        statement: int,
    ) -> None:
        self.aggregate = aggregate
        self.meta = meta
        self.rows_ub = rows_ub
        self.statement = statement


class WorkloadAnalyzer:
    """One analysis run over one workload script."""

    def __init__(
        self,
        context: AnalysisContext,
        plan_name: str = "best",
        admission_cells: Optional[int] = None,
    ) -> None:
        # Work on a copy: directives mutate the known-labelings set.
        self.context = AnalysisContext(
            schemas=context.schemas,
            registry=context.registry,
            engine=context.engine,
            known_labelings=context.known_labelings,
            strict=context.strict,
        )
        self.plan_name = plan_name
        self.admission_cells = admission_cells
        self._stats: Dict[int, StatsProvider] = {}

    # -- engine plumbing ------------------------------------------------
    def _engines(self) -> List[object]:
        engine = self.context.engine
        if engine is None:
            return []
        inner = getattr(engine, "engines", None)
        if inner is not None:
            return list(inner)
        return [engine]

    def _engine_for(self, source: str) -> Optional[object]:
        for engine in self._engines():
            try:
                if engine.has_cube(source):  # type: ignore[attr-defined]
                    return engine
            except Exception:
                continue
        return None

    def _stats_for(self, engine: object) -> StatsProvider:
        key = id(engine)
        if key not in self._stats:
            self._stats[key] = StatsProvider(engine)
        return self._stats[key]

    # -- per-statement planning ----------------------------------------
    def _plan_statement(
        self, record: _StatementRecord, statement: AssessStatement, engine: object
    ) -> None:
        """Plan one bound statement and annotate its pushed gets."""
        try:
            plan: Plan = build_plan(statement, engine, self.plan_name)  # type: ignore[arg-type]
        except Exception:
            return
        stats = self._stats_for(engine)
        gets: List[GetNode] = []
        composites: List[object] = []
        for node in plan.nodes():
            if isinstance(node, GetNode):
                gets.append(node)
            elif isinstance(node, (JoinNode, PivotNode)) and node.pushed:
                composites.append(node)
        record.composite = bool(composites)
        for node in gets:
            try:
                aggregate = engine.build_aggregate_query(node.query)  # type: ignore[attr-defined]
            except Exception:
                record.gets = []
                record.composite_cells_ub = None
                return
            meta = QueryMeta(node.query, frozenset())
            rows_ub = self._rows_ub(engine, stats, node.query)
            cells_ub: Optional[int] = None
            if rows_ub is not None:
                cells_ub = rows_ub * max(self._width(meta), 1)
            record.gets.append(
                _GetInfo(
                    node.query, aggregate, fingerprint_query(aggregate),
                    meta, rows_ub, cells_ub, node.role,
                )
            )
        record.composite_cells_ub = self._composite_cells_ub(
            composites, {id(node): info for node, info in zip(gets, record.gets)}
        )

    @staticmethod
    def _width(meta: QueryMeta) -> int:
        return len(meta.query.group_by.levels) + len(meta.measure_names)

    def _rows_ub(
        self, engine: object, stats: StatsProvider, query: object
    ) -> Optional[int]:
        """Sound upper bound on a get's result rows."""
        try:
            star = engine.cube(query.source).star  # type: ignore[attr-defined]
        except Exception:
            return None
        fact_rows = stats.fact_rows(star.fact_table)
        if fact_rows is None:
            return None
        bound = float(fact_rows)
        product = 1.0
        for level in query.group_by.levels:  # type: ignore[attr-defined]
            level_ub = float("inf")
            try:
                table, column = star.column_for_level(level)
            except Exception:
                return None
            if table == FACT:
                table = star.fact_table
            cardinality = stats.cardinality(table, column)
            if cardinality is not None:
                level_ub = float(cardinality)
            else:
                # No dictionary statistics: a persisted zone map still
                # bounds the distinct count (sum of per-zone distincts).
                distinct_bound = stats.distinct_bound(table, column)
                if distinct_bound is not None:
                    level_ub = float(distinct_bound)
            predicate = query.predicate_on(level)  # type: ignore[attr-defined]
            if predicate is not None:
                members = predicate.member_set()
                if members is not None:
                    level_ub = min(level_ub, float(len(members)))
                # Zone-map value ranges can prove a predicate matches no
                # stored row at all — the bound collapses (clamped to 1).
                if stats.predicate_feasible(table, column, predicate) is False:
                    level_ub = 0.0
            product *= level_ub
        bound = min(bound, product)
        if bound == float("inf"):
            return None
        return max(int(bound), 1)

    def _composite_cells_ub(
        self, composites: Sequence[object], info_of: Dict[int, _GetInfo]
    ) -> Optional[int]:
        """Cache occupancy bound of pushed composite (join/pivot) results."""
        total = 0
        for node in composites:
            if isinstance(node, JoinNode):
                left = info_of.get(id(node.left))
                right = info_of.get(id(node.right))
                if (
                    left is None or right is None
                    or left.rows_ub is None or right.rows_ub is None
                ):
                    return None
                # Joining on a side's full group-by key bounds result rows
                # by the *other* side (grouped results are key-distinct).
                join_levels = set(
                    node.join_levels
                    if node.join_levels is not None
                    else left.meta.query.group_by.levels
                )
                rows = left.rows_ub * right.rows_ub
                if join_levels >= set(right.meta.query.group_by.levels):
                    rows = min(rows, left.rows_ub)
                if join_levels >= set(left.meta.query.group_by.levels):
                    rows = min(rows, right.rows_ub)
                width = self._width(left.meta) + self._width(right.meta)
                total += rows * width
            elif isinstance(node, PivotNode):
                child = info_of.get(id(node.child))
                if child is None or child.rows_ub is None:
                    return None
                # Pivot keeps (a slice of) the child rows and appends one
                # renamed measure column per sibling member.
                width = self._width(child.meta) + sum(
                    len(renames) for renames in node.member_renames.values()
                )
                total += child.rows_ub * width
            else:  # pragma: no cover - defensive
                return None
        return total

    # -- derivation certainty ------------------------------------------
    def _rollup_certain(
        self, engine: object, stats: StatsProvider, source: str,
        fine: str, coarse: str,
    ) -> bool:
        """The runtime member roll-up provably succeeds and is total."""
        try:
            mapping = engine.member_rollup(source, fine, coarse)  # type: ignore[attr-defined]
        except Exception:
            return False
        if mapping is None:
            return False
        try:
            star = engine.cube(source).star  # type: ignore[attr-defined]
            fine_table, fine_column = star.column_for_level(fine)
            coarse_table, coarse_column = star.column_for_level(coarse)
        except Exception:
            return False
        if fine_table == FACT:
            fine_table = star.fact_table
        if coarse_table == FACT:
            coarse_table = star.fact_table
        fine_members = stats.members(fine_table, fine_column)
        coarse_members = stats.members(coarse_table, coarse_column)
        if fine_members is None or coarse_members is None:
            return False
        try:
            return fine_members <= set(mapping.keys()) and (
                set(mapping.values()) <= coarse_members
            )
        except TypeError:
            return False

    def _derivation_certain(
        self, engine: object, stats: StatsProvider,
        target: QueryMeta, entry: _SimEntry,
    ) -> bool:
        """Statically exclude every ``derive_result`` runtime bail-out."""
        if entry.rows_ub is None:
            return False
        source = target.source
        schema = target.query.schema
        entry_gb = entry.meta.query.group_by
        target_gb = target.query.group_by
        try:
            star = engine.cube(source).star  # type: ignore[attr-defined]
        except Exception:
            return False
        fact_rows = stats.fact_rows(star.fact_table)
        if fact_rows is None:
            return False

        # Exactness gate on cached partial sums/counts.
        if set(entry_gb.levels) != set(target_gb.levels):
            for name in target.measure_names:
                op = schema.measure(name).op
                if REAGGREGATION_OPS.get(op) != "sum":
                    continue
                if op == "count":
                    if float(fact_rows) * entry.rows_ub >= _EXACT_COUNT_BOUND:
                        return False
                    continue
                try:
                    column = star.column_for_measure(name)
                except Exception:
                    return False
                abstract = stats.column_abstract(star.fact_table, column)
                if abstract is None or not abstract.resum_exact(entry.rows_ub):
                    return False

        # Member roll-ups for residual predicates and the target group-by
        # must provably build and cover every stored member.
        entry_predicates = tuple(entry.meta.query.predicates)
        needed: List[str] = list(target_gb.levels)
        for predicate in target.query.predicates:
            if any(p == predicate for p in entry_predicates):
                continue
            needed.append(predicate.level)
        for level in needed:
            try:
                hierarchy = schema.hierarchy_of_level(level)
                entry_level = entry_gb.level_for_hierarchy(hierarchy.name)
            except Exception:
                return False
            if entry_level == level:
                continue
            if not self._rollup_certain(engine, stats, source, entry_level, level):
                return False

        # Target coordinates must encode (sort) cleanly after roll-up.
        for level in target_gb.levels:
            try:
                table, column = star.column_for_level(level)
            except Exception:
                return False
            if table == FACT:
                table = star.fact_table
            if not stats.encodable(table, column):
                return False
        return True

    # -- exactness / parallel safety -----------------------------------
    def _measure_abstract(
        self, engine: object, stats: StatsProvider, aggregate: AggregateQuery,
        column: str,
    ) -> Optional[ColumnAbstract]:
        return stats.column_abstract(aggregate.fact, column)

    def _aggregate_key_space(
        self, engine: object, stats: StatsProvider, aggregate: AggregateQuery,
    ) -> Optional[int]:
        """The parallel executor's group-by key space, or ``None`` unknown."""
        key_space = 1
        for gb in aggregate.group_by:
            table = gb.table
            if table in (FACT, aggregate.fact):
                table = aggregate.fact
            cardinality = stats.cardinality(table, gb.column)
            if cardinality is None:
                return None
            key_space *= max(cardinality, 1)
        return key_space

    def _parallel_safe(
        self, engine: object, stats: StatsProvider, record: _StatementRecord
    ) -> Optional[bool]:
        """Every aggregate provably avoids a parallel-path fallback."""
        if not record.gets:
            return None
        for info in record.gets:
            key_space = self._aggregate_key_space(engine, stats, info.aggregate)
            if key_space is None:
                return None
            if key_space >= _MAX_COMBINED_KEY:
                return False
            for agg in info.aggregate.aggregates:
                if agg.op not in ("sum", "avg"):
                    continue
                abstract = self._measure_abstract(
                    engine, stats, info.aggregate, agg.column
                )
                if abstract is None:
                    return None
                if not abstract.sum_exact():
                    return False
        return True

    # -- fusion ---------------------------------------------------------
    def _fusion_key_space(
        self, engine: object, stats: StatsProvider, group: FusionGroup
    ) -> Optional[int]:
        """Replicates the fused executor's finest shared key space."""
        fact_name = group.members[0].query.fact

        def column_key(table: str) -> str:
            return FACT if table in (FACT, fact_name) else table

        finest: List[Tuple[str, str]] = []
        seen: Set[Tuple[str, str]] = set()
        for member in group.members:
            for gb in member.query.group_by:
                key = (column_key(gb.table), gb.column)
                if key not in seen:
                    seen.add(key)
                    finest.append(key)
            for cp in member.residual:
                key = (column_key(cp.table), cp.column)
                if key not in seen:
                    seen.add(key)
                    finest.append(key)
        key_space = 1
        for table, column in finest:
            physical = fact_name if table == FACT else table
            cardinality = stats.cardinality(physical, column)
            if cardinality is None:
                return None
            key_space *= max(cardinality, 1)
        return key_space

    def _member_safe(
        self, engine: object, stats: StatsProvider, member_query: AggregateQuery
    ) -> Optional[bool]:
        """The fused path provably serves this member without fallback."""
        for agg in member_query.aggregates:
            if agg.op == "avg":
                return False
            if agg.op == "sum":
                abstract = stats.column_abstract(member_query.fact, agg.column)
                if abstract is None:
                    return None
                if not abstract.sum_exact():
                    return False
        return True

    # ==================================================================
    def analyze(self, text: str, origin: str = "<workload>") -> WorkloadReport:
        items = scan_workload(text)
        report = WorkloadReport(origin)
        env = BindingEnv()
        bags: Dict[int, DiagnosticBag] = {}
        records: List[_StatementRecord] = []
        poisoned_cubes: Set[str] = set()
        seen_texts: Dict[str, int] = {}

        # -- pass 1: flow-ordered binding, planning, def-use ------------
        for item in items:
            record = _StatementRecord(item)
            records.append(record)
            if item.kind == "labeling":
                bags[item.index] = DiagnosticBag()
                env.define_labeling(item)
                self.context.known_labelings.add(item.name.lower())
                continue
            if item.kind == "view":
                bags[item.index] = DiagnosticBag()
                env.define_view(item)
                poisoned_cubes.add(item.cube.upper())
                continue
            if item.kind == "invalid":
                bags[item.index] = directive_diagnostics(item)
                continue

            bound, bag = analyze_text(item.text, self.context)
            bags[item.index] = bag
            record.bound = bound

            normalized = " ".join(item.text.split()).lower()
            earlier = seen_texts.get(normalized)
            if earlier is not None:
                bag.report(
                    "ASSESS503", severity_of("ASSESS503"),
                    f"statement repeats item {earlier + 1} verbatim "
                    "(served by the CSE memo / exact cache hit)",
                    span=Span.from_text(item.text, 0),
                    source="workload",
                )
            else:
                seen_texts[normalized] = item.index

            try:
                raw = parse_raw(item.text)
            except Exception:
                raw = None
            if raw is not None and raw.labels is not None:
                if raw.labels.kind == "named":
                    env.use_labeling(raw.labels.name)

            if bound is None:
                continue
            engine = self._engine_for(bound.source)
            record.engine = engine
            record.poisoned = bound.source.upper() in poisoned_cubes
            if engine is None:
                continue
            self._plan_statement(record, bound, engine)
            for info in record.gets:
                env.use_views(
                    info.meta.source, tuple(info.meta.query.group_by.levels)
                )

        # A view defined *anywhere* invalidates static routing claims for
        # its cube across the whole script (position-independent, sound).
        if poisoned_cubes:
            for record in records:
                if record.bound is not None and (
                    record.bound.source.upper() in poisoned_cubes
                ):
                    record.poisoned = True

        # -- no-eviction budget proof per engine ------------------------
        claims_ok = self._claims_ok(records)

        # -- pass 2: cache simulation (derivability) --------------------
        self._simulate_cache(records, bags, claims_ok, report)

        # -- pass 3: fusion replay --------------------------------------
        self._predict_fusion(records, bags, report)

        # -- pass 4: exactness, parallel safety, bounds -----------------
        self._exactness_and_bounds(records, bags, report)

        # -- def-use summary --------------------------------------------
        env.report_into(bags)

        for record in records:
            item = record.item
            bag = bags.get(item.index, DiagnosticBag())
            kind = item.kind
            source = record.bound.source if record.bound is not None else ""
            group_by: Tuple[str, ...] = ()
            measures: Tuple[str, ...] = ()
            if record.bound is not None:
                group_by = tuple(record.bound.group_by.levels)
                measures = (record.bound.measure,)
            report.statements.append(
                StatementInfo(
                    item.index, kind, item.text, bag,
                    source=source, group_by=group_by, measures=measures,
                    plan_name=self.plan_name if record.gets else "",
                    composite=record.composite,
                    parallel_safe=record.parallel_safe,
                )
            )
        return report

    # ------------------------------------------------------------------
    def _claims_ok(self, records: Sequence[_StatementRecord]) -> Dict[int, bool]:
        """Per-engine no-eviction proof: every stored result certainly
        stays cached for the whole workload."""
        totals: Dict[int, Optional[int]] = {}
        for record in records:
            if record.engine is None or not record.gets:
                continue
            key = id(record.engine)
            total = totals.get(key, 0)
            if total is None:
                continue
            seen: Set[Fingerprint] = set()
            for info in record.gets:
                if info.fingerprint in seen:
                    continue
                seen.add(info.fingerprint)
                if info.cells_ub is None:
                    total = None
                    break
                total += info.cells_ub
            if total is not None:
                if record.composite_cells_ub is None:
                    total = None
                else:
                    total += record.composite_cells_ub
            totals[key] = total

        verdicts: Dict[int, bool] = {}
        for key, total in totals.items():
            verdicts[key] = total is not None
        for record in records:
            if record.engine is None:
                continue
            key = id(record.engine)
            if not verdicts.get(key, False):
                continue
            cache = getattr(record.engine, "result_cache", None)
            total = totals[key]
            if (
                cache is None
                or not getattr(cache, "enabled", False)
                or total is None
                or total > getattr(cache, "cell_budget", 0)
            ):
                verdicts[key] = False
        return verdicts

    def _simulate_cache(
        self,
        records: Sequence[_StatementRecord],
        bags: Dict[int, DiagnosticBag],
        claims_ok: Dict[int, bool],
        report: WorkloadReport,
    ) -> None:
        sims: Dict[int, Tuple[Dict[Fingerprint, _SimEntry], List[_SimEntry]]] = {}
        for record in records:
            engine = record.engine
            if engine is None or not record.gets:
                continue
            key = id(engine)
            by_fp, entries = sims.setdefault(key, ({}, []))
            stats = self._stats_for(engine)
            warm = bool(record.gets) and not record.poisoned and claims_ok.get(
                key, False
            )
            edges: List[Tuple[int, str, str]] = []
            for info in record.gets:
                hit = by_fp.get(info.fingerprint)
                if hit is not None and hit.aggregate == info.aggregate:
                    edges.append((hit.statement, "exact", "same pushed get"))
                    continue
                derived_from: Optional[_SimEntry] = None
                if warm:
                    for entry in entries:
                        if entry.meta.source != info.meta.source:
                            continue
                        if not can_derive(info.meta, entry.meta):
                            continue
                        if self._derivation_certain(engine, stats, info.meta, entry):
                            derived_from = entry
                            break
                if derived_from is None:
                    warm = False
                else:
                    entry_gb = derived_from.meta.query.group_by
                    edges.append(
                        (
                            derived_from.statement, "derive",
                            f"rolls up from by ({', '.join(entry_gb.levels)})",
                        )
                    )
            if warm and edges:
                seen_edges: Set[Tuple[int, int, str]] = set()
                for source_index, kind, reason in edges:
                    key_edge = (record.item.index, source_index, kind)
                    if key_edge in seen_edges or source_index == record.item.index:
                        continue
                    seen_edges.add(key_edge)
                    report.derivations.append(
                        DerivationEdge(record.item.index, source_index, kind, reason)
                    )
                for info in record.gets:
                    report.warm_fingerprints.add(info.fingerprint)
                sources = sorted(
                    {s + 1 for s, _, _ in edges if s != record.item.index}
                )
                if sources:
                    bags[record.item.index].report(
                        "ASSESS504", severity_of("ASSESS504"),
                        "statement is answerable from the cached results of "
                        f"item{'s' if len(sources) > 1 else ''} "
                        f"{', '.join(str(s) for s in sources)} "
                        "(no fact scan when run in order)",
                        span=Span.from_text(record.item.text, 0),
                        source="workload",
                    )
            # Every executed get ends up cached (store or pre-existing).
            for info in record.gets:
                if info.fingerprint not in by_fp:
                    entry = _SimEntry(
                        info.aggregate, info.meta, info.rows_ub,
                        record.item.index,
                    )
                    by_fp[info.fingerprint] = entry
                    entries.append(entry)

    def _predict_fusion(
        self,
        records: Sequence[_StatementRecord],
        bags: Dict[int, DiagnosticBag],
        report: WorkloadReport,
    ) -> None:
        candidates: Dict[int, List[AggregateQuery]] = {}
        owners: Dict[int, Dict[Fingerprint, List[int]]] = {}
        engines: Dict[int, object] = {}
        for record in records:
            engine = record.engine
            if engine is None or not record.gets or record.poisoned:
                continue
            if bags[record.item.index].has_errors:
                continue
            key = id(engine)
            engines[key] = engine
            queries = candidates.setdefault(key, [])
            owner_map = owners.setdefault(key, {})
            for info in record.gets:
                queries.append(info.aggregate)
                owner_map.setdefault(info.fingerprint, []).append(
                    record.item.index
                )
        for key, queries in candidates.items():
            engine = engines[key]
            stats = self._stats_for(engine)
            for group in plan_fusion(queries):
                statements: Set[int] = set()
                for member in group.members:
                    statements.update(owners[key].get(member.fingerprint, ()))
                if len(statements) < 2:
                    continue
                key_space = self._fusion_key_space(engine, stats, group)
                member_safety: List[bool] = []
                exact = key_space is not None and key_space < _MAX_COMBINED_KEY
                for member in group.members:
                    safe = self._member_safe(engine, stats, member.query)
                    member_safety.append(bool(safe))
                    if safe is not True:
                        exact = False
                scan = tuple(
                    f"{cp.table}.{cp.column} {cp.predicate!r}"
                    for cp in group.scan_where
                )
                prediction = FusionPrediction(
                    tuple(sorted(statements)), scan, key_space, exact,
                    tuple(member_safety),
                )
                report.fusions.append(prediction)
                for member in group.members:
                    report.fusable_scan_keys.add(_scan_key(member.query))
                ordered = ", ".join(str(s + 1) for s in sorted(statements))
                for index in sorted(statements):
                    bags[index].report(
                        "ASSESS505", severity_of("ASSESS505"),
                        f"items {ordered} share one fused fact scan in a "
                        f"batch ({prediction.verdict})",
                        span=Span.from_text(records[index].item.text, 0),
                        source="workload",
                    )

    def _exactness_and_bounds(
        self,
        records: Sequence[_StatementRecord],
        bags: Dict[int, DiagnosticBag],
        report: WorkloadReport,
    ) -> None:
        seen_measures: Set[Tuple[str, str, str]] = set()
        threshold: Optional[int] = self.admission_cells
        for record in records:
            engine = record.engine
            if engine is None or not record.gets:
                continue
            stats = self._stats_for(engine)
            if not record.poisoned:
                record.parallel_safe = self._parallel_safe(engine, stats, record)
            inexact: List[str] = []
            for info in record.gets:
                for agg in info.aggregate.aggregates:
                    if agg.op not in ("sum", "avg"):
                        continue
                    abstract = stats.column_abstract(
                        info.aggregate.fact, agg.column
                    )
                    if abstract is None:
                        verdict = Exactness.UNKNOWN
                        detail = "column statistics unavailable"
                    else:
                        verdict = abstract.verdict()
                        detail = (
                            f"max|x| = {abstract.max_abs:g} over "
                            f"{abstract.rows} rows"
                            + ("" if abstract.integral else "; non-integral")
                        )
                    measure_key = (info.meta.source, agg.alias, agg.op)
                    if measure_key not in seen_measures:
                        seen_measures.add(measure_key)
                        report.exactness.append(
                            ExactnessEntry(
                                info.meta.source, agg.alias, agg.op,
                                verdict, detail,
                            )
                        )
                    if verdict is Exactness.INEXACT and agg.alias not in inexact:
                        inexact.append(agg.alias)
            if inexact:
                bags[record.item.index].report(
                    "ASSESS506", severity_of("ASSESS506"),
                    f"measure{'s' if len(inexact) > 1 else ''} "
                    f"{', '.join(inexact)} fail"
                    f"{'' if len(inexact) > 1 else 's'} the static "
                    "float-exactness gate; parallel and fused paths fall "
                    "back to serial",
                    span=Span.from_text(record.item.text, 0),
                    source="workload",
                )

            # Cardinality / cost interval bounds per statement.
            target = next(
                (info for info in record.gets if info.role == "target"),
                record.gets[0],
            )
            cells_hi = (
                float(target.cells_ub)
                if target.cells_ub is not None else float("inf")
            )
            cost_hi = 0.0
            for info in record.gets:
                fact_rows = stats.fact_rows(info.aggregate.fact)
                if fact_rows is None or info.cells_ub is None:
                    cost_hi = float("inf")
                    break
                cost_hi += (
                    SCAN_WEIGHT * fact_rows + GROUP_WEIGHT * info.cells_ub
                )
            cap = threshold
            if cap is None:
                cache = getattr(engine, "result_cache", None)
                cap = getattr(cache, "cell_budget", None)
            warn = cap is not None and cells_hi > cap
            report.bounds.append(
                CardinalityBound(
                    record.item.index,
                    Interval(0.0, cells_hi),
                    Interval(0.0, cost_hi),
                    bool(warn),
                )
            )
            if warn:
                bags[record.item.index].report(
                    "ASSESS507", severity_of("ASSESS507"),
                    f"result-cell upper bound {cells_hi:,.0f} exceeds the "
                    f"admission threshold {cap:,}",
                    span=Span.from_text(record.item.text, 0),
                    hint="coarsen the by clause or add selective for "
                    "predicates before running this interactively",
                    source="workload",
                )

            # Bounded-memory admission: predict the spill-tier routing.
            self._spill_verdict(record, stats, bags)

    def _spill_verdict(
        self,
        record: _StatementRecord,
        stats: StatsProvider,
        bags: Dict[int, DiagnosticBag],
    ) -> None:
        """Emit ``ASSESS508`` when the executor would provably route the
        statement's target get through the bounded-memory spill tier.

        Mirrors ``EngineExecutor._spill_admits`` — the pessimistic
        grouping-state estimate against the executor's memory budget —
        plus the float-exactness gate the spill lowering re-checks at
        runtime.  Soundness convention: any missing statistic (unknown
        budget, unabstractable measure column) keeps the analyzer
        silent, never optimistic.
        """
        engine = record.engine
        executor = getattr(engine, "executor", None)
        budget = getattr(executor, "memory_budget", None)
        if budget is None or not record.gets:
            return
        target = next(
            (info for info in record.gets if info.role == "target"),
            record.gets[0],
        )
        aggregate = target.aggregate
        fact_rows = stats.fact_rows(aggregate.fact)
        if fact_rows is None:
            return
        estimate = grouping_state_bytes(
            fact_rows, 0, len(aggregate.aggregates)
        )
        if estimate <= budget:
            return
        for agg in aggregate.aggregates:
            if agg.op not in ("sum", "avg"):
                continue
            abstract = stats.column_abstract(aggregate.fact, agg.column)
            if abstract is None or not abstract.sum_exact():
                # Unknown or inexact measures make the lowering fall
                # back to serial in-RAM; no spill claim.
                return
        bags[record.item.index].report(
            "ASSESS508", severity_of("ASSESS508"),
            f"grouping-state estimate {estimate:,} B exceeds the "
            f"{budget:,} B memory budget; the fact pass runs in the "
            "bounded-memory spill tier (partitioned external "
            "aggregation, bit-identical to in-RAM)",
            span=Span.from_text(record.item.text, 0),
            source="workload",
        )


def analyze_workload(
    text: str,
    context: Optional[AnalysisContext] = None,
    session: Optional[object] = None,
    origin: str = "<workload>",
    plan_name: str = "best",
    admission_cells: Optional[int] = None,
) -> WorkloadReport:
    """Run the whole-workload static analysis over script text.

    Exactly one of ``context`` / ``session`` should be given; with
    neither, the analysis runs schema-less (parse-level diagnostics
    only).  The returned :class:`WorkloadReport` carries per-item
    diagnostic bags plus the sharing plan, derivation edges, exactness
    verdicts, and cardinality bounds.
    """
    if context is None:
        if session is not None:
            context = AnalysisContext.for_session(session)
        else:
            context = AnalysisContext(schemas=None)
    analyzer = WorkloadAnalyzer(
        context, plan_name=plan_name, admission_cells=admission_cells
    )
    return analyzer.analyze(text, origin=origin)
