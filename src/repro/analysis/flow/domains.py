"""Abstract domains of the workload analyzer.

The flow analysis never executes a statement, so every runtime gate it
wants to predict must be re-derived from *catalog statistics* — compact
abstractions of stored columns — instead of the concrete values the
executor sees.  Three domains cover the gates:

* :class:`ColumnAbstract` — the float-exactness domain.  A measure
  column is abstracted to ``(finite, integral, max_abs, rows)``; that
  quadruple decides :func:`repro.engine.kernels.sums_exactly` for the
  full column *and* bounds it for every masked subset and for cached
  partial sums, so one abstraction soundly answers the serial, parallel,
  fused, and derivation exactness gates.

* :class:`Interval` — cardinality/cost bounds.  Result cardinalities
  are bracketed by ``[0, min(fact_rows, ∏ level cardinalities)]``;
  arithmetic on intervals stays sound under the usual rules.

* :class:`StatsProvider` — the catalog reader that builds and caches the
  abstractions (per engine, per table/column), including the dictionary
  cardinalities the fused key-space overflow check multiplies.

Soundness convention: every predicate of these domains is *definite* —
``sum_exact() is True`` means the concrete gate provably passes; any
doubt (non-numeric column, missing table) must surface as ``False`` /
``UNKNOWN`` at the caller, never as an optimistic claim.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

_EXACT_SUM_BOUND = 2.0 ** 53
"""Integer-valued float64 additions are exact while every intermediate
sum stays strictly below 2**53 — the same constant as
:func:`repro.engine.kernels.sums_exactly`."""


class Exactness(enum.Enum):
    """Three-valued verdict of the float-exactness domain."""

    EXACT = "exact"
    INEXACT = "inexact"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


class ColumnAbstract:
    """The exactness abstraction of one stored numeric column."""

    __slots__ = ("finite", "integral", "max_abs", "rows")

    def __init__(
        self, finite: bool, integral: bool, max_abs: float, rows: int
    ) -> None:
        self.finite = finite
        self.integral = integral
        self.max_abs = max_abs
        self.rows = rows

    @classmethod
    def of(cls, values: np.ndarray) -> "ColumnAbstract":
        """Abstract a concrete column (one catalog scan, then cached)."""
        floats = np.asarray(values, dtype=np.float64)
        if len(floats) == 0:
            return cls(True, True, 0.0, 0)
        finite = bool(np.all(np.isfinite(floats)))
        integral = finite and not bool(np.any(floats != np.trunc(floats)))
        max_abs = float(np.abs(floats).max()) if finite else float("inf")
        return cls(finite, integral, max_abs, len(floats))

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------
    def sum_exact(self) -> bool:
        """Statically proves ``sums_exactly(column)`` — and therefore
        ``sums_exactly(column[mask])`` for **every** row mask, since a
        subset can only shrink both ``max_abs`` and ``len``."""
        if self.rows == 0:
            return True
        return (
            self.finite
            and self.integral
            and self.max_abs * self.rows < _EXACT_SUM_BOUND
        )

    def resum_exact(self, partial_count: int) -> bool:
        """Statically proves ``sums_exactly(partial_sums)`` for any array
        of at most ``partial_count`` partial sums of disjoint row subsets.

        Each partial sum is integral (sum of integrals) and bounded in
        magnitude by ``max_abs * rows``, so the runtime gate's bound
        ``max(|partials|) * len(partials)`` is dominated by
        ``max_abs * rows * partial_count``.
        """
        if self.rows == 0:
            return True
        return (
            self.finite
            and self.integral
            and self.max_abs * self.rows * max(partial_count, 1)
            < _EXACT_SUM_BOUND
        )

    def verdict(self) -> Exactness:
        """The full-column gate as a three-valued verdict."""
        return Exactness.EXACT if self.sum_exact() else Exactness.INEXACT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnAbstract(finite={self.finite}, integral={self.integral}, "
            f"max_abs={self.max_abs}, rows={self.rows})"
        )


class Interval:
    """A sound ``[lo, hi]`` bound on a non-negative quantity."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float) -> None:
        self.lo = float(lo)
        self.hi = float(hi)

    def __mul__(self, other: "Interval") -> "Interval":
        return Interval(self.lo * other.lo, self.hi * other.hi)

    def scale(self, factor: float) -> "Interval":
        return Interval(self.lo * factor, self.hi * factor)

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def cap(self, ceiling: float) -> "Interval":
        return Interval(min(self.lo, ceiling), min(self.hi, ceiling))

    def to_json(self) -> Dict[str, float]:
        return {"lo": self.lo, "hi": self.hi}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo:g}, {self.hi:g}]"


class StatsProvider:
    """Catalog-statistics reader shared by one analysis run.

    Everything is cached per ``(table, column)``: the exactness
    abstraction of measure columns, dictionary cardinalities of level
    columns (the very numbers the executor's key-space overflow check
    multiplies), and whether a level's member domain encodes cleanly
    (uniform member type — mixed types make ``encode_column`` raise at
    runtime, so derivations over them stay UNKNOWN).
    """

    def __init__(self, engine: object) -> None:
        self.engine = engine
        self._columns: Dict[Tuple[str, str], Optional[ColumnAbstract]] = {}
        self._cardinalities: Dict[Tuple[str, str], Optional[int]] = {}
        self._encodable: Dict[Tuple[str, str], bool] = {}
        self._members: Dict[Tuple[str, str], Optional[FrozenSet[object]]] = {}
        self._zone_maps: Dict[Tuple[str, str], Optional[object]] = {}

    # ------------------------------------------------------------------
    def _table(self, table_name: str) -> Optional[object]:
        try:
            return self.engine.catalog.table(table_name)  # type: ignore[attr-defined]
        except Exception:
            return None

    def column_abstract(
        self, table_name: str, column: str
    ) -> Optional[ColumnAbstract]:
        """The exactness abstraction, or ``None`` when unavailable."""
        key = (table_name, column)
        if key not in self._columns:
            abstract: Optional[ColumnAbstract] = None
            table = self._table(table_name)
            if table is not None:
                try:
                    abstract = ColumnAbstract.of(table.column(column))  # type: ignore[attr-defined]
                except Exception:
                    abstract = None
            self._columns[key] = abstract
        return self._columns[key]

    def cardinality(self, table_name: str, column: str) -> Optional[int]:
        """Dictionary cardinality of a stored column (``None`` unknown)."""
        key = (table_name, column)
        if key not in self._cardinalities:
            cardinality: Optional[int] = None
            table = self._table(table_name)
            if table is not None:
                try:
                    _, cardinality = table.dictionary(column)  # type: ignore[attr-defined]
                except Exception:
                    cardinality = None
            self._cardinalities[key] = cardinality
        return self._cardinalities[key]

    def encodable(self, table_name: str, column: str) -> bool:
        """Whether the column's members definitely encode (sort) cleanly."""
        key = (table_name, column)
        if key not in self._encodable:
            ok = False
            table = self._table(table_name)
            if table is not None:
                try:
                    np.unique(table.column(column))  # type: ignore[attr-defined]
                    ok = True
                except Exception:
                    ok = False
            self._encodable[key] = ok
        return self._encodable[key]

    def members(self, table_name: str, column: str) -> Optional[FrozenSet[object]]:
        """The distinct stored members of a column (``None`` unknown)."""
        key = (table_name, column)
        if key not in self._members:
            members: Optional[FrozenSet[object]] = None
            table = self._table(table_name)
            if table is not None:
                try:
                    members = frozenset(table.column(column))  # type: ignore[attr-defined]
                except Exception:
                    members = None
            self._members[key] = members
        return self._members[key]

    def fact_rows(self, table_name: str) -> Optional[int]:
        table = self._table(table_name)
        if table is None:
            return None
        try:
            return len(table)  # type: ignore[arg-type]
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Zone-map statistics (the v2 column store's per-zone min/max)
    # ------------------------------------------------------------------
    def zone_map(self, table_name: str, column: str) -> Optional[object]:
        """The column's persisted zone map, or ``None`` when absent.

        Zone maps arrive with v2 column stores (or explicit
        ``Table.ensure_zone_maps``); they give the analyzer distinct-count
        and value-range bounds without scanning any stored data.
        """
        key = (table_name, column)
        if key not in self._zone_maps:
            zone_map: Optional[object] = None
            table = self._table(table_name)
            if table is not None:
                try:
                    zone_map = table.zone_map(column)  # type: ignore[attr-defined]
                except Exception:
                    zone_map = None
            self._zone_maps[key] = zone_map
        return self._zone_maps[key]

    def distinct_bound(self, table_name: str, column: str) -> Optional[int]:
        """A sound upper bound on the column's distinct count from its
        zone map (sum of per-zone distinct counts), without a scan."""
        zone_map = self.zone_map(table_name, column)
        if zone_map is None:
            return None
        try:
            return int(zone_map.distinct_bound_total())  # type: ignore[attr-defined]
        except Exception:
            return None

    def value_range(
        self, table_name: str, column: str
    ) -> Optional[Tuple[object, object]]:
        """The column's global ``(min, max)`` from its zone map."""
        zone_map = self.zone_map(table_name, column)
        if zone_map is None:
            return None
        try:
            lo, hi = zone_map.value_range()  # type: ignore[attr-defined]
        except Exception:
            return None
        if lo is None or hi is None:
            return None
        return lo, hi

    def predicate_feasible(
        self, table_name: str, column: str, predicate: object
    ) -> Optional[bool]:
        """Whether any stored row can satisfy the predicate.

        ``False`` is definite (the zone-map value range excludes every
        predicate member — the executor would prune the whole scan);
        ``True``/``None`` make no claim.  Sound for the same reason zone
        pruning is: a value outside ``[min, max]`` occurs in no zone.
        """
        bounds = self.value_range(table_name, column)
        if bounds is None:
            return None
        lo, hi = bounds
        try:
            op_name = str(getattr(getattr(predicate, "op", None), "name", ""))
            values = tuple(getattr(predicate, "values", ()))
            if op_name in ("EQ", "IN"):
                feasible = any(
                    bool(lo <= value) and bool(hi >= value) for value in values
                )
            elif op_name == "RANGE":
                feasible = bool(hi >= values[0]) and bool(lo <= values[1])
            else:
                return None
        except (TypeError, ValueError, IndexError):
            return None
        return True if feasible else False
