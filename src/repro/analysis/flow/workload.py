"""Workload scanning: scripts as *sequences* of statements and directives.

A ``.assess`` script is more than a bag of independent statements: it is
executed top to bottom against one session, so earlier items create
bindings later items consume — a named labeling defined up front, a
materialized view the engine routes later gets onto, a cached result a
later statement derives from.  This module gives the flow analysis that
sequential view:

* :func:`scan_workload` segments script text into :class:`WorkloadItem`\\ s
  — ordinary assess statements plus two *workload directives* that have
  session-API counterparts but no statement-grammar form::

      define labeling <name> {<range>: <label>, ...}
      materialize <cube> by <level>, <level>, ...

  (``define labeling`` ⇔ :meth:`AssessSession.define_labeling`,
  ``materialize`` ⇔ :meth:`MultidimensionalEngine.materialize`);

* :class:`BindingEnv` tracks the definitions in scope while the analyzer
  interprets the items in order, recording def-use edges so dead
  definitions (never used, ``ASSESS501``) and shadowed definitions
  (redefined before any use, ``ASSESS502``) fall out at the end.

The plain statement linter stays oblivious to directives: scripts that
use them are analyzed with ``repro lint --workload``, which routes every
chunk through this scanner first.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ...core.diagnostics import DiagnosticBag, Severity, Span
from ..codes import severity_of
from ..lint import extract_statements

_DIRECTIVE_START = re.compile(r"(?is)^\s*(define|materialize)\b")
_DEFINE_LABELING = re.compile(
    r"(?is)^\s*define\s+labeling\s+(?P<name>\w+)\s*(?P<body>\{.*\})\s*$"
)
_MATERIALIZE = re.compile(
    r"(?is)^\s*materialize\s+(?P<cube>\w+)\s+by\s+(?P<levels>[\w\s,]+?)\s*$"
)


class WorkloadItem:
    """One chunk of a workload script, in script order.

    ``kind`` is ``"statement"`` for assess statements, ``"labeling"`` or
    ``"view"`` for well-formed directives, and ``"invalid"`` for chunks
    that look like a directive but do not parse as one (``ASSESS500``).
    """

    __slots__ = ("kind", "text", "index", "name", "cube", "levels", "body")

    def __init__(
        self,
        kind: str,
        text: str,
        index: int,
        name: str = "",
        cube: str = "",
        levels: Tuple[str, ...] = (),
        body: str = "",
    ) -> None:
        self.kind = kind
        self.text = text
        self.index = index
        self.name = name
        self.cube = cube
        self.levels = levels
        self.body = body

    @property
    def is_statement(self) -> bool:
        return self.kind == "statement"

    @property
    def is_directive(self) -> bool:
        return self.kind in ("labeling", "view", "invalid")

    def head(self) -> str:
        lines = self.text.strip().splitlines()
        return lines[0] if lines else ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WorkloadItem({self.kind}, {self.head()!r})"


def classify_chunk(text: str, index: int) -> WorkloadItem:
    """Classify one extracted chunk as statement or directive."""
    if not _DIRECTIVE_START.match(text):
        return WorkloadItem("statement", text, index)
    match = _DEFINE_LABELING.match(text)
    if match is not None:
        return WorkloadItem(
            "labeling", text, index,
            name=match.group("name"), body=match.group("body"),
        )
    match = _MATERIALIZE.match(text)
    if match is not None:
        levels = tuple(
            level.strip()
            for level in match.group("levels").split(",")
            if level.strip()
        )
        if levels:
            return WorkloadItem(
                "view", text, index, cube=match.group("cube"), levels=levels
            )
    return WorkloadItem("invalid", text, index)


def scan_workload(text: str) -> List[WorkloadItem]:
    """Segment script text into classified workload items, script order."""
    return [
        classify_chunk(chunk, index)
        for index, chunk in enumerate(extract_statements(text))
    ]


def directive_diagnostics(item: WorkloadItem) -> DiagnosticBag:
    """The ``ASSESS500`` bag of one directive item (empty if well-formed)."""
    bag = DiagnosticBag()
    if item.kind == "invalid":
        bag.report(
            "ASSESS500", severity_of("ASSESS500"),
            f"malformed workload directive {item.head()!r}",
            span=Span.from_text(item.text, 0),
            hint="expected 'define labeling <name> {<ranges>}' or "
            "'materialize <cube> by <level>, ...'",
            source="workload",
        )
    return bag


class _Definition:
    """One live binding: where it was defined and whether it was used."""

    __slots__ = ("item", "used")

    def __init__(self, item: WorkloadItem) -> None:
        self.item = item
        self.used = False


class BindingEnv:
    """Definitions in scope during the in-order abstract interpretation.

    ``define_*`` records a binding (flagging shadowed, unused earlier
    ones), ``use_*`` marks the live binding used, and
    :meth:`dead_definitions` returns every binding that was never used —
    the def-use summary of the workload.
    """

    def __init__(self) -> None:
        self._labelings: Dict[str, _Definition] = {}
        self._views: Dict[Tuple[str, Tuple[str, ...]], _Definition] = {}
        self._shadowed: List[Tuple[WorkloadItem, WorkloadItem]] = []

    # -- labelings ------------------------------------------------------
    def define_labeling(self, item: WorkloadItem) -> None:
        name = item.name.lower()
        previous = self._labelings.get(name)
        if previous is not None and not previous.used:
            self._shadowed.append((item, previous.item))
        self._labelings[name] = _Definition(item)

    def use_labeling(self, name: str) -> bool:
        definition = self._labelings.get(name.lower())
        if definition is None:
            return False
        definition.used = True
        return True

    def labeling_names(self) -> Tuple[str, ...]:
        return tuple(self._labelings)

    # -- materialized views --------------------------------------------
    def define_view(self, item: WorkloadItem) -> None:
        key = (item.cube.upper(), tuple(sorted(item.levels)))
        previous = self._views.get(key)
        if previous is not None and not previous.used:
            self._shadowed.append((item, previous.item))
        self._views[key] = _Definition(item)

    def use_views(self, cube: str, needed_levels: Tuple[str, ...]) -> bool:
        """Mark every view that could answer a get over these levels used."""
        needed = set(needed_levels)
        hit = False
        for (view_cube, view_levels), definition in self._views.items():
            if view_cube == cube.upper() and needed <= set(view_levels):
                definition.used = True
                hit = True
        return hit

    # -- summaries ------------------------------------------------------
    def dead_definitions(self) -> List[WorkloadItem]:
        dead = [
            d.item for d in self._labelings.values() if not d.used
        ] + [
            d.item for d in self._views.values() if not d.used
        ]
        dead.sort(key=lambda item: item.index)
        return dead

    def shadowed_definitions(self) -> List[Tuple[WorkloadItem, WorkloadItem]]:
        return list(self._shadowed)

    def report_into(
        self, bags: Dict[int, DiagnosticBag]
    ) -> None:
        """Emit ASSESS501/502 into the per-item diagnostic bags."""
        for item in self.dead_definitions():
            bag = bags.setdefault(item.index, DiagnosticBag())
            kind = "labeling" if item.kind == "labeling" else "view"
            label = item.name if item.kind == "labeling" else (
                f"{item.cube} by {', '.join(item.levels)}"
            )
            bag.report(
                "ASSESS501", severity_of("ASSESS501"),
                f"{kind} definition {label!r} is never used by a later "
                f"statement",
                span=Span.from_text(item.text, 0),
                hint="drop the definition, or move the statements that "
                "should use it after it",
                source="workload",
            )
        for later, earlier in self.shadowed_definitions():
            bag = bags.setdefault(later.index, DiagnosticBag())
            bag.report(
                "ASSESS502", severity_of("ASSESS502"),
                f"definition at item {later.index + 1} shadows the unused "
                f"definition at item {earlier.index + 1}",
                span=Span.from_text(later.text, 0),
                hint="the earlier definition can never take effect; "
                "remove one of the two",
                source="workload",
            )


# Severity re-exported for the analyzer's convenience (keeps its import
# list focused on flow modules).
SEVERITY = Severity
