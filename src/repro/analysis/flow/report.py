"""The :class:`WorkloadReport`: verdicts of one whole-workload analysis.

The report is the analyzer's structured output — the sharing plan
(fusion groups), the derivation edges, the exactness verdicts, and the
cardinality/cost bounds — next to the per-item diagnostic bags the lint
surface renders.  It has a stable machine-readable form
(:meth:`WorkloadReport.to_json`, ``workload_schema_version = 1``) that
the CI workload-analysis job asserts against, and a human rendering
(:meth:`WorkloadReport.render`) the CLI prints under
``repro lint --workload``.

Soundness contract (tested by ``tests/test_workload_soundness.py``):

* a :class:`DerivationEdge` claims the target get never scans the fact
  table when the workload executes in order on a fresh session;
* a :class:`FusionPrediction` with ``exact=True`` claims the fused pass
  serves every member bit-identically with zero runtime fallbacks;
* an :class:`ExactnessEntry` with verdict ``exact`` claims the runtime
  ``Table.sums_exactly`` gate passes (so parallel/fused/derived paths
  never fall back on that measure's account).

Everything the analyzer cannot *prove* is reported as ``unknown`` —
unknown is always safe, a wrong "safe" never is.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...core.diagnostics import Diagnostic, DiagnosticBag
from .domains import Exactness, Interval

WORKLOAD_SCHEMA_VERSION = 1
"""Version of the ``to_json`` document layout."""


class StatementInfo:
    """One workload item's analysis outcome (statement or directive)."""

    __slots__ = ("index", "kind", "text", "bag", "source", "group_by",
                 "measures", "plan_name", "composite", "parallel_safe")

    def __init__(
        self,
        index: int,
        kind: str,
        text: str,
        bag: DiagnosticBag,
        source: str = "",
        group_by: Tuple[str, ...] = (),
        measures: Tuple[str, ...] = (),
        plan_name: str = "",
        composite: bool = False,
        parallel_safe: Optional[bool] = None,
    ) -> None:
        self.index = index
        self.kind = kind
        self.text = text
        self.bag = bag
        self.source = source
        self.group_by = group_by
        self.measures = measures
        self.plan_name = plan_name
        # True when the plan pushes composite (join/pivot) operators.
        self.composite = composite
        # True iff every aggregate of the statement is proven to take the
        # parallel path without an exactness/key-space fallback; None
        # when the analyzer could not decide.
        self.parallel_safe = parallel_safe

    def head(self) -> str:
        lines = self.text.strip().splitlines()
        return lines[0] if lines else ""

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "kind": self.kind,
            "statement": self.text,
            "cube": self.source,
            "group_by": list(self.group_by),
            "measures": list(self.measures),
            "plan": self.plan_name,
            "composite": self.composite,
            "parallel_safe": self.parallel_safe,
            "diagnostics": [
                _diagnostic_json(d) for d in self.bag.sorted()
            ],
        }


class DerivationEdge:
    """Statement *target* is served warm from statement *source*'s result.

    ``kind`` is ``"exact"`` (same pushed get — a CSE/cache hit) or
    ``"derive"`` (roll-up re-aggregation from the finer cached result).
    """

    __slots__ = ("target", "source", "kind", "reason")

    def __init__(self, target: int, source: int, kind: str, reason: str) -> None:
        self.target = target
        self.source = source
        self.kind = kind
        self.reason = reason

    def to_json(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "source": self.source,
            "kind": self.kind,
            "reason": self.reason,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DerivationEdge({self.source} -> {self.target}, {self.kind})"


class FusionPrediction:
    """One predicted fused group: statements sharing one fact pass."""

    __slots__ = ("statements", "scan_predicates", "key_space", "exact",
                 "member_safety")

    def __init__(
        self,
        statements: Tuple[int, ...],
        scan_predicates: Tuple[str, ...],
        key_space: Optional[int],
        exact: bool,
        member_safety: Tuple[bool, ...],
    ) -> None:
        self.statements = statements
        self.scan_predicates = scan_predicates
        self.key_space = key_space
        # True iff *every* member is statically proven to be served from
        # the shared pass with zero fallbacks.
        self.exact = exact
        self.member_safety = member_safety

    @property
    def verdict(self) -> str:
        return "fusable-exact" if self.exact else "fusable-unknown"

    def to_json(self) -> Dict[str, object]:
        return {
            "statements": list(self.statements),
            "scan_predicates": list(self.scan_predicates),
            "key_space": self.key_space,
            "verdict": self.verdict,
            "member_safety": list(self.member_safety),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FusionPrediction({list(self.statements)}, {self.verdict})"


class ExactnessEntry:
    """The static float-exactness verdict of one (cube, measure)."""

    __slots__ = ("source", "measure", "op", "verdict", "detail")

    def __init__(
        self, source: str, measure: str, op: str,
        verdict: Exactness, detail: str,
    ) -> None:
        self.source = source
        self.measure = measure
        self.op = op
        self.verdict = verdict
        self.detail = detail

    def to_json(self) -> Dict[str, object]:
        return {
            "cube": self.source,
            "measure": self.measure,
            "op": self.op,
            "verdict": str(self.verdict),
            "detail": self.detail,
        }


class CardinalityBound:
    """Sound result-cells and cost intervals of one statement."""

    __slots__ = ("index", "cells", "cost", "admission_warning")

    def __init__(
        self, index: int, cells: Interval, cost: Interval,
        admission_warning: bool,
    ) -> None:
        self.index = index
        self.cells = cells
        self.cost = cost
        self.admission_warning = admission_warning

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "cells": self.cells.to_json(),
            "cost": self.cost.to_json(),
            "admission_warning": self.admission_warning,
        }


class WorkloadReport:
    """Everything one workload analysis proved (or could not prove)."""

    def __init__(self, origin: str = "<workload>") -> None:
        self.origin = origin
        self.statements: List[StatementInfo] = []
        self.derivations: List[DerivationEdge] = []
        self.fusions: List[FusionPrediction] = []
        self.exactness: List[ExactnessEntry] = []
        self.bounds: List[CardinalityBound] = []
        # Canonical fingerprints predicted served without a fact scan
        # (exact or derive) — the advisor wiring consumes this.
        self.warm_fingerprints: Set[object] = set()
        # Scan keys (algebra.cost._scan_key) of predicted fused groups —
        # the batch planner wiring consumes this.
        self.fusable_scan_keys: Set[object] = set()

    # ------------------------------------------------------------------
    @property
    def has_errors(self) -> bool:
        return any(info.bag.has_errors for info in self.statements)

    def diagnostics(self) -> List[Tuple[StatementInfo, Diagnostic]]:
        pairs: List[Tuple[StatementInfo, Diagnostic]] = []
        for info in self.statements:
            for diagnostic in info.bag.sorted():
                pairs.append((info, diagnostic))
        return pairs

    def warm_statements(self) -> List[int]:
        """Indexes of statements predicted to run without any fact scan."""
        return sorted({edge.target for edge in self.derivations})

    def exactness_of(self, source: str, measure: str) -> Exactness:
        for entry in self.exactness:
            if entry.source == source and entry.measure == measure:
                return entry.verdict
        return Exactness.UNKNOWN

    # ------------------------------------------------------------------
    def summary(self) -> str:
        errors = sum(len(info.bag.errors()) for info in self.statements)
        warnings = sum(len(info.bag.warnings()) for info in self.statements)
        exact_groups = sum(1 for fusion in self.fusions if fusion.exact)
        return (
            f"{len(self.statements)} items checked: {errors} error"
            f"{'s' if errors != 1 else ''}, {warnings} warning"
            f"{'s' if warnings != 1 else ''}; "
            f"{len(self.derivations)} derivation edge"
            f"{'s' if len(self.derivations) != 1 else ''}, "
            f"{len(self.fusions)} fused group"
            f"{'s' if len(self.fusions) != 1 else ''} "
            f"({exact_groups} proven exact)"
        )

    def render(self, verbose: bool = False) -> str:
        lines: List[str] = [f"workload: {self.origin}"]
        for info in self.statements:
            if not info.bag and not verbose:
                continue
            lines.append(f"item {info.index + 1}: {info.head()}")
            for diagnostic in info.bag.sorted():
                lines.append("  " + diagnostic.render(info.text))
        if self.fusions:
            lines.append("sharing plan:")
            for fusion in self.fusions:
                members = ", ".join(
                    str(index + 1) for index in fusion.statements
                )
                scan = " and ".join(fusion.scan_predicates) or "full scan"
                lines.append(
                    f"  fuse statements {members} on [{scan}] "
                    f"({fusion.verdict})"
                )
        if self.derivations:
            lines.append("derivation edges:")
            for edge in self.derivations:
                lines.append(
                    f"  statement {edge.target + 1} <- statement "
                    f"{edge.source + 1} ({edge.kind}: {edge.reason})"
                )
        if self.exactness:
            lines.append("exactness verdicts:")
            for entry in self.exactness:
                lines.append(
                    f"  {entry.source}.{entry.measure} ({entry.op}): "
                    f"{entry.verdict} — {entry.detail}"
                )
        if self.bounds:
            lines.append("cardinality bounds:")
            for bound in self.bounds:
                flag = "  [admission warning]" if bound.admission_warning else ""
                lines.append(
                    f"  statement {bound.index + 1}: cells in "
                    f"[{bound.cells.lo:,.0f}, {bound.cells.hi:,.0f}], "
                    f"cost <= {bound.cost.hi:,.0f}{flag}"
                )
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """The stable machine-readable document (schema version 1)."""
        return {
            "workload_schema_version": WORKLOAD_SCHEMA_VERSION,
            "origin": self.origin,
            "statements": [info.to_json() for info in self.statements],
            "derivations": [edge.to_json() for edge in self.derivations],
            "fusions": [fusion.to_json() for fusion in self.fusions],
            "exactness": [entry.to_json() for entry in self.exactness],
            "bounds": [bound.to_json() for bound in self.bounds],
            "summary": self.summary(),
        }


def _diagnostic_json(diagnostic: Diagnostic) -> Dict[str, object]:
    """One diagnostic in the stable JSON layout shared with plain lint."""
    span = diagnostic.span
    return {
        "code": diagnostic.code,
        "severity": str(diagnostic.severity),
        "message": diagnostic.message,
        "span": None if span is None else {
            "start": span.start,
            "end": span.end,
            "line": span.line,
            "column": span.column,
        },
        "hint": diagnostic.hint,
        "source": diagnostic.source,
    }


def report_results_json(results: Sequence[object]) -> List[Dict[str, object]]:
    """Plain lint results (``LintResult``) in the same JSON layout."""
    documents: List[Dict[str, object]] = []
    for result in results:
        documents.append(
            {
                "origin": result.origin,  # type: ignore[attr-defined]
                "statement": result.statement,  # type: ignore[attr-defined]
                "diagnostics": [
                    _diagnostic_json(d)
                    for d in result.bag.sorted()  # type: ignore[attr-defined]
                ],
            }
        )
    return documents
