"""Structured diagnostics for the static analyzer (`repro.analysis`).

A :class:`Diagnostic` is one finding about a statement or a plan: a stable
code (``ASSESS101``…), a severity, a human message, an optional source
:class:`Span`, and an optional fix hint.  Unlike the exception hierarchy in
:mod:`repro.core.errors` — which reports the *first* problem and aborts —
diagnostics accumulate, so a single analysis run can report every defect of
a statement at once (the contract of ``repro lint``).

The module is dependency-free on purpose: the parser, the analyzer, the
planner and the CLI all share these types without import cycles.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, List, Optional, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity; comparable (``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


def line_and_column(text: str, offset: int) -> Tuple[int, int]:
    """1-based (line, column) of a character offset into ``text``."""
    if offset < 0:
        return (1, 1)
    offset = min(offset, len(text))
    prefix = text[:offset]
    line = prefix.count("\n") + 1
    column = offset - (prefix.rfind("\n") + 1) + 1
    return (line, column)


class Span:
    """A half-open source range ``[start, end)`` with 1-based line/column.

    ``line``/``column`` locate ``start``; they are computed from the text by
    :meth:`from_text` (the tokenizer stores them directly on tokens).
    """

    __slots__ = ("start", "end", "line", "column")

    def __init__(self, start: int, end: int, line: int = 1, column: int = 1):
        self.start = int(start)
        self.end = max(int(end), self.start)
        self.line = int(line)
        self.column = int(column)

    @classmethod
    def from_text(cls, text: str, start: int, end: Optional[int] = None) -> "Span":
        """A span anchored in ``text``, clamped to its bounds.

        An unexpected-EOF error positions at ``len(text)``; without the
        clamp the default one-character width would point past the end
        of the source (a fuzzer-found defect — see
        ``tests/test_parser_fuzz.py``).
        """
        start = max(min(int(start), len(text)), 0)
        line, column = line_and_column(text, start)
        if end is None:
            end = start + 1
        return cls(start, min(max(int(end), start), len(text)), line, column)

    @classmethod
    def from_token(cls, token) -> "Span":
        """Span of a tokenizer token (duck-typed to avoid an import cycle)."""
        end = getattr(token, "end", -1)
        if end < 0:
            end = token.position + max(len(getattr(token, "value", "")), 1)
        return cls(token.position, end, getattr(token, "line", 1), getattr(token, "column", 1))

    def merge(self, other: "Span") -> "Span":
        """The smallest span covering both operands."""
        if other.start < self.start:
            first = other
        else:
            first = self
        return Span(
            min(self.start, other.start),
            max(self.end, other.end),
            first.line,
            first.column,
        )

    def label(self) -> str:
        """Render as ``line:column`` for message prefixes."""
        return f"{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Span) and (
            other.start, other.end, other.line, other.column
        ) == (self.start, self.end, self.line, self.column)

    def __hash__(self) -> int:
        return hash(("Span", self.start, self.end))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.start}..{self.end} @ {self.label()})"


class Diagnostic:
    """One structured finding of the static analyzer."""

    __slots__ = ("code", "severity", "message", "span", "hint", "source")

    def __init__(
        self,
        code: str,
        severity: Severity,
        message: str,
        span: Optional[Span] = None,
        hint: str = "",
        source: str = "",
    ):
        self.code = code
        self.severity = Severity(severity)
        self.message = message
        self.span = span
        self.hint = hint
        # name of the pass (or subsystem) that produced the finding
        self.source = source

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self, text: str = "") -> str:
        """One- or three-line rendering, with a caret when text is known."""
        location = f"{self.span.label()}: " if self.span is not None else ""
        head = f"{location}{self.severity}[{self.code}]: {self.message}"
        lines = [head]
        if self.span is not None and text:
            source_lines = text.splitlines()
            if 0 < self.span.line <= len(source_lines):
                source_line = source_lines[self.span.line - 1]
                width = max(1, min(self.span.end - self.span.start, len(source_line)))
                lines.append(f"  {source_line}")
                lines.append("  " + " " * (self.span.column - 1) + "^" * width)
        if self.hint:
            lines.append(f"  hint: {self.hint}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Diagnostic) and (
            other.code, other.severity, other.message, other.span
        ) == (self.code, self.severity, self.message, self.span)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f" @ {self.span.label()}" if self.span else ""
        return f"Diagnostic({self.code}, {self.severity}{where}: {self.message!r})"


class DiagnosticBag:
    """An ordered collection of diagnostics with severity accounting."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self._diagnostics: List[Diagnostic] = list(diagnostics)

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self._diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self._diagnostics.extend(diagnostics)

    def report(
        self,
        code: str,
        severity: Severity,
        message: str,
        span: Optional[Span] = None,
        hint: str = "",
        source: str = "",
    ) -> Diagnostic:
        """Build and record a diagnostic in one call."""
        return self.add(Diagnostic(code, severity, message, span, hint, source))

    # ------------------------------------------------------------------
    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.is_error)

    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity is Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self._diagnostics)

    def codes(self) -> Tuple[str, ...]:
        """The codes present, in report order (duplicates preserved)."""
        return tuple(d.code for d in self._diagnostics)

    def sorted(self) -> "DiagnosticBag":
        """A copy ordered by source position, then severity (errors first)."""
        def key(d: Diagnostic):
            start = d.span.start if d.span is not None else -1
            return (start, -int(d.severity))

        return DiagnosticBag(sorted(self._diagnostics, key=key))

    def render(self, text: str = "") -> str:
        return "\n".join(d.render(text) for d in self._diagnostics)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __bool__(self) -> bool:
        return bool(self._diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiagnosticBag({len(self._diagnostics)} diagnostics, "
            f"{len(self.errors())} errors)"
        )
