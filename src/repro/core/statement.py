"""The validated assess statement model (Section 4.1).

An :class:`AssessStatement` is the semantic form of::

    with C0 [ for P ] by G
    assess|assess* m [ against <benchmark> ]
    [ using <function> ] labels λ

The four ``against`` forms map to the four benchmark specifications of
Section 3.1 (plus the omitted-``against`` zero benchmark and the
ancestor-benchmark extension from the paper's future-work list).  Statements
are produced either by the parser (:mod:`repro.parser`) or programmatically,
and consumed by the planner (:mod:`repro.algebra.planner`).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .errors import ValidationError
from .expression import Expression, default_using
from .groupby import GroupBySet
from .hierarchy import Member
from .labels import LabelingSpec
from .query import Predicate
from .schema import CubeSchema

CONSTANT_MEASURE = "constant"
"""Name given to the synthetic measure of constant benchmarks (``m_const``)."""


class BenchmarkSpec:
    """Base class for ``against`` clause alternatives."""

    kind = "abstract"

    def benchmark_measure(self, target_measure: str) -> str:
        """The benchmark measure name ``m_B`` (Section 4.1 result contract)."""
        raise NotImplementedError

    def render(self) -> str:
        """Render back to ``against …`` surface syntax ('' when omitted)."""
        raise NotImplementedError


class ZeroBenchmark(BenchmarkSpec):
    """The dummy zero benchmark used when ``against`` is omitted."""

    kind = "zero"

    def benchmark_measure(self, target_measure: str) -> str:
        return CONSTANT_MEASURE

    def render(self) -> str:
        return ""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ZeroBenchmark)

    def __hash__(self) -> int:
        return hash("ZeroBenchmark")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ZeroBenchmark()"


class ConstantBenchmark(BenchmarkSpec):
    """``against v`` — a KPI-style fixed target value."""

    kind = "constant"

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def benchmark_measure(self, target_measure: str) -> str:
        return CONSTANT_MEASURE

    def render(self) -> str:
        if self.value == int(self.value):
            return f"against {int(self.value)}"
        return f"against {self.value!r}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantBenchmark) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("ConstantBenchmark", self.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantBenchmark({self.value})"


class ExternalBenchmark(BenchmarkSpec):
    """``against B.m_b`` — an external cube's measure, reconciled with the
    target schema (Section 3.1)."""

    kind = "external"

    __slots__ = ("cube", "measure_name")

    def __init__(self, cube: str, measure_name: str):
        self.cube = cube
        self.measure_name = measure_name

    def benchmark_measure(self, target_measure: str) -> str:
        return self.measure_name

    def render(self) -> str:
        return f"against {self.cube}.{self.measure_name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExternalBenchmark) and (
            other.cube,
            other.measure_name,
        ) == (self.cube, self.measure_name)

    def __hash__(self) -> int:
        return hash(("ExternalBenchmark", self.cube, self.measure_name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExternalBenchmark({self.cube}.{self.measure_name})"


class SiblingBenchmark(BenchmarkSpec):
    """``against l_s = u_sib`` — compare a slice against a sibling slice."""

    kind = "sibling"

    __slots__ = ("level", "sibling")

    def __init__(self, level: str, sibling: Member):
        self.level = level
        self.sibling = sibling

    def benchmark_measure(self, target_measure: str) -> str:
        return target_measure

    def render(self) -> str:
        return f"against {self.level} = '{self.sibling}'"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SiblingBenchmark) and (other.level, other.sibling) == (
            self.level,
            self.sibling,
        )

    def __hash__(self) -> int:
        return hash(("SiblingBenchmark", self.level, self.sibling))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SiblingBenchmark({self.level} = {self.sibling!r})"


class PastBenchmark(BenchmarkSpec):
    """``against past k`` — predict the measure from the k previous time
    slices (Section 3.1, last bullet)."""

    kind = "past"

    __slots__ = ("k", "method")

    def __init__(self, k: int, method: str = "linearRegression"):
        if k < 1:
            raise ValidationError(f"past benchmark needs k >= 1, got {k}")
        self.k = int(k)
        self.method = method

    def benchmark_measure(self, target_measure: str) -> str:
        return target_measure

    def render(self) -> str:
        return f"against past {self.k}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PastBenchmark) and (other.k, other.method) == (
            self.k,
            self.method,
        )

    def __hash__(self) -> int:
        return hash(("PastBenchmark", self.k, self.method))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PastBenchmark(k={self.k}, method={self.method!r})"


class AncestorBenchmark(BenchmarkSpec):
    """Extension (paper §8 future work): assess a member against an ancestor.

    ``against ancestor type`` assesses e.g. milk sales against the sales of
    milk's whole product type.  The benchmark aggregates the target's slice
    level up to ``ancestor_level`` and compares every cell with its
    ancestor's value.
    """

    kind = "ancestor"

    __slots__ = ("level", "ancestor_level")

    def __init__(self, level: str, ancestor_level: str):
        self.level = level
        self.ancestor_level = ancestor_level

    def benchmark_measure(self, target_measure: str) -> str:
        return target_measure

    def render(self) -> str:
        return f"against ancestor {self.ancestor_level}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AncestorBenchmark) and (
            other.level,
            other.ancestor_level,
        ) == (self.level, self.ancestor_level)

    def __hash__(self) -> int:
        return hash(("AncestorBenchmark", self.level, self.ancestor_level))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AncestorBenchmark({self.level} vs {self.ancestor_level})"


class AssessStatement:
    """A fully validated assess statement, ready for planning.

    Validation applies the constraints of Sections 3.1 and 4.1:

    * the assessed measure belongs to the schema;
    * every ``for`` predicate constrains a known level;
    * a sibling benchmark requires the ``for`` clause to slice on a member of
      the sibling's level, and that level to be in the group-by set;
    * a past benchmark requires a temporal level in the group-by set sliced
      by the ``for`` clause.
    """

    def __init__(
        self,
        source: str,
        schema: CubeSchema,
        group_by: GroupBySet,
        measure: str,
        predicates: Sequence[Predicate] = (),
        benchmark: Optional[BenchmarkSpec] = None,
        using: Optional[Expression] = None,
        labels: Optional[LabelingSpec] = None,
        star: bool = False,
    ):
        if labels is None:
            raise ValidationError("the labels clause is mandatory")
        schema.measure(measure)
        self.source = source
        self.schema = schema
        self.group_by = group_by
        self.measure = measure
        self.predicates: Tuple[Predicate, ...] = tuple(predicates)
        self.benchmark: BenchmarkSpec = benchmark if benchmark is not None else ZeroBenchmark()
        self.labels = labels
        self.star = bool(star)
        self._validate_benchmark()
        if using is None:
            using = default_using(measure, self.benchmark_measure)
        self.using: Expression = _expand_implicit_totals(using, measure)

    # ------------------------------------------------------------------
    @property
    def benchmark_measure(self) -> str:
        """The benchmark measure name ``m_B`` exposed in the result."""
        return self.benchmark.benchmark_measure(self.measure)

    def slice_predicate(self, level: str) -> Predicate:
        """The ``for`` predicate slicing on a given level (must exist)."""
        for predicate in self.predicates:
            if predicate.level == level:
                return predicate
        raise ValidationError(
            f"the for clause must include a predicate on level {level!r}"
        )

    # ------------------------------------------------------------------
    def _validate_benchmark(self) -> None:
        benchmark = self.benchmark
        if isinstance(benchmark, SiblingBenchmark):
            if benchmark.level not in self.group_by:
                raise ValidationError(
                    f"sibling level {benchmark.level!r} must belong to the "
                    f"group-by set {list(self.group_by.levels)}"
                )
            predicate = self.slice_predicate(benchmark.level)
            members = predicate.member_set()
            if members is None or len(members) != 1:
                raise ValidationError(
                    f"the for clause must slice level {benchmark.level!r} "
                    f"on a single member for a sibling benchmark"
                )
            if benchmark.sibling in members:
                raise ValidationError(
                    f"sibling member {benchmark.sibling!r} equals the target slice member"
                )
        elif isinstance(benchmark, PastBenchmark):
            temporal = self.schema.temporal_hierarchy()
            if temporal is None:
                raise ValidationError(
                    "past benchmark requires a temporal hierarchy "
                    "(named or containing a level 'date'/'time')"
                )
            level = self._temporal_level_in_group_by(temporal)
            predicate = self.slice_predicate(level)
            members = predicate.member_set()
            if members is None or len(members) != 1:
                raise ValidationError(
                    f"the for clause must slice temporal level {level!r} "
                    f"on a single member for a past benchmark"
                )
        elif isinstance(benchmark, AncestorBenchmark):
            if benchmark.level not in self.group_by:
                raise ValidationError(
                    f"ancestor benchmark level {benchmark.level!r} must belong "
                    f"to the group-by set"
                )
            hierarchy = self.schema.hierarchy_of_level(benchmark.level)
            if not hierarchy.has_level(benchmark.ancestor_level):
                raise ValidationError(
                    f"ancestor level {benchmark.ancestor_level!r} is not in "
                    f"hierarchy {hierarchy.name!r}"
                )
            if not hierarchy.rolls_up_to(benchmark.level, benchmark.ancestor_level):
                raise ValidationError(
                    f"{benchmark.level!r} does not roll up to "
                    f"{benchmark.ancestor_level!r}"
                )

    def _temporal_level_in_group_by(self, temporal) -> str:
        for level_name in self.group_by.levels:
            if temporal.has_level(level_name):
                return level_name
        raise ValidationError(
            "past benchmark requires a temporal level in the group-by set"
        )

    @property
    def temporal_level(self) -> str:
        """The temporal level used by a past benchmark."""
        temporal = self.schema.temporal_hierarchy()
        if temporal is None:
            raise ValidationError("schema has no temporal hierarchy")
        return self._temporal_level_in_group_by(temporal)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render back to the SQL-like surface syntax."""
        parts = [f"with {self.source}"]
        if self.predicates:
            rendered = ", ".join(_render_predicate(p) for p in self.predicates)
            parts.append(f"for {rendered}")
        parts.append(f"by {', '.join(self.group_by.levels)}")
        keyword = "assess*" if self.star else "assess"
        against = self.benchmark.render()
        line = f"{keyword} {self.measure}"
        if against:
            line = f"{line} {against}"
        parts.append(line)
        parts.append(f"using {self.using.render()}")
        parts.append(f"labels {self.labels.render()}")
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AssessStatement({self.render()!r})"


def _expand_implicit_totals(expression: Expression, measure: str) -> Expression:
    """Desugar one-argument ``percOfTotal(x)`` into ``percOfTotal(x, m)``.

    The paper's surface syntax (Example 4.1) writes ``percOfTotal`` with a
    single argument, while its logical plan (Example 4.5) passes the target
    measure as the implicit total denominator; this rewrite reconciles the
    two.
    """
    from .expression import BinaryOp, FunctionCall, MeasureRef

    def walk(node: Expression) -> Expression:
        if isinstance(node, FunctionCall):
            args = tuple(walk(arg) for arg in node.args)
            if node.name.lower() == "percoftotal" and len(args) == 1:
                args = (args[0], MeasureRef(measure))
            return FunctionCall(node.name, args)
        if isinstance(node, BinaryOp):
            return BinaryOp(node.op, walk(node.left), walk(node.right))
        return node

    return walk(expression)


def _render_predicate(predicate: Predicate) -> str:
    from .query import PredicateOp

    if predicate.op is PredicateOp.EQ:
        return f"{predicate.level} = '{predicate.values[0]}'"
    if predicate.op is PredicateOp.IN:
        rendered = ", ".join(f"'{v}'" for v in predicate.values)
        return f"{predicate.level} in ({rendered})"
    low, high = predicate.values
    return f"{predicate.level} between '{low}' and '{high}'"
