"""Expression AST for the ``using`` clause (Section 3.2).

The ``using`` clause holds a functional-style, nestable composition of
library functions over measures, e.g.::

    minMaxNorm(difference(storeSales, 1000))
    percOfTotal(difference(quantity, benchmark.quantity))

The AST is pure data: nodes know nothing about evaluation.  Evaluation
happens in :mod:`repro.functions.evaluate`, which resolves function names
against the registry and binds measure references to cube columns, deciding
for each call whether it is a cell-wise ``⊟`` or holistic ``⊡`` application.

Arithmetic operators (``+ - * /``) are also part of the expression language
so derived measures like ``profit = storeSales - storeCost`` can be written
inline.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple


class Expression:
    """Base class for expression nodes (value objects)."""

    def references(self) -> Tuple["MeasureRef", ...]:
        """All measure references in the subtree, left to right."""
        raise NotImplementedError

    def render(self) -> str:
        """Render back to the surface syntax."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


class Literal(Expression):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def references(self) -> Tuple["MeasureRef", ...]:
        return ()

    def render(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Literal", self.value))


class MeasureRef(Expression):
    """A reference to a measure column, optionally alias-qualified.

    ``benchmark.quantity`` parses to ``MeasureRef("quantity", "benchmark")``.
    """

    __slots__ = ("name", "qualifier")

    def __init__(self, name: str, qualifier: Optional[str] = None):
        self.name = name
        self.qualifier = qualifier

    @property
    def column_name(self) -> str:
        """The cube column this reference binds to."""
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def references(self) -> Tuple["MeasureRef", ...]:
        return (self,)

    def render(self) -> str:
        return self.column_name

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MeasureRef)
            and (other.name, other.qualifier) == (self.name, self.qualifier)
        )

    def __hash__(self) -> int:
        return hash(("MeasureRef", self.name, self.qualifier))


class FunctionCall(Expression):
    """An invocation of a registered function over sub-expressions."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name
        self.args: Tuple[Expression, ...] = tuple(args)

    def references(self) -> Tuple[MeasureRef, ...]:
        refs: Tuple[MeasureRef, ...] = ()
        for arg in self.args:
            refs += arg.references()
        return refs

    def render(self) -> str:
        rendered = ", ".join(arg.render() for arg in self.args)
        return f"{self.name}({rendered})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionCall)
            and (other.name, other.args) == (self.name, self.args)
        )

    def __hash__(self) -> int:
        return hash(("FunctionCall", self.name, self.args))


class BinaryOp(Expression):
    """An arithmetic operation between two sub-expressions."""

    OPERATORS = ("+", "-", "*", "/")

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in self.OPERATORS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def references(self) -> Tuple[MeasureRef, ...]:
        return self.left.references() + self.right.references()

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinaryOp)
            and (other.op, other.left, other.right) == (self.op, self.left, self.right)
        )

    def __hash__(self) -> int:
        return hash(("BinaryOp", self.op, self.left, self.right))


def default_using(measure: str, benchmark_measure: str) -> FunctionCall:
    """The implicit comparison when ``using`` is omitted.

    The paper notes labeling on the raw value "simply needs ... a fixed
    benchmark of zeros ... and a simple arithmetic difference" — we apply
    ``difference(m, benchmark.m_B)`` uniformly, which degenerates to the raw
    value against the zero benchmark.
    """
    return FunctionCall(
        "difference",
        (MeasureRef(measure), MeasureRef(benchmark_measure, "benchmark")),
    )
