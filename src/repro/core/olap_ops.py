"""Classical OLAP operators over in-memory cubes.

The paper "proposes an assess operator to complement the traditional OLAP
roll-up's and drill-down's"; this module supplies those traditional
operators on :class:`~repro.core.cube.Cube` objects so cubes returned by
the engine can keep being explored in memory:

* :func:`rollup` — aggregate a derived cube to a coarser group-by set via
  the hierarchies' part-of orders;
* :func:`slice_cube` — restrict a cube with a predicate (slice/dice);
* :func:`drill_across` — merge measures of two joinable cubes (a thin alias
  over the natural join, without the benchmark aliasing).

Roll-up re-aggregates the *already aggregated* cells of a derived cube, so
it is only exact for distributive aggregation operators (sum, min, max,
count); rolling up an avg measure raises, because the correct result needs
the base data (Definition 2.6 computes it from C0).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .cube import Cube
from .errors import SchemaError
from .groupby import GroupBySet
from .query import Predicate


def rollup(cube: Cube, target: GroupBySet) -> Cube:
    """Aggregate a cube to a coarser group-by set.

    Every coordinate rolls up through the part-of orders (``rup`` of
    Definition 2.3); cells mapping to the same coarse coordinate are merged
    with each measure's aggregation operator.  Measures whose names are not
    in the schema (derived columns like ``comparison``) cannot be rolled up
    and are dropped, with the exception that non-numeric columns always
    are.
    """
    if not cube.group_by.rolls_up_to(target):
        raise SchemaError(
            f"group-by {list(cube.group_by.levels)} does not roll up "
            f"to {list(target.levels)}"
        )
    schema = cube.schema
    keep: List[Tuple[str, str]] = []  # (measure name, operator)
    for name in cube.measure_names:
        if not schema.has_measure(name):
            continue
        measure = schema.measure(name)
        if not measure.is_distributive:
            raise SchemaError(
                f"measure {name!r} aggregates with {measure.op!r}, which is "
                "not distributive; roll it up from the detailed cube instead"
            )
        keep.append((name, measure.op))
    if not keep:
        raise SchemaError("cube has no schema measures to roll up")

    groups: Dict[Tuple, int] = {}
    assignment = np.empty(len(cube), dtype=np.int64)
    for row, coordinate in enumerate(cube.coordinates()):
        rolled = cube.group_by.rup(coordinate, target)
        slot = groups.setdefault(rolled, len(groups))
        assignment[row] = slot

    coords: Dict[str, List] = {level: [None] * len(groups) for level in target.levels}
    for rolled, slot in groups.items():
        for position, level in enumerate(target.levels):
            coords[level][slot] = rolled[position]

    measures: Dict[str, np.ndarray] = {}
    for name, op in keep:
        values = np.asarray(cube.measure(name), dtype=np.float64)
        measures[name] = _aggregate_groups(assignment, len(groups), values, op)
    return Cube(schema, target, coords, measures)


def _aggregate_groups(
    assignment: np.ndarray, count: int, values: np.ndarray, op: str
) -> np.ndarray:
    if op == "sum":
        return np.bincount(assignment, weights=values, minlength=count)
    if op == "count":
        return np.bincount(assignment, weights=values, minlength=count)
    if op == "min":
        out = np.full(count, np.inf)
        np.minimum.at(out, assignment, values)
        return out
    if op == "max":
        out = np.full(count, -np.inf)
        np.maximum.at(out, assignment, values)
        return out
    raise SchemaError(f"cannot re-aggregate operator {op!r}")


def drill_down_levels(cube: Cube, target: GroupBySet) -> None:
    """Validate a drill-down request (finer group-by).

    A derived cube cannot be drilled down in memory — the finer data was
    aggregated away — so this helper only checks direction and raises a
    uniform, instructive error.  The OLAP engine answers drill-downs by
    re-querying the detailed cube.
    """
    if not target.rolls_up_to(cube.group_by):
        raise SchemaError(
            f"{list(target.levels)} is not finer than {list(cube.group_by.levels)}"
        )
    raise SchemaError(
        "drill-down needs the detailed cube: re-run the cube query at "
        f"group-by {list(target.levels)} instead of refining the result"
    )


def slice_cube(cube: Cube, predicate: Predicate) -> Cube:
    """Slice/dice: keep the cells satisfying a predicate on one level."""
    if predicate.level not in cube.group_by:
        raise SchemaError(
            f"slice level {predicate.level!r} not in group-by "
            f"{list(cube.group_by.levels)}"
        )
    column = cube.coords[predicate.level]
    return cube.filter_rows(predicate.mask(column))


def drill_across(left: Cube, right: Cube, alias: str = "other") -> Cube:
    """Drill-across two joinable cubes, merging their measures."""
    return left.natural_join(right, alias=alias)
