"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single base class.  The subclasses mirror the stages of an assess
statement's life cycle: schema definition, statement parsing, semantic
validation, planning, and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library.

    Any library error can carry a source position: :meth:`at` attaches the
    offending offset (and the statement text) after the fact, which the
    parser uses to point semantic errors raised by ``core`` constructors —
    which know nothing about the surface text — at the clause that caused
    them.  ``__str__`` renders a ``line:column`` prefix and a caret line
    whenever a position is known.
    """

    position: int = -1
    text: str = ""

    def at(self, position: int, text: str) -> "ReproError":
        """Attach a source position (no-op if one is already set)."""
        if self.position < 0 and position >= 0:
            self.position = position
            self.text = text
        return self

    def __str__(self) -> str:
        base = super().__str__()
        if self.position >= 0 and self.text:
            from .diagnostics import line_and_column

            line, column = line_and_column(self.text, self.position)
            source_lines = self.text.splitlines() or [""]
            source_line = source_lines[min(line, len(source_lines)) - 1]
            pointer = " " * (column - 1) + "^"
            return f"{base} (at {line}:{column})\n  {source_line}\n  {pointer}"
        return base


class SchemaError(ReproError):
    """Raised for inconsistent multidimensional schema definitions.

    Examples: duplicate level names across hierarchies, a measure bound to
    an unknown aggregation operator, or a part-of mapping that violates the
    "exactly one parent" constraint of Definition 2.1.
    """


class MemberError(SchemaError):
    """Raised when a member does not belong to the domain of a level."""


class ParseError(ReproError):
    """Raised when an assess statement cannot be parsed.

    Carries the offending position so interactive front ends can point at
    the error.
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        super().__init__(message)
        self.position = position
        self.text = text


class ValidationError(ReproError):
    """Raised when a parsed statement is semantically invalid.

    Examples: the ``by`` clause names an unknown level, the sibling member in
    ``against`` belongs to a level outside the group-by set, or a label range
    set is incomplete/overlapping.  Like every :class:`ReproError` it can
    carry a source position (see :meth:`ReproError.at`).
    """

    def __init__(self, message: str, position: int = -1, text: str = ""):
        super().__init__(message)
        self.position = position
        self.text = text


class JoinabilityError(ValidationError):
    """Raised when target cube and benchmark are not joinable (Def. 3.1)."""


class PlanError(ReproError):
    """Raised when a requested execution plan is not feasible.

    The feasibility matrix of Section 5.2 applies: JOP is not feasible for
    constant benchmarks; POP is only feasible for sibling and past ones.
    """


class ExecutionError(ReproError):
    """Raised when a logical plan fails while being interpreted."""


class FunctionError(ReproError):
    """Raised for problems in the function registry.

    Examples: looking up an unregistered function name, or applying a
    function with the wrong number of measure arguments.
    """


class EngineError(ReproError):
    """Raised by the relational engine substrate (bad column, bad query)."""
