"""Core multidimensional model: hierarchies, schemas, cubes, statements.

This package implements Section 2 (formalities) and the data structures of
Sections 3 and 4 of the paper: hierarchies with roll-up/part-of orders, cube
schemas, group-by sets and coordinates, sparse cubes, cube queries, label
ranges, benchmark specifications, assess statements, and assessment results.
"""

from .cube import BENCHMARK_ALIAS, Cube, constant_benchmark_cube, qualified
from .errors import (
    EngineError,
    ExecutionError,
    FunctionError,
    JoinabilityError,
    MemberError,
    ParseError,
    PlanError,
    ReproError,
    SchemaError,
    ValidationError,
)
from .expression import BinaryOp, Expression, FunctionCall, Literal, MeasureRef
from .groupby import Coordinate, GroupBySet, top_group_by
from .hierarchy import Hierarchy, Level, Member
from .labels import (
    CoordinateLabeling,
    Interval,
    LabelRule,
    LabelingSpec,
    NamedLabeling,
    RangeLabeling,
    five_stars_rules,
    validate_ranges,
)
from .query import CubeQuery, Predicate, PredicateOp
from .result import AssessedCell, AssessResult
from .schema import AGGREGATION_OPERATORS, CubeSchema, Measure
from .statement import (
    AncestorBenchmark,
    AssessStatement,
    BenchmarkSpec,
    CONSTANT_MEASURE,
    ConstantBenchmark,
    ExternalBenchmark,
    PastBenchmark,
    SiblingBenchmark,
    ZeroBenchmark,
)

__all__ = [
    "AGGREGATION_OPERATORS",
    "AncestorBenchmark",
    "AssessResult",
    "AssessStatement",
    "AssessedCell",
    "BENCHMARK_ALIAS",
    "BenchmarkSpec",
    "BinaryOp",
    "CONSTANT_MEASURE",
    "ConstantBenchmark",
    "CoordinateLabeling",
    "Coordinate",
    "Cube",
    "CubeQuery",
    "CubeSchema",
    "EngineError",
    "ExecutionError",
    "Expression",
    "ExternalBenchmark",
    "FunctionCall",
    "FunctionError",
    "GroupBySet",
    "Hierarchy",
    "Interval",
    "JoinabilityError",
    "LabelRule",
    "LabelingSpec",
    "Level",
    "Literal",
    "MeasureRef",
    "Measure",
    "Member",
    "MemberError",
    "NamedLabeling",
    "ParseError",
    "PastBenchmark",
    "PlanError",
    "Predicate",
    "PredicateOp",
    "RangeLabeling",
    "ReproError",
    "SchemaError",
    "SiblingBenchmark",
    "ValidationError",
    "ZeroBenchmark",
    "constant_benchmark_cube",
    "five_stars_rules",
    "qualified",
    "top_group_by",
]
