"""Cubes: partial functions from coordinates to measure tuples (Def. 2.4/2.6).

A :class:`Cube` represents either a detailed cube (over the top group-by set
``G0``) or a derived cube (the result of a cube query).  Cubes are *sparse*:
only coordinates for which business events exist are stored.

Storage is columnar: one object array per group-by level (the coordinate
columns) and one array per measure.  This makes the holistic transformations
of Section 3.2 and the joins of Section 4.2 vectorisable, mirroring the
paper's use of Pandas DataFrames for in-memory post-processing.

The heavy in-memory kernels used by the logical operators live here:

* :meth:`Cube.natural_join` — drill-across ``C1 ⋈ C2`` on full coordinates;
* :meth:`Cube.partial_join` — ``C1 ⋈_{l1..lm} C2`` which matches on a subset
  of levels and appends the measures of *all* matching benchmark cells;
* :meth:`Cube.pivot` — ``⊞`` which keeps one reference slice of a level and
  appends sibling-slice measures as new columns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .errors import JoinabilityError, SchemaError
from .groupby import Coordinate, GroupBySet
from .hierarchy import Member
from .schema import CubeSchema

BENCHMARK_ALIAS = "benchmark"
"""The alias the syntax uses to qualify benchmark measures (``benchmark.m``)."""


def qualified(alias: str, measure_name: str) -> str:
    """Render an alias-qualified measure name, e.g. ``benchmark.quantity``."""
    return f"{alias}.{measure_name}"


def _as_object_array(values: Sequence) -> np.ndarray:
    array = np.empty(len(values), dtype=object)
    for i, value in enumerate(values):
        array[i] = value
    return array


def _as_measure_array(values: Sequence) -> np.ndarray:
    """Coerce a measure column to float64 when numeric, object otherwise."""
    if isinstance(values, np.ndarray):
        if values.dtype == object:
            return values
        return values.astype(np.float64, copy=False)
    try:
        return np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError):
        return _as_object_array(list(values))


class Cube:
    """A sparse cube laid out column-wise.

    Parameters
    ----------
    schema:
        The cube schema the cube instantiates.
    group_by:
        The group-by set of the cube's coordinates.
    coords:
        Mapping from level name to a column of members.  Must contain exactly
        the levels of ``group_by``, all columns the same length.
    measures:
        Mapping from measure (or derived-measure/label) name to a column.
        Numeric columns are stored as float64; non-numeric (e.g. labels) as
        object arrays.  Insertion order is preserved and meaningful.
    """

    def __init__(
        self,
        schema: CubeSchema,
        group_by: GroupBySet,
        coords: Mapping[str, Sequence],
        measures: Mapping[str, Sequence],
    ):
        if set(coords.keys()) != set(group_by.levels):
            raise SchemaError(
                f"coordinate columns {sorted(coords)} do not match "
                f"group-by levels {list(group_by.levels)}"
            )
        self.schema = schema
        self.group_by = group_by
        self.coords: Dict[str, np.ndarray] = {
            level: _as_object_array(list(coords[level]))
            if not isinstance(coords[level], np.ndarray)
            else coords[level]
            for level in group_by.levels
        }
        self.measures: Dict[str, np.ndarray] = {
            name: _as_measure_array(column) for name, column in measures.items()
        }
        lengths = {len(col) for col in self.coords.values()} | {
            len(col) for col in self.measures.values()
        }
        if len(lengths) > 1:
            raise SchemaError(f"ragged cube columns, lengths {sorted(lengths)}")
        self._n = lengths.pop() if lengths else 0
        self._coord_index: Optional[Dict[Coordinate, int]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_cells(
        cls,
        schema: CubeSchema,
        group_by: GroupBySet,
        cells: Iterable[Tuple[Coordinate, Mapping[str, float]]],
        measure_names: Optional[Sequence[str]] = None,
    ) -> "Cube":
        """Build a cube from an iterable of ``(coordinate, {measure: value})``.

        Convenient for tests and examples; the hot paths build columns
        directly.
        """
        cell_list = list(cells)
        if measure_names is None:
            measure_names = list(cell_list[0][1].keys()) if cell_list else []
        coords: Dict[str, List] = {level: [] for level in group_by.levels}
        measures: Dict[str, List] = {name: [] for name in measure_names}
        for coordinate, values in cell_list:
            if len(coordinate) != len(group_by.levels):
                raise SchemaError(
                    f"coordinate {coordinate!r} does not match group-by "
                    f"{list(group_by.levels)}"
                )
            for level, member in zip(group_by.levels, coordinate):
                coords[level].append(member)
            for name in measure_names:
                measures[name].append(values[name])
        return cls(schema, group_by, coords, measures)

    @classmethod
    def empty(
        cls,
        schema: CubeSchema,
        group_by: GroupBySet,
        measure_names: Sequence[str],
    ) -> "Cube":
        """An empty cube with the given layout."""
        return cls(
            schema,
            group_by,
            {level: [] for level in group_by.levels},
            {name: [] for name in measure_names},
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of cells ``|C|``."""
        return self._n

    @property
    def measure_names(self) -> Tuple[str, ...]:
        """Measure column names in order (original, derived, label)."""
        return tuple(self.measures.keys())

    def measure(self, name: str) -> np.ndarray:
        """Return a measure column by name."""
        try:
            return self.measures[name]
        except KeyError:
            raise SchemaError(
                f"cube has no measure column {name!r} "
                f"(columns: {', '.join(self.measure_names)})"
            ) from None

    def coordinate_at(self, row: int) -> Coordinate:
        """The coordinate of the cell stored at a given row."""
        return tuple(self.coords[level][row] for level in self.group_by.levels)

    def coordinates(self) -> List[Coordinate]:
        """All coordinates, in storage order."""
        columns = [self.coords[level] for level in self.group_by.levels]
        return list(zip(*columns)) if columns else [() for _ in range(self._n)]

    def coordinate_index(self) -> Dict[Coordinate, int]:
        """Map each coordinate to its row (built lazily, cached)."""
        if self._coord_index is None:
            self._coord_index = {
                coordinate: row for row, coordinate in enumerate(self.coordinates())
            }
        return self._coord_index

    def __contains__(self, coordinate: Coordinate) -> bool:
        """``γ in C`` — whether the coordinate participates in the cube."""
        return tuple(coordinate) in self.coordinate_index()

    def cell(self, coordinate: Coordinate) -> Dict[str, float]:
        """The measure values of one cell, as a dict."""
        row = self.coordinate_index()[tuple(coordinate)]
        return {name: self.measures[name][row] for name in self.measures}

    def cells(self) -> Iterable[Tuple[Coordinate, Dict[str, float]]]:
        """Iterate ``(coordinate, {measure: value})`` pairs."""
        names = list(self.measures)
        for row, coordinate in enumerate(self.coordinates()):
            yield coordinate, {name: self.measures[name][row] for name in names}

    def to_rows(self) -> List[Dict[str, object]]:
        """Flatten to a list of plain dicts (levels + measures); for display."""
        rows: List[Dict[str, object]] = []
        for row in range(self._n):
            record: Dict[str, object] = {
                level: self.coords[level][row] for level in self.group_by.levels
            }
            for name in self.measures:
                record[name] = self.measures[name][row]
            rows.append(record)
        return rows

    # ------------------------------------------------------------------
    # Column-level mutation-free transforms
    # ------------------------------------------------------------------
    def with_measure(self, name: str, column: Sequence) -> "Cube":
        """Return a copy of the cube with one extra measure column appended.

        This is the storage-level counterpart of the transform operators:
        they "preserve the set of coordinates ... monotonically adding new
        measures" (property P1 of Section 5.1).
        """
        if name in self.measures:
            raise SchemaError(f"cube already has a measure column named {name!r}")
        column = _as_measure_array(column)
        if len(column) != self._n:
            raise SchemaError(
                f"new measure {name!r} has {len(column)} values, cube has {self._n} cells"
            )
        measures = dict(self.measures)
        measures[name] = column
        return Cube(self.schema, self.group_by, self.coords, measures)

    def rename_measures(self, renames: Mapping[str, str]) -> "Cube":
        """Return a copy with measure columns renamed (order preserved)."""
        measures = {}
        for name, column in self.measures.items():
            measures[renames.get(name, name)] = column
        if len(measures) != len(self.measures):
            raise SchemaError(f"renaming {renames!r} collapses measure columns")
        return Cube(self.schema, self.group_by, self.coords, measures)

    def project_measures(self, names: Sequence[str]) -> "Cube":
        """Return a copy keeping only the named measure columns, in order."""
        return Cube(
            self.schema,
            self.group_by,
            self.coords,
            {name: self.measure(name) for name in names},
        )

    def filter_rows(self, mask: np.ndarray) -> "Cube":
        """Return a copy keeping only rows where ``mask`` is true."""
        coords = {level: column[mask] for level, column in self.coords.items()}
        measures = {name: column[mask] for name, column in self.measures.items()}
        return Cube(self.schema, self.group_by, coords, measures)

    def sorted_by_coordinates(self) -> "Cube":
        """Return a copy with rows sorted lexicographically by coordinate.

        Useful for deterministic output in tests and reports.
        """
        order = sorted(range(self._n), key=self.coordinate_at)
        index = np.asarray(order, dtype=np.intp)
        coords = {level: column[index] for level, column in self.coords.items()}
        measures = {name: column[index] for name, column in self.measures.items()}
        return Cube(self.schema, self.group_by, coords, measures)

    # ------------------------------------------------------------------
    # Joinability (Definition 3.1)
    # ------------------------------------------------------------------
    def is_joinable_with(self, other: "Cube") -> bool:
        """Whether a drill-across is possible: same group-by set levels."""
        return self.group_by.levels == other.group_by.levels

    def _require_joinable(self, other: "Cube") -> None:
        if not self.is_joinable_with(other):
            raise JoinabilityError(
                f"cubes are not joinable: group-by {list(self.group_by.levels)} "
                f"vs {list(other.group_by.levels)}"
            )

    # ------------------------------------------------------------------
    # Join kernels (Section 4.2)
    # ------------------------------------------------------------------
    def natural_join(
        self,
        other: "Cube",
        alias: str = BENCHMARK_ALIAS,
        outer: bool = False,
    ) -> "Cube":
        """Drill-across ``self ⋈ other`` on equality of full coordinates.

        The measures of ``other`` are appended with alias-qualified names.
        With ``outer=True`` this is the left-outer variant used by
        ``assess*``: non-matching target cells are kept and their benchmark
        measures filled with NaN.
        """
        self._require_joinable(other)
        other_index = other.coordinate_index()
        keep: List[int] = []
        matches: List[int] = []
        for row, coordinate in enumerate(self.coordinates()):
            match = other_index.get(coordinate)
            if match is not None:
                keep.append(row)
                matches.append(match)
            elif outer:
                keep.append(row)
                matches.append(-1)
        return self._assemble_join(other, keep, matches, alias)

    def partial_join(
        self,
        other: "Cube",
        join_levels: Sequence[str],
        alias: str = BENCHMARK_ALIAS,
        outer: bool = False,
    ) -> "Cube":
        """Partial join ``self ⋈_{l1..lm} other`` (Section 4.2).

        Cells match when they agree on ``join_levels`` only.  For each target
        cell, the measures of *all* matching cells of ``other`` are appended
        (ordered deterministically by the matching cells' coordinates), with
        names suffixed ``_1 .. _p`` when more than one match occurs.  This is
        the construct past benchmarks use to line up the k previous time
        slices next to each target cell.  Unlike the natural join, this
        operation is not commutative.
        """
        self._require_joinable(other)
        for level in join_levels:
            if level not in self.group_by:
                raise JoinabilityError(
                    f"join level {level!r} is not part of group-by "
                    f"{list(self.group_by.levels)}"
                )
        positions = [self.group_by.position_of(level) for level in join_levels]

        def key_of(coordinate: Coordinate) -> Tuple:
            return tuple(coordinate[p] for p in positions)

        buckets: Dict[Tuple, List[int]] = {}
        for row, coordinate in enumerate(other.coordinates()):
            buckets.setdefault(key_of(coordinate), []).append(row)
        for rows in buckets.values():
            rows.sort(key=other.coordinate_at)

        max_matches = max((len(rows) for rows in buckets.values()), default=0)
        keep: List[int] = []
        match_lists: List[List[int]] = []
        for row, coordinate in enumerate(self.coordinates()):
            matched = buckets.get(key_of(coordinate))
            if matched:
                keep.append(row)
                match_lists.append(matched)
            elif outer:
                keep.append(row)
                match_lists.append([])
        if max_matches <= 1:
            flat = [rows[0] if rows else -1 for rows in match_lists]
            return self._assemble_join(other, keep, flat, alias)
        return self._assemble_multi_join(other, keep, match_lists, max_matches, alias)

    def pivot(
        self,
        level: str,
        reference_member: Optional[Member],
        measure_renames: Mapping[Member, Mapping[str, str]],
        require_all: bool = True,
        fill_member: Optional[Member] = None,
    ) -> "Cube":
        """Pivot ``⊞`` (Section 4.2): keep the reference slice of ``level``
        and append neighbour slices' measures as new columns.

        ``measure_renames`` maps each *non-reference* member to a
        ``{measure: new_name}`` mapping, e.g. ``{"France": {"quantity":
        "qtyFrance"}}``.  With ``require_all=True`` (inner semantics, as in
        the paper's POP SQL where pivoted columns must be non-null) reference
        cells that lack any neighbour value are dropped; otherwise missing
        neighbour measures are NaN.

        **Spread mode** (``reference_member=None``): instead of anchoring on
        one slice, emit one row per distinct rest-key found in *any* slice,
        with the pivot-level coordinate set to ``fill_member`` and the
        original measure columns dropped (each slice's values live only in
        its renamed columns).  Past benchmarks use this to line up the k
        history slices without losing cells absent from the newest slice.
        """
        if level not in self.group_by:
            raise SchemaError(
                f"pivot level {level!r} not in group-by {list(self.group_by.levels)}"
            )
        position = self.group_by.position_of(level)
        rest_positions = [
            i for i in range(len(self.group_by.levels)) if i != position
        ]

        def rest_key(coordinate: Coordinate) -> Tuple:
            return tuple(coordinate[p] for p in rest_positions)

        slice_rows: Dict[Member, Dict[Tuple, int]] = {}
        rest_first_row: Dict[Tuple, int] = {}
        for row, coordinate in enumerate(self.coordinates()):
            member = coordinate[position]
            key = rest_key(coordinate)
            slice_rows.setdefault(member, {})[key] = row
            rest_first_row.setdefault(key, row)

        spread = reference_member is None
        if spread:
            reference = rest_first_row
        else:
            reference = slice_rows.get(reference_member, {})
        neighbour_members = list(measure_renames.keys())

        keep: List[int] = []
        neighbour_rows: Dict[Member, List[int]] = {m: [] for m in neighbour_members}
        for key, row in reference.items():
            rows_for_key = {
                member: slice_rows.get(member, {}).get(key, -1)
                for member in neighbour_members
            }
            if require_all and any(r < 0 for r in rows_for_key.values()):
                continue
            keep.append(row)
            for member in neighbour_members:
                neighbour_rows[member].append(rows_for_key[member])

        index = np.asarray(keep, dtype=np.intp)
        coords = {name: column[index] for name, column in self.coords.items()}
        if spread:
            filler = fill_member if fill_member is not None else (
                neighbour_members[-1] if neighbour_members else None
            )
            fill_column = np.empty(len(index), dtype=object)
            fill_column[:] = filler
            coords[level] = fill_column
            measures: Dict[str, np.ndarray] = {}
        else:
            measures = {
                name: column[index] for name, column in self.measures.items()
            }
        for member in neighbour_members:
            rows = np.asarray(neighbour_rows[member], dtype=np.intp)
            for measure_name, new_name in measure_renames[member].items():
                source = self.measure(measure_name)
                column = _gather_with_nulls(source, rows)
                if new_name in measures:
                    raise SchemaError(f"pivot would duplicate column {new_name!r}")
                measures[new_name] = column
        return Cube(self.schema, self.group_by, coords, measures)

    # ------------------------------------------------------------------
    # Join assembly internals
    # ------------------------------------------------------------------
    def _assemble_join(
        self,
        other: "Cube",
        keep: Sequence[int],
        matches: Sequence[int],
        alias: str,
    ) -> "Cube":
        index = np.asarray(keep, dtype=np.intp)
        match_index = np.asarray(matches, dtype=np.intp)
        coords = {name: column[index] for name, column in self.coords.items()}
        measures: Dict[str, np.ndarray] = {
            name: column[index] for name, column in self.measures.items()
        }
        for name, column in other.measures.items():
            new_name = qualified(alias, name)
            if new_name in measures:
                raise SchemaError(f"join would duplicate column {new_name!r}")
            measures[new_name] = _gather_with_nulls(column, match_index)
        return Cube(self.schema, self.group_by, coords, measures)

    def _assemble_multi_join(
        self,
        other: "Cube",
        keep: Sequence[int],
        match_lists: Sequence[Sequence[int]],
        width: int,
        alias: str,
    ) -> "Cube":
        index = np.asarray(keep, dtype=np.intp)
        coords = {name: column[index] for name, column in self.coords.items()}
        measures: Dict[str, np.ndarray] = {
            name: column[index] for name, column in self.measures.items()
        }
        padded = np.full((len(match_lists), width), -1, dtype=np.intp)
        for i, rows in enumerate(match_lists):
            padded[i, : len(rows)] = rows
        for name, column in other.measures.items():
            for slot in range(width):
                new_name = qualified(alias, name) if width == 1 else (
                    f"{qualified(alias, name)}_{slot + 1}"
                )
                measures[new_name] = _gather_with_nulls(column, padded[:, slot])
        return Cube(self.schema, self.group_by, coords, measures)

    def __repr__(self) -> str:
        return (
            f"Cube(schema={self.schema.name!r}, by={list(self.group_by.levels)}, "
            f"measures={list(self.measures)}, cells={self._n})"
        )


def _gather_with_nulls(column: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Gather ``column[rows]`` treating ``-1`` as "no match" → NaN/None."""
    missing = rows < 0
    safe = np.where(missing, 0, rows)
    if column.dtype == object:
        gathered = column[safe].copy()
        gathered[missing] = None
        return gathered
    if len(column) == 0:
        return np.full(len(rows), np.nan)
    gathered = column[safe].astype(np.float64, copy=True)
    gathered[missing] = np.nan
    return gathered


def constant_benchmark_cube(target: Cube, value: float, name: str = "constant") -> Cube:
    """Build a constant benchmark ``B`` for a target cube (Section 3.1).

    ``B`` has exactly the coordinates of the target and one measure holding
    ``value`` in every cell.
    """
    column = np.full(len(target), float(value))
    return Cube(
        target.schema,
        target.group_by,
        target.coords,
        {name: column},
    )
